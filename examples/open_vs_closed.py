#!/usr/bin/env python3
"""Extension: open (Poisson) vs. closed (MPL) workload drivers.

The paper drives its experiments with a closed system -- a fixed
multiprogramming level of terminals, each submitting its next query on
completion.  Real front-ends often look *open*: queries arrive at an
exogenous rate whether or not earlier ones finished.  This example runs
the same MAGIC configuration under both drivers and shows

* the closed system's throughput saturating as MPL grows, while
  response time keeps climbing (the paper's x-axis);
* the open system's response time exploding as the arrival rate
  approaches the saturation throughput found by the closed runs -- the
  classic knee every queueing system exhibits.

Run:  python examples/open_vs_closed.py
"""

from repro import GammaMachine, MagicStrategy, MagicTuning, make_mix, make_wisconsin
from repro.gamma import OpenArrivalSource

PROCESSORS = 16
CARDINALITY = 50_000
INDEXES = {"unique1": False, "unique2": True}


def build_placement():
    relation = make_wisconsin(CARDINALITY, correlation="low", seed=9)
    strategy = MagicStrategy(
        ["unique1", "unique2"],
        tuning=MagicTuning(shape={"unique1": 44, "unique2": 43},
                           mi={"unique1": 3.0, "unique2": 5.0}))
    return strategy.partition(relation, PROCESSORS)


def closed_sweep(placement, mix):
    print("=== Closed system (the paper's driver) ===")
    print(f"{'MPL':>5} {'throughput q/s':>15} {'response ms':>12}")
    saturation = 0.0
    for mpl in (1, 4, 16, 32, 64):
        machine = GammaMachine(placement, indexes=INDEXES, seed=5)
        result = machine.run(mix, multiprogramming_level=mpl,
                             measured_queries=200)
        saturation = max(saturation, result.throughput)
        print(f"{mpl:5d} {result.throughput:15.1f} "
              f"{result.response_time_mean * 1000:12.1f}")
    print(f"\nsaturation throughput ~ {saturation:.0f} q/s\n")
    return saturation


def open_sweep(placement, mix, saturation):
    print("=== Open system (Poisson arrivals) ===")
    print(f"{'load':>6} {'arrivals/s':>11} {'response ms':>12}")
    for load in (0.3, 0.6, 0.9):
        rate = load * saturation
        machine = GammaMachine(placement, indexes=INDEXES, seed=5)
        driver = OpenArrivalSource(machine.env, machine.scheduler, mix,
                                   machine.metrics,
                                   arrivals_per_second=rate, seed=6)
        driver.start()
        machine.env.run(
            until=machine.metrics.on_completion_count(400))
        print(f"{load:6.1f} {rate:11.1f} "
              f"{machine.metrics.mean_response_time() * 1000:12.1f}")
    print("\nResponse time is flat at low load and explodes near the "
          "closed system's\nsaturation point -- the two drivers agree "
          "on where the capacity wall is.")


def main():
    placement = build_placement()
    mix = make_mix("low-low", domain=CARDINALITY)
    saturation = closed_sweep(placement, mix)
    open_sweep(placement, mix, saturation)


if __name__ == "__main__":
    main()
