#!/usr/bin/env python3
"""Paper §4: the impact of correlated partitioning attribute values.

Sweeps the rank correlation between the two partitioning attributes from
independent (0.0) to identical (1.0) and shows, for MAGIC and BERD,

* how many processors each query type touches (queries localize as the
  correlation rises -- §4's "mixed blessing", good side);
* how skewed MAGIC's tuple placement becomes before the hill-climbing
  slice-swap heuristic, and how well the heuristic repairs it (the bad
  side, including the paper's identical-values worst case).

Run:  python examples/correlation_study.py
"""

import random

import numpy as np

from repro.core import (
    BerdStrategy,
    MagicStrategy,
    MagicTuning,
    RangePredicate,
    load_spread,
)
from repro.storage import make_wisconsin, measured_rank_correlation

PROCESSORS = 16
CARDINALITY = 40_000


def average_sites(placement, attribute, width, samples=150, seed=0):
    rng = random.Random(seed)
    counts = []
    for _ in range(samples):
        low = rng.randrange(CARDINALITY - width)
        decision = placement.route(
            RangePredicate(attribute, low, low + width - 1))
        counts.append(decision.site_count)
    return float(np.mean(counts))


def magic_strategy():
    return MagicStrategy(
        ["unique1", "unique2"],
        tuning=MagicTuning(shape={"unique1": 40, "unique2": 40},
                           mi={"unique1": 4.0, "unique2": 4.0}))


def localization_sweep():
    print("=== Query localization vs. attribute correlation ===")
    print(f"{'target rho':>10} {'measured':>9} "
          f"{'MAGIC QA':>9} {'MAGIC QB':>9} {'BERD QB':>9}")
    for rho in (0.0, 0.5, 0.9, 0.99, 1.0):
        relation = make_wisconsin(CARDINALITY, correlation=rho, seed=3)
        measured = measured_rank_correlation(relation.column("unique1"),
                                             relation.column("unique2"))
        magic = magic_strategy().partition(relation, PROCESSORS)
        berd = BerdStrategy("unique1", ["unique2"]).partition(
            relation, PROCESSORS)
        print(f"{rho:10.2f} {measured:9.3f} "
              f"{average_sites(magic, 'unique1', 30):9.2f} "
              f"{average_sites(magic, 'unique2', 10):9.2f} "
              f"{average_sites(berd, 'unique2', 10):9.2f}")
    print("\nAs correlation rises, both multi-attribute strategies "
          "localize each query\nto one or two processors (the paper's "
          "Figures 8b/10b/11b/12b behaviour).\n")


def rebalancing_worst_case():
    print("=== §4 worst case: identical attribute values ===")
    relation = make_wisconsin(CARDINALITY, correlation="identical", seed=4)
    strategy = magic_strategy()

    # Build without any rebalancing to expose the skew...
    raw = MagicStrategy(
        ["unique1", "unique2"],
        tuning=MagicTuning(shape={"unique1": 40, "unique2": 40},
                           mi={"unique1": 4.0, "unique2": 4.0},
                           rebalance_iterations=0,
                           entry_exchange_slack=None))
    skewed = raw.partition(relation, PROCESSORS)
    weights_before = skewed.directory.tuples_per_site(PROCESSORS)

    # ...then with the hill-climbing slice-swap heuristic.
    balanced = strategy.partition(relation, PROCESSORS)
    weights_after = balanced.directory.tuples_per_site(PROCESSORS)

    print(f"without heuristic: {int((weights_before == 0).sum())} empty "
          f"processors, load spread {load_spread(weights_before)}")
    print(f"with heuristic:    {int((weights_after == 0).sum())} empty "
          f"processors, load spread {load_spread(weights_after)}")
    print("(paper: 12 of 32 processors empty before, ~20% spread after)")


if __name__ == "__main__":
    localization_sweep()
    rebalancing_worst_case()
