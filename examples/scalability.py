#!/usr/bin/env python3
"""Extension: the declustering gap as the machine grows.

The paper's introduction motivates multi-attribute declustering with
systems of "hundreds and thousands of processors": the cost of
broadcasting a selection to processors holding no relevant tuples grows
with the machine.  This example sweeps the processor count and plots
MAGIC's advantage over range partitioning with the built-in sweep
framework and ASCII plotter.

Run:  python examples/scalability.py     (takes ~1-2 minutes)
"""

from repro.experiments import ascii_plot, sweep


def main():
    processors = [4, 8, 16, 32]
    print("Sweeping machine size (low-low mix, MPL = 2 x processors "
          "equivalent load)...")
    result = sweep("processors", processors, figure="8a",
                   strategies=("range", "magic"),
                   multiprogramming_level=32,
                   cardinality=50_000, measured_queries=200)

    series = {name: result.series(name) for name in ("range", "magic")}
    print()
    print(ascii_plot(series, width=48, height=14, x_label="processors"))

    print("\nMAGIC / range throughput ratio:")
    for value, ratio in result.ratio_series("magic", "range"):
        print(f"  P={int(value):3d}: {ratio:4.2f}x")
    print("\nThe gap widens with the machine: range must start an "
          "operator on every\nprocessor for half the workload, and that "
          "overhead scales with P while the\nuseful work per query does "
          "not.  MAGIC's grid keeps both query types local.")


if __name__ == "__main__":
    main()
