#!/usr/bin/env python3
"""Quickstart: compare the three declustering strategies on one workload.

Builds the paper's database (a Wisconsin benchmark relation), declusters
it with range partitioning, BERD and MAGIC, runs the low-low multiuser
workload on the simulated Gamma machine, and prints a throughput
comparison -- a miniature of the paper's Figure 8a.

Run:  python examples/quickstart.py
"""

from repro import GammaMachine, MagicStrategy, MagicTuning, make_mix, make_wisconsin
from repro.core import BerdStrategy, RangeStrategy

# A smaller configuration than the paper's (16 processors, 50k tuples)
# so the example finishes in a few seconds.
PROCESSORS = 16
CARDINALITY = 50_000
INDEXES = {"unique1": False, "unique2": True}   # §6: non-clustered on A,
                                                # clustered on B


def main():
    print("Generating the Wisconsin benchmark relation "
          f"({CARDINALITY} tuples, low correlation)...")
    relation = make_wisconsin(CARDINALITY, correlation="low", seed=42)
    mix = make_mix("low-low", domain=CARDINALITY)

    strategies = {
        "range": RangeStrategy("unique1"),
        "berd": BerdStrategy("unique1", ["unique2"]),
        "magic": MagicStrategy(
            ["unique1", "unique2"],
            tuning=MagicTuning(shape={"unique1": 44, "unique2": 43},
                               mi={"unique1": 3.0, "unique2": 5.0})),
    }

    print(f"\n{'strategy':10s} {'placement':45s}")
    placements = {}
    for name, strategy in strategies.items():
        placement = strategy.partition(relation, PROCESSORS)
        placements[name] = placement
        print(f"{name:10s} {placement.describe()[:70]}")

    print(f"\nThroughput (queries/second), low-low mix, "
          f"{PROCESSORS} processors:")
    header = f"{'MPL':>5}" + "".join(f"{name:>10}" for name in strategies)
    print(header)
    print("-" * len(header))
    for mpl in (1, 4, 16, 32):
        row = f"{mpl:5d}"
        for name, placement in placements.items():
            machine = GammaMachine(placement, indexes=INDEXES, seed=7)
            result = machine.run(mix, multiprogramming_level=mpl,
                                 measured_queries=150)
            row += f"{result.throughput:10.1f}"
        print(row)

    print("\nAs in the paper: the multi-attribute strategies localize both "
          "query types\nand pull far ahead of range partitioning once "
          "concurrency is available;\nMAGIC avoids BERD's auxiliary-index "
          "probe and finishes on top.")


if __name__ == "__main__":
    main()
