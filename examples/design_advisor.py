#!/usr/bin/env python3
"""MAGIC as a physical-design advisor: the fully derived pipeline.

The paper's §3 describes MAGIC as a tool the database administrator
feeds with query resource profiles; everything else -- the ideal degree
of parallelism M, the per-attribute processor counts M_i, the fragment
cardinality FC and the grid-directory shape -- is computed.  This
example runs that pipeline end to end for each of the paper's four
query mixes, prints the derived design, and then *measures* the derived
design against the paper-pinned one on the simulator.

Run:  python examples/design_advisor.py
"""

from repro import GammaMachine, make_mix, make_wisconsin
from repro.experiments import FIGURES, PAPER_INDEXES, build_strategy
from repro.gamma import GAMMA_PARAMETERS
from repro.workload import cost_model_for_mix

PROCESSORS = 16
CARDINALITY = 50_000


def derived_designs():
    print("=== Cost-model-derived designs (equations 1-4) ===")
    print(f"{'mix':20s} {'M':>6} {'FC':>5} {'M_A':>6} {'M_B':>6} "
          f"{'shape':>12}")
    for mix_name in ("low-low", "low-moderate", "moderate-low",
                     "moderate-moderate"):
        mix = make_mix(mix_name, domain=CARDINALITY)
        model = cost_model_for_mix(mix, GAMMA_PARAMETERS, CARDINALITY)
        shape = model.directory_shape()
        print(f"{mix_name:20s} {model.ideal_m():6.2f} "
              f"{model.fragment_cardinality():5d} "
              f"{model.ideal_mi('unique1'):6.2f} "
              f"{model.ideal_mi('unique2'):6.2f} "
              f"{shape['unique1']:5d}x{shape['unique2']:<5d}")
    print()


def derived_vs_pinned():
    print("=== Derived vs. paper-pinned MAGIC, low-low mix ===")
    config = FIGURES["8a"]
    relation = make_wisconsin(CARDINALITY, correlation="low", seed=11)
    mix = make_mix("low-low", domain=CARDINALITY)

    results = {}
    for variant in ("magic", "magic-derived"):
        strategy = build_strategy(variant, config, CARDINALITY)
        placement = strategy.partition(relation, PROCESSORS)
        machine = GammaMachine(placement, indexes=PAPER_INDEXES, seed=2)
        run = machine.run(mix, multiprogramming_level=16,
                          measured_queries=200)
        results[variant] = run
        print(f"{variant:15s} directory {placement.directory.shape}: "
              f"{run.throughput:7.1f} q/s "
              f"(rt {run.response_time_mean * 1000:.0f} ms)")

    gap = (results["magic-derived"].throughput
           / results["magic"].throughput - 1) * 100
    print(f"\nself-derived design within {gap:+.1f}% of the paper-pinned "
          "one -- the cost model\nalone recovers a competitive design, "
          "which is MAGIC's whole point.")


if __name__ == "__main__":
    derived_designs()
    derived_vs_pinned()
