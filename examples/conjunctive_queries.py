#!/usr/bin/env python3
"""Extension: conjunctive predicates on several partitioning attributes.

The paper's workload constrains one attribute per query, but a grid
directory can do more: a conjunction that constrains *both* dimensions
maps to the intersection of two bands -- usually a single grid entry,
hence a single processor.  Single-attribute declustering can exploit at
most one of the conjuncts.

This example routes two-dimensional "window" queries (e.g. salary range
AND age range, the paper's §4 example) under every strategy and counts
the processors involved.

Run:  python examples/conjunctive_queries.py
"""

import random

import numpy as np

from repro.core import (
    BerdStrategy,
    MagicStrategy,
    MagicTuning,
    RangePredicate,
    RangeStrategy,
)
from repro.storage import make_wisconsin

PROCESSORS = 32
CARDINALITY = 100_000
WINDOW = 1_000  # each conjunct selects 1% of its attribute's domain


def main():
    relation = make_wisconsin(CARDINALITY, correlation="low", seed=8)
    placements = {
        "range": RangeStrategy("unique1").partition(relation, PROCESSORS),
        "berd": BerdStrategy("unique1", ["unique2"]).partition(
            relation, PROCESSORS),
        "magic": MagicStrategy(
            ["unique1", "unique2"],
            tuning=MagicTuning(shape={"unique1": 62, "unique2": 61},
                               mi={"unique1": 4.0, "unique2": 8.0}),
        ).partition(relation, PROCESSORS),
    }

    scenarios = {
        # (width on unique1, width on unique2)
        "wide A (20%), narrow B (0.1%)": (20_000, 100),
        "narrow A (0.1%), wide B (20%)": (100, 20_000),
        "medium both (5%)": (5_000, 5_000),
    }

    rng = random.Random(0)
    for label, (width_a, width_b) in scenarios.items():
        queries = []
        for _ in range(200):
            a = rng.randrange(CARDINALITY - width_a)
            b = rng.randrange(CARDINALITY - width_b)
            queries.append([
                RangePredicate("unique1", a, a + width_a - 1),
                RangePredicate("unique2", b, b + width_b - 1),
            ])
        print(f"--- {label} ---")
        print(f"{'strategy':10s} {'avg processors':>15} {'max':>5}")
        for name, placement in placements.items():
            widths = [placement.route_conjunction(preds).site_count
                      for preds in queries]
            print(f"{name:10s} {np.mean(widths):15.2f} {max(widths):5d}")
        print()

        # Soundness: routed sites hold every qualifying tuple.
        magic = placements["magic"]
        for preds in queries[:20]:
            counts = magic.qualifying_counts_all(preds)
            routed = set(magic.route_conjunction(preds).target_sites)
            assert all(int(s) in routed for s in np.nonzero(counts)[0])

    print("Reading the numbers: range wins outright only when the "
          "*selective* conjunct\nfalls on its own partitioning "
          "attribute (second scenario).  When the selective\nconjunct "
          "is on the other attribute (first scenario), range and BERD "
          "fan out\nwith the wide band while MAGIC intersects both "
          "bands -- the paper's single-\nattribute argument, "
          "generalized to conjunctions.  MAGIC is the only strategy\n"
          "whose processor count tracks the *intersection*, never a "
          "single conjunct.")


if __name__ == "__main__":
    main()
