#!/usr/bin/env python3
"""The STOCK example of paper §3: a two-dimensional grid directory.

Recreates the paper's motivating scenario: a STOCK relation queried half
the time by an exact match on ticker_symbol and half the time by a range
predicate on price.  Shows

* the worked cost-model numbers of §3.3 (M_ticker = 3, M_price = 1 give
  split fractions 22.5% / 7.5%, a 3:1 split ratio);
* a 6x6 grid directory like Figure 4, with the processors each query
  type touches;
* why MAGIC uses ~6 processors per query where one-dimensional range
  partitioning averages 18.5.

Run:  python examples/stock_directory.py
"""

import random

import numpy as np

from repro.core import (
    MagicCostModel,
    MagicStrategy,
    MagicTuning,
    QueryProfile,
    RangePredicate,
    RangeStrategy,
)
from repro.storage import Attribute, Relation, Schema

PROCESSORS = 36  # the paper's example: 36 fragments, one per processor
CARDINALITY = 36_000


def make_stock_relation(seed=1):
    """A STOCK relation with integer-encoded ticker symbols and prices."""
    rng = np.random.default_rng(seed)
    schema = Schema([
        Attribute("ticker_symbol"),   # encoded 0..25 by leading letter
        Attribute("name"),
        Attribute("price"),
        Attribute("closing"),
        Attribute("opening"),
        Attribute("pe_ratio"),
    ])
    ticker = rng.integers(0, 26_000, CARDINALITY)  # letter*1000 + id
    price = rng.integers(0, 61, CARDINALITY)       # the paper's 0..60 range
    return Relation("STOCK", schema, {
        "ticker_symbol": ticker,
        "price": price,
        "closing": price + rng.integers(-2, 3, CARDINALITY),
    })


def section_33_worked_example():
    """Reproduce the §3.3 numbers exactly."""
    print("=== §3.3 worked example ===")
    cp = 0.01  # any CP works; profiles engineered to give M_i = 3 and 1
    ticker_queries = QueryProfile("type-A", "ticker_symbol", tuples=1,
                                  cpu_seconds=9 * cp, disk_seconds=0,
                                  net_seconds=0, frequency=0.9)
    price_queries = QueryProfile("type-B", "price", tuples=10,
                                 cpu_seconds=1 * cp, disk_seconds=0,
                                 net_seconds=0, frequency=0.1)
    model = MagicCostModel([ticker_queries, price_queries],
                           cost_of_participation=cp,
                           directory_search_cost=0.0,
                           relation_cardinality=CARDINALITY)
    print(f"M_ticker = {model.ideal_mi('ticker_symbol'):.1f}   "
          f"M_price = {model.ideal_mi('price'):.1f}")
    splits = model.fraction_splits()
    print(f"Fraction_Splits (equation 4): ticker = "
          f"{splits['ticker_symbol']:.3f}, price = {splits['price']:.3f} "
          f"(the paper's 22.5% / 7.5%)")
    ratio = splits["ticker_symbol"] / splits["price"]
    print(f"-> ticker split {ratio:.0f}x more frequently than price\n")


def figure_4_directory():
    print("=== Figure 4: a 6x6 directory on STOCK ===")
    relation = make_stock_relation()
    strategy = MagicStrategy(
        ["ticker_symbol", "price"],
        tuning=MagicTuning(shape={"ticker_symbol": 6, "price": 6},
                           mi={"ticker_symbol": 6.0, "price": 6.0}))
    placement = strategy.partition(relation, PROCESSORS)
    directory = placement.directory
    print(f"directory: {directory.describe()}")
    print("processor of each entry (rows = ticker slices, "
          "cols = price slices):")
    for row in directory.assignment:
        print("   " + " ".join(f"{p:3d}" for p in row))

    rng = random.Random(0)
    ticker_value = int(rng.randrange(26_000))
    query_a = RangePredicate.equals("ticker_symbol", ticker_value)
    query_b = RangePredicate("price", 11, 20)
    sites_a = placement.route(query_a).target_sites
    sites_b = placement.route(query_b).target_sites
    print(f"\nquery type A ({query_a}): processors {sites_a}")
    print(f"query type B ({query_b}): processors {sites_b}")

    range_placement = RangeStrategy("price").partition(relation, PROCESSORS)
    range_a = len(range_placement.route(query_a).target_sites)
    range_b = len(range_placement.route(query_b).target_sites)
    magic_avg = (len(sites_a) + len(sites_b)) / 2
    range_avg = (range_a + range_b) / 2
    print(f"\naverage processors per query: MAGIC = {magic_avg:.1f}, "
          f"range-on-price = {range_avg:.1f}")
    print("(the paper: 6 vs 18.5 -- range must broadcast every "
          "ticker_symbol query)")


if __name__ == "__main__":
    section_33_worked_example()
    figure_4_directory()
