"""Shared fixtures: benchmark relations, mixes, machines, tiny figures.

Building a Wisconsin relation or simulating a small figure takes real
time; test modules historically rebuilt identical ones at module scope.
The factories here memoize at session scope, so any two test files
asking for the same (cardinality, correlation, seed) relation -- or the
same canonical small figure run -- share one instance.  Relations and
results are treated as immutable by every test; anything that mutates
one must build its own.
"""

import pytest

from repro.storage import make_wisconsin
from repro.workload import make_mix


@pytest.fixture(scope="session")
def wisconsin_factory():
    """Memoized ``make_wisconsin``: one build per distinct config."""
    cache = {}

    def build(cardinality, correlation="low", seed=13, name="R"):
        key = (cardinality, correlation, seed, name)
        if key not in cache:
            cache[key] = make_wisconsin(cardinality,
                                        correlation=correlation,
                                        seed=seed, name=name)
        return cache[key]

    return build


@pytest.fixture(scope="session")
def tiny_relation(wisconsin_factory):
    """2000-tuple low-correlation relation for fast machine tests."""
    return wisconsin_factory(2_000, correlation="low", seed=3)


@pytest.fixture(scope="session")
def tiny_mix():
    """The low-low mix sized for :func:`tiny_relation`."""
    return make_mix("low-low", domain=2_000)


@pytest.fixture(scope="session")
def small_figure_result():
    """The canonical small figure-8a run several suites report against."""
    from repro.experiments.config import FIGURES
    from repro.experiments.runner import run_experiment
    return run_experiment(FIGURES["8a"], cardinality=10_000, num_sites=8,
                          measured_queries=50, mpls=(1, 8), seed=5)
