"""Chrome-trace (Catapult JSON / Perfetto) exporter and CLI tests.

The acceptance bar is structural: a trace built from real phase spans
and real simulated-time span records must pass
:func:`~repro.obs.export.validate_chrome_trace` -- the same checks the
``repro-trace`` CLI refuses to write a file without -- and load back as
valid JSON with one process track per worker pid.
"""

import json

import pytest

from repro.experiments import FIGURES, run_experiment
from repro.obs import (
    Telemetry,
    chrome_events_from_phase_spans,
    chrome_events_from_span_records,
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.export import span_records, write_spans_jsonl
from repro.obs.trace_cli import main as trace_main

TINY = dict(cardinality=2_000, num_sites=4, measured_queries=5,
            mpls=(1,), seed=13, strategies=("range",))


@pytest.fixture(scope="module")
def tiny_result():
    return run_experiment(FIGURES["8a"], **TINY)


class TestPhaseSpanEvents:
    def test_real_phase_spans_become_valid_trace(self, tiny_result):
        spans = tiny_result.phases["spans"]
        assert spans, "tiny run must record phase spans"
        events = chrome_events_from_phase_spans(spans)
        payload = chrome_trace(events, metadata={"figure": "8a"})
        assert validate_chrome_trace(payload) == []
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert {"plan-compile", "simulate"} <= names
        # Timestamps rebase to the earliest span: the trace starts at 0.
        assert min(e["ts"] for e in events if e["ph"] == "X") == 0.0
        assert payload["otherData"]["figure"] == "8a"

    def test_one_metadata_track_per_pid(self):
        spans = [
            {"name": "simulate", "start": 10.0, "dur": 1.0, "pid": 7,
             "depth": 0},
            {"name": "simulate", "start": 11.0, "dur": 1.0, "pid": 9,
             "depth": 0},
        ]
        events = chrome_events_from_phase_spans(spans)
        meta = [e for e in events if e["ph"] == "M"]
        assert sorted(e["pid"] for e in meta) == [7, 9]

    def test_empty_spans_yield_empty_events(self):
        assert chrome_events_from_phase_spans([]) == []


class TestSimulatedSpanEvents:
    def test_telemetry_spans_become_valid_trace(self):
        telemetry = Telemetry()
        run_experiment(FIGURES["8a"],
                       telemetry_factory=lambda s, m: telemetry, **TINY)
        records = list(span_records(telemetry.spans))
        assert records
        events = chrome_events_from_span_records(records, pid=42)
        payload = chrome_trace(events)
        assert validate_chrome_trace(payload) == []
        # Simulated seconds map to microseconds 1:1.
        xs = [e for e in events if e["ph"] == "X"]
        record = records[0]
        assert xs[0]["ts"] == pytest.approx(record["start"] * 1e6)
        assert all(e["pid"] == 42 for e in xs)
        # One thread lane per query trace.
        assert {e["tid"] for e in xs} == {r["trace"] for r in records}


class TestValidation:
    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({}) == \
            ["traceEvents missing or not a list"]

    def test_rejects_trace_without_complete_events(self):
        payload = chrome_trace(
            [{"name": "m", "ph": "M", "pid": 0, "tid": 0}])
        assert any("no complete" in e for e in validate_chrome_trace(payload))

    def test_rejects_negative_duration(self):
        payload = chrome_trace([{"name": "x", "ph": "X", "pid": 0,
                                 "tid": 0, "ts": 0.0, "dur": -1.0}])
        assert any("bad dur" in e for e in validate_chrome_trace(payload))


class TestTraceCli:
    def test_results_and_spans_round_trip(self, tmp_path, tiny_result):
        from repro.experiments import save_figure_json
        results_path = str(tmp_path / "figure_8a.json")
        save_figure_json(tiny_result, results_path)

        telemetry = Telemetry()
        run_experiment(FIGURES["8a"],
                       telemetry_factory=lambda s, m: telemetry, **TINY)
        spans_path = str(tmp_path / "run.spans.jsonl")
        write_spans_jsonl(telemetry.spans, spans_path)

        out = str(tmp_path / "trace.json")
        assert trace_main(["--results", results_path,
                           "--spans", spans_path, "--out", out]) == 0
        with open(out) as handle:
            payload = json.load(handle)
        assert validate_chrome_trace(payload) == []
        # Both halves present: wall-clock phases and simulated spans.
        names = {e["name"] for e in payload["traceEvents"]
                 if e["ph"] == "X"}
        assert "simulate" in names
        assert len(payload["traceEvents"]) > 10

    def test_no_inputs_is_an_error(self, tmp_path):
        assert trace_main(["--out", str(tmp_path / "t.json")]) == 2

    def test_write_chrome_trace_returns_event_count(self, tmp_path):
        payload = chrome_trace([{"name": "x", "ph": "X", "pid": 0,
                                 "tid": 0, "ts": 0.0, "dur": 1.0}])
        path = str(tmp_path / "t.json")
        assert write_chrome_trace(payload, path) == 1
        with open(path) as handle:
            assert json.load(handle) == payload
