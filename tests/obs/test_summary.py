"""Unit tests for the "why" table and resource breakdowns."""

import pytest

from repro.des import Environment
from repro.obs import (
    SpanLog,
    dominant_resource,
    resource_breakdown,
    why_table,
)


@pytest.fixture
def log():
    return SpanLog(Environment())


def _record(log, qtype, resource, wait, service, times=1):
    trace = log.lookup(hash(qtype) % 1000)
    if trace is None:
        trace = log.begin(hash(qtype) % 1000, qtype)
    for _ in range(times):
        trace.resource(trace.root, resource, wait, service)


class TestResourceBreakdown:
    def test_sorted_by_attributed_time(self, log):
        _record(log, "QA", "node.cpu", wait=0.1, service=0.1)
        _record(log, "QA", "node.disk", wait=0.5, service=0.5)
        rows = resource_breakdown(log)["QA"]
        assert [r[0] for r in rows] == ["node.disk", "node.cpu"]
        resource, wait, service, count = rows[0]
        assert wait == pytest.approx(0.5)
        assert service == pytest.approx(0.5)
        assert count == 1

    def test_counts_accumulate(self, log):
        _record(log, "QB", "sched.cpu", wait=0.0, service=0.01, times=3)
        rows = resource_breakdown(log)["QB"]
        assert rows[0][3] == 3

    def test_dominant_resource(self, log):
        _record(log, "QA", "node.cpu", wait=0.0, service=1.0)
        _record(log, "QA", "node.disk", wait=0.0, service=0.1)
        assert dominant_resource(log, "QA") == "node.cpu"
        assert dominant_resource(log, "QZ") is None


class TestWhyTable:
    def test_empty_log_message(self, log):
        assert "no spans recorded" in why_table(log)

    def test_contains_rows_and_shares(self, log):
        _record(log, "QA", "node.cpu", wait=0.25, service=0.75)
        text = why_table(log)
        assert "query type QA" in text
        assert "node.cpu" in text
        assert "100.0%" in text
        assert "wait s" in text

    def test_top_k_folds_tail_into_other(self, log):
        for i in range(4):
            _record(log, "QA", f"resource.{i}", wait=0.0, service=1.0 + i)
        text = why_table(log, top_k=2)
        assert "(other)" in text
        # Only the two largest resources get their own row.
        assert "resource.3" in text
        assert "resource.2" in text
        assert "resource.0" not in text

    def test_other_row_carries_share_and_count(self, log):
        # resource.i contributes (1+i) * (i+1) seconds: 1, 4, 9, 16.
        # Top 2 (r3=16, r2=9) get rows; folded r1+r0 = 5s of 30s.
        for i in range(4):
            _record(log, "QA", f"resource.{i}", wait=0.0,
                    service=1.0 + i, times=i + 1)
        text = why_table(log, top_k=2)
        other = next(line for line in text.splitlines()
                     if "(other)" in line)
        assert "5.000" in other
        assert "16.7%" in other
        # Folded acquisition counts: 2 (r1) + 1 (r0).
        assert other.rstrip().endswith("3")

    def test_golden_rendering(self, log):
        _record(log, "QA", "node.disk", wait=0.5, service=1.5)
        _record(log, "QA", "node.cpu", wait=0.0, service=0.5, times=2)
        expected = (
            "query type QA -- attributed time 3.000s across 2 resources\n"
            "  resource         wait s  service s    total s   share"
            "  acquisitions\n"
            "  node.disk         0.500      1.500      2.000  66.7%"
            "             1\n"
            "  node.cpu          0.000      1.000      1.000  33.3%"
            "             2\n"
        )
        assert why_table(log) == expected
