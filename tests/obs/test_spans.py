"""Unit tests for query trace spans, plus the export replay check.

The last test is the acceptance check for the span subsystem: run a
traced machine, dump the spans to JSONL, read them back, and verify
every trace replays as a well-nested tree.
"""

import pickle

import pytest

from repro.core import RangeStrategy
from repro.des import Environment
from repro.gamma import GammaMachine
from repro.obs import (
    SPAN_KIND,
    SpanLog,
    Telemetry,
    UnknownQueryError,
    build_span_forest,
    load_jsonl,
    span_records,
    validate_span_forest,
    write_spans_jsonl,
)
from repro.storage import make_wisconsin
from repro.workload import make_mix


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def log(env):
    return SpanLog(env)


class TestQueryTrace:
    def test_root_span_opened_on_begin(self, log):
        trace = log.begin(1, "QA")
        assert trace.root.name == "query"
        assert trace.root.parent_id is None
        assert trace.open_spans == 1
        assert log.lookup(1) is trace

    def test_duplicate_begin_rejected(self, log):
        log.begin(1, "QA")
        with pytest.raises(ValueError):
            log.begin(1, "QA")

    def test_child_defaults_to_root_parent(self, log):
        trace = log.begin(1, "QA")
        child = trace.start("plan")
        assert child.parent_id == trace.root.span_id
        grandchild = trace.start("select.site", parent=child, node=3)
        assert grandchild.parent_id == child.span_id
        assert grandchild.attrs["node"] == 3

    def test_spans_emitted_only_on_finish(self, env, log):
        trace = log.begin(1, "QA")
        child = trace.start("plan")
        assert log.span_count() == 0
        trace.finish(child, sites=2)
        assert log.span_count() == 1
        entry = next(log.entries())
        assert entry.kind == SPAN_KIND
        assert entry.details["name"] == "plan"
        assert entry.details["sites"] == 2

    def test_end_closes_root_and_retires(self, env, log):
        log.begin(7, "QB")
        env.run(until=2.0)
        log.end(7)
        assert log.lookup(7) is None
        assert log.finished == 1
        record = next(iter(span_records(log)))
        assert record["name"] == "query"
        assert record["start"] == 0.0
        assert record["end"] == 2.0

    def test_resource_leaf_interval_and_aggregate(self, env, log):
        trace = log.begin(1, "QA")
        env.run(until=1.0)
        trace.resource(trace.root, "node.disk", wait=0.3, service=0.5,
                       pages=2)
        record = next(iter(span_records(log)))
        assert record["start"] == pytest.approx(0.2)
        assert record["end"] == pytest.approx(1.0)
        assert record["wait"] == pytest.approx(0.3)
        assert record["service"] == pytest.approx(0.5)
        wait, service, count = log.resource_totals["QA"]["node.disk"]
        assert (wait, service, count) == (pytest.approx(0.3),
                                          pytest.approx(0.5), 1)

    def test_flush_truncates_in_flight_traces(self, env, log):
        trace = log.begin(1, "QA")
        site = trace.start("select.site")
        env.run(until=3.0)
        assert log.flush() == 1
        assert log.truncated == 1
        assert log.lookup(1) is None
        records = list(span_records(log))
        assert all(r["truncated"] for r in records)
        assert validate_span_forest(records) == []
        assert {r["name"] for r in records} == {"query", "select.site"}
        assert site.span_id in {r["span"] for r in records}

    def test_end_unknown_query_raises_structured_error(self, log):
        log.begin(1, "QA")
        log.begin(2, "QB")
        with pytest.raises(UnknownQueryError) as excinfo:
            log.end(99)
        # The message names the query and the log's state, and the
        # error stays a KeyError for callers guarding the old failure.
        assert "query 99" in str(excinfo.value)
        assert "2 trace(s)" in str(excinfo.value)
        assert excinfo.value.query_id == 99
        assert excinfo.value.active_traces == 2
        assert isinstance(excinfo.value, KeyError)

    def test_double_end_raises_structured_error(self, log):
        log.begin(1, "QA")
        log.end(1)
        with pytest.raises(UnknownQueryError):
            log.end(1)

    def test_reset_drops_history_keeps_active(self, env, log):
        trace = log.begin(1, "QA")
        trace.resource(trace.root, "node.cpu", wait=0.0, service=0.1)
        log.reset()
        assert log.span_count() == 0
        assert log.resource_totals == {}
        # The in-flight trace survives a window reset and can finish.
        assert log.lookup(1) is trace
        log.end(1)
        assert log.span_count() == 1


class TestFlushAndDetach:
    def test_flush_emits_children_before_root(self, env, log):
        trace = log.begin(1, "QA")
        site = trace.start("select.site")
        deeper = trace.start("probe.site", parent=site)
        env.run(until=2.0)
        log.flush()
        # Emit order must be child-before-parent so the exported
        # stream replays as a well-nested tree: deepest span first,
        # the root (span id 0) last.
        emitted = [r["span"] for r in span_records(log)]
        assert emitted == [deeper.span_id, site.span_id,
                           trace.root.span_id]
        assert emitted[-1] == 0

    def test_detached_log_pickle_round_trip(self, env, log):
        trace = log.begin(1, "QA")
        trace.resource(trace.root, "node.disk", wait=0.2, service=0.4)
        env.run(until=1.5)
        log.end(1)
        log.flush()
        log.detach()
        # The parallel-worker merge ships detached logs across process
        # boundaries: everything collected must survive pickling.
        clone = pickle.loads(pickle.dumps(log))
        assert clone.env is None
        assert clone.active == {}
        assert clone.finished == log.finished
        assert clone.resource_totals == log.resource_totals
        assert list(span_records(clone)) == list(span_records(log))

    def test_pickling_live_log_drops_env_and_active(self, env, log):
        log.begin(1, "QA")
        clone = pickle.loads(pickle.dumps(log))
        assert clone.env is None
        assert clone.active == {}


class TestForestValidation:
    def test_detects_missing_parent(self):
        records = [
            {"trace": 1, "span": 0, "parent": None, "start": 0.0, "end": 2.0},
            {"trace": 1, "span": 5, "parent": 3, "start": 0.5, "end": 1.0},
        ]
        errors = validate_span_forest(records)
        assert any("missing parent" in e for e in errors)

    def test_detects_escaping_child(self):
        records = [
            {"trace": 1, "span": 0, "parent": None, "start": 0.0, "end": 1.0},
            {"trace": 1, "span": 1, "parent": 0, "start": 0.5, "end": 1.5},
        ]
        errors = validate_span_forest(records)
        assert any("escapes parent" in e for e in errors)

    def test_detects_multiple_roots(self):
        records = [
            {"trace": 1, "span": 0, "parent": None, "start": 0.0, "end": 1.0},
            {"trace": 1, "span": 1, "parent": None, "start": 0.0, "end": 1.0},
        ]
        errors = validate_span_forest(records)
        assert any("2 root spans" in e for e in errors)

    def test_detects_parent_cycle(self):
        records = [
            {"trace": 1, "span": 0, "parent": None, "start": 0.0, "end": 2.0},
            {"trace": 1, "span": 1, "parent": 2, "start": 0.1, "end": 1.0},
            {"trace": 1, "span": 2, "parent": 1, "start": 0.1, "end": 1.0},
        ]
        errors = validate_span_forest(records)
        assert any("parent cycle" in e for e in errors)

    def test_detects_duplicate_span_ids(self):
        # build_span_forest silently keeps the last record per id, so
        # the validator must catch duplicates on the raw record list.
        records = [
            {"trace": 1, "span": 0, "parent": None, "start": 0.0, "end": 2.0},
            {"trace": 1, "span": 1, "parent": 0, "start": 0.1, "end": 1.0},
            {"trace": 1, "span": 1, "parent": 0, "start": 0.2, "end": 0.9},
        ]
        errors = validate_span_forest(records)
        assert any("duplicate span id 1" in e for e in errors)

    def test_same_span_id_in_different_traces_is_fine(self):
        records = [
            {"trace": 1, "span": 0, "parent": None, "start": 0.0, "end": 1.0},
            {"trace": 2, "span": 0, "parent": None, "start": 0.0, "end": 1.0},
        ]
        assert validate_span_forest(records) == []

    def test_accepts_well_nested_tree(self):
        records = [
            {"trace": 1, "span": 0, "parent": None, "start": 0.0, "end": 2.0},
            {"trace": 1, "span": 1, "parent": 0, "start": 0.1, "end": 1.0},
            {"trace": 1, "span": 2, "parent": 1, "start": 0.2, "end": 0.9},
        ]
        assert validate_span_forest(records) == []


class TestMachineExportReplay:
    def test_traced_run_exports_well_nested_trees(self, tmp_path):
        relation = make_wisconsin(10_000, correlation="low", seed=70)
        placement = RangeStrategy("unique1").partition(relation, 4)
        telemetry = Telemetry()
        machine = GammaMachine(placement,
                               indexes={"unique1": False, "unique2": True},
                               seed=3, telemetry=telemetry)
        machine.run(make_mix("low-low", domain=10_000),
                    multiprogramming_level=4, measured_queries=80)

        path = tmp_path / "spans.jsonl"
        written = write_spans_jsonl(telemetry.spans, str(path))
        records = load_jsonl(str(path))
        assert written == len(records) > 0
        assert validate_span_forest(records) == []

        forest = build_span_forest(records)
        # Plenty of queries measured; each trace has one root named
        # "query" carrying the query type.
        assert len(forest) >= 80
        for spans in forest.values():
            roots = [s for s in spans.values() if s["parent"] is None]
            assert len(roots) == 1
            assert roots[0]["name"] == "query"
            assert roots[0]["qtype"] in {"QA", "QB"}
        # Resource leaves carry the wait/service split.
        leaves = [r for r in records if "resource" in r]
        assert leaves
        assert all(r["wait"] >= 0 and r["service"] >= 0 for r in leaves)
        labels = {r["resource"] for r in leaves}
        assert "node.cpu" in labels
        assert "node.disk" in labels
        assert "sched.cpu" in labels
