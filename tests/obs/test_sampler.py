"""Unit tests for the utilization timeline sampler."""

import pytest

from repro.des import Environment
from repro.obs import MetricsRegistry, TimelineSampler


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestProbes:
    def test_rate_probe_differences_cumulative(self, env, registry):
        sampler = TimelineSampler(env, registry, interval=1.0)
        busy = {"seconds": 0.0}
        sampler.add_rate_probe("cpu.utilization", lambda: busy["seconds"])
        sampler.start()

        def workload(env):
            while True:
                yield env.timeout(1.0)
                busy["seconds"] += 0.25  # 25% busy per interval

        env.process(workload(env))
        env.run(until=4.5)
        timeline = registry.get("cpu.utilization")
        assert len(timeline) == 4
        values = [v for _, v in timeline.points]
        # First interval saw no work before its sample; the rest are 25%.
        assert values[1:] == [pytest.approx(0.25)] * 3

    def test_ratio_probe_zero_when_idle(self, env, registry):
        sampler = TimelineSampler(env, registry, interval=1.0)
        state = {"hits": 0.0, "total": 0.0}
        sampler.add_ratio_probe("buffer.hit_rate",
                                lambda: state["hits"],
                                lambda: state["total"])
        sampler.start()
        env.run(until=1.5)  # no traffic at all
        timeline = registry.get("buffer.hit_rate")
        assert [v for _, v in timeline.points] == [0.0]

    def test_level_probe_snapshots(self, env, registry):
        sampler = TimelineSampler(env, registry, interval=0.5)
        queue = {"length": 0}
        sampler.add_level_probe("disk.queue", lambda: queue["length"])
        sampler.start()

        def fill(env):
            yield env.timeout(0.75)
            queue["length"] = 7

        env.process(fill(env))
        env.run(until=1.25)
        values = [v for _, v in registry.get("disk.queue").points]
        assert values == [0.0, 7.0]


class TestLifecycle:
    def test_invalid_interval(self, env, registry):
        with pytest.raises(ValueError):
            TimelineSampler(env, registry, interval=0.0)

    def test_start_idempotent(self, env, registry):
        sampler = TimelineSampler(env, registry, interval=1.0)
        sampler.add_level_probe("x", lambda: 1)
        sampler.start()
        sampler.start()
        env.run(until=2.5)
        # One process, not two: exactly one sample per interval.
        assert len(registry.get("x")) == 2
        assert sampler.samples_taken == 2

    def test_resync_discards_warmup_delta(self, env, registry):
        sampler = TimelineSampler(env, registry, interval=1.0)
        busy = {"seconds": 0.0}
        sampler.add_rate_probe("cpu", lambda: busy["seconds"])
        # Warm-up accumulates busy time before sampling starts.
        busy["seconds"] = 42.0
        sampler.resync()
        sampler.start()
        env.run(until=1.5)
        # Without resync the first sample would read 42 busy-seconds.
        assert [v for _, v in registry.get("cpu").points] == [0.0]

    def test_final_sample_covers_partial_interval(self, env, registry):
        sampler = TimelineSampler(env, registry, interval=10.0)
        busy = {"seconds": 0.0}
        sampler.add_rate_probe("cpu", lambda: busy["seconds"])
        sampler.start()
        busy["seconds"] = 0.5
        env.run(until=2.0)  # run ends before the first 10 s tick
        sampler.final_sample()
        timeline = registry.get("cpu")
        # One sample over the 2 s partial window: 0.5 / 2.0 busy.
        assert [v for _, v in timeline.points] == [pytest.approx(0.25)]
        # Nothing elapsed since: a second call is a no-op.
        sampler.final_sample()
        assert len(timeline) == 1

    def test_final_sample_at_exact_tick_is_noop(self, env, registry):
        """End-of-run flush at the precise periodic-sample moment.

        When the measurement window ends exactly on a sampling tick the
        final interval has zero length: the flush must not divide rate
        or ratio probes by dt == 0, must not emit a duplicate timeline
        point, and must leave the sample counter untouched.
        """
        sampler = TimelineSampler(env, registry, interval=1.0)
        busy = {"seconds": 0.0}
        state = {"hits": 0.0, "total": 0.0}
        sampler.add_rate_probe("cpu", lambda: busy["seconds"])
        sampler.add_ratio_probe("hit_rate", lambda: state["hits"],
                                lambda: state["total"])
        sampler.start()

        def workload(env):
            while True:
                yield env.timeout(1.0)
                busy["seconds"] += 0.5
                state["hits"] += 1.0
                state["total"] += 2.0

        env.process(workload(env))
        env.run(until=3.0)  # ends exactly on the third tick
        taken = sampler.samples_taken
        points_before = {name: list(registry.get(name).points)
                         for name in ("cpu", "hit_rate")}
        sampler.final_sample()  # dt == 0: must be a clean no-op
        assert sampler.samples_taken == taken
        for name, before in points_before.items():
            assert list(registry.get(name).points) == before
