"""Perf-regression ledger tests: append, read, diff, render, CLI."""

import json

import pytest

from repro.obs.ledger import (
    append_metrics,
    git_sha,
    host_fingerprint,
    latest_diffs,
    read_ledger,
    trend_table,
)
from repro.obs.perf_cli import (
    main as perf_main,
    regression_direction,
    regressions,
)


@pytest.fixture
def ledger(tmp_path):
    return str(tmp_path / "perf_ledger.jsonl")


class TestAppend:
    def test_rows_carry_full_schema(self, ledger):
        rows = append_metrics({"speedup": 1.5}, "des_throughput",
                              path=ledger)
        assert len(rows) == 1
        row = rows[0]
        assert row["metric"] == "speedup"
        assert row["value"] == 1.5
        assert row["benchmark"] == "des_throughput"
        assert row["ts"].endswith("Z")
        assert len(row["host"]) == 12
        assert row["git_sha"]  # short sha here, "unknown" outside git
        with open(ledger) as handle:
            assert json.loads(handle.readline()) == row

    def test_appends_accumulate(self, ledger):
        append_metrics({"speedup": 1.5}, "bench", path=ledger)
        append_metrics({"speedup": 1.6}, "bench", path=ledger)
        rows, skipped = read_ledger(ledger)
        assert [r["value"] for r in rows] == [1.5, 1.6]
        assert skipped == 0

    def test_non_finite_and_non_numeric_skipped(self, ledger):
        rows = append_metrics(
            {"ok": 2.0, "nan": float("nan"), "inf": float("inf"),
             "text": "fast"}, "bench", path=ledger)
        assert [r["metric"] for r in rows] == ["ok"]

    def test_creates_parent_directory(self, tmp_path):
        path = str(tmp_path / "results" / "ledger.jsonl")
        append_metrics({"x": 1.0}, "bench", path=path)
        assert read_ledger(path)[0]

    def test_host_fingerprint_is_stable(self):
        assert host_fingerprint() == host_fingerprint()

    def test_git_sha_unknown_outside_checkout(self, tmp_path):
        assert git_sha(cwd=str(tmp_path)) == "unknown"


class TestRead:
    def test_missing_file_reads_empty(self, ledger):
        assert read_ledger(ledger) == ([], 0)

    def test_corrupt_lines_skipped_softly(self, ledger):
        append_metrics({"x": 1.0}, "bench", path=ledger)
        with open(ledger, "a") as handle:
            handle.write("{ truncated\n")
            handle.write('{"not": "a row"}\n')
        rows, skipped = read_ledger(ledger)
        assert len(rows) == 1
        assert skipped == 2


class TestDiffAndTrend:
    def test_latest_vs_previous(self, ledger):
        append_metrics({"speedup": 1.5}, "bench", path=ledger)
        append_metrics({"speedup": 1.8}, "bench", path=ledger)
        rows, _ = read_ledger(ledger)
        diffs = latest_diffs(rows)
        entry = diffs["speedup"]
        assert entry["latest"]["value"] == 1.8
        assert entry["previous"]["value"] == 1.5
        assert entry["delta"] == pytest.approx(0.3)
        assert entry["pct"] == pytest.approx(20.0)
        assert entry["samples"] == 2

    def test_single_row_has_no_previous(self, ledger):
        append_metrics({"speedup": 1.5}, "bench", path=ledger)
        rows, _ = read_ledger(ledger)
        entry = latest_diffs(rows)["speedup"]
        assert entry["previous"] is None
        assert entry["delta"] is None

    def test_trend_table_renders_markdown(self, ledger):
        append_metrics({"speedup": 1.5, "eps": 200_000}, "bench",
                       path=ledger)
        append_metrics({"speedup": 1.8}, "bench", path=ledger)
        rows, _ = read_ledger(ledger)
        table = trend_table(rows)
        assert "### speedup" in table
        assert "### eps" in table
        assert "| when (UTC) | git | host | benchmark | value |" in table
        assert "2 recorded" in table

    def test_metric_filter_and_empty_ledger(self, ledger):
        assert trend_table([]) == "(perf ledger is empty)"
        append_metrics({"a": 1.0, "b": 2.0}, "bench", path=ledger)
        rows, _ = read_ledger(ledger)
        table = trend_table(rows, metric="a")
        assert "### a" in table
        assert "### b" not in table


class TestPerfCli:
    def test_append_and_render(self, ledger, capsys):
        assert perf_main(["--ledger", ledger,
                          "--append", "speedup=1.5"]) == 0
        assert perf_main(["--ledger", ledger,
                          "--append", "speedup=1.8"]) == 0
        out = capsys.readouterr().out
        assert "### speedup" in out
        rows, _ = read_ledger(ledger)
        assert len(rows) == 2
        assert all(r["benchmark"] == "manual" for r in rows)

    def test_out_file(self, ledger, tmp_path):
        perf_main(["--ledger", ledger, "--append", "x=1"])
        out = str(tmp_path / "trend.md")
        assert perf_main(["--ledger", ledger, "--out", out]) == 0
        with open(out) as handle:
            assert "### x" in handle.read()

    def test_empty_ledger_still_exits_zero(self, ledger, capsys):
        assert perf_main(["--ledger", ledger]) == 0
        assert "empty" in capsys.readouterr().out

    def test_bad_append_spec_rejected(self, ledger, capsys):
        with pytest.raises(SystemExit):
            perf_main(["--ledger", ledger, "--append", "not-a-pair"])


class TestRegressionDirection:
    def test_seconds_metrics_regress_upward(self):
        assert regression_direction(
            "scaleup_placement_build_seconds_p1024") == 1
        assert regression_direction("smoke_wall_seconds") == 1

    def test_rate_metrics_regress_downward(self):
        assert regression_direction("scaleup_events_per_sec_p1024") == -1
        assert regression_direction("des_kernel_speedup") == -1

    def test_slower_build_flagged(self, ledger):
        append_metrics({"build_seconds": 10.0}, "bench", path=ledger)
        append_metrics({"build_seconds": 12.0}, "bench", path=ledger)
        rows, _ = read_ledger(ledger)
        assert regressions(latest_diffs(rows)) == ["build_seconds"]

    def test_faster_build_not_flagged(self, ledger):
        append_metrics({"build_seconds": 12.0}, "bench", path=ledger)
        append_metrics({"build_seconds": 6.0}, "bench", path=ledger)
        rows, _ = read_ledger(ledger)
        assert regressions(latest_diffs(rows)) == []

    def test_throughput_drop_flagged_rise_not(self, ledger):
        append_metrics({"eps": 100.0, "speedup": 1.0}, "bench", path=ledger)
        append_metrics({"eps": 80.0, "speedup": 2.0}, "bench", path=ledger)
        rows, _ = read_ledger(ledger)
        assert regressions(latest_diffs(rows)) == ["eps"]

    def test_cli_note_is_direction_aware(self, ledger, capsys):
        perf_main(["--ledger", ledger, "--append", "wall_seconds=10"])
        capsys.readouterr()
        perf_main(["--ledger", ledger, "--append", "wall_seconds=20"])
        err = capsys.readouterr().err
        assert "regression" in err
        assert "wall_seconds" in err


class TestStrictMode:
    def test_strict_exits_one_on_regression(self, ledger, capsys):
        perf_main(["--ledger", ledger, "--append", "wall_seconds=10"])
        capsys.readouterr()
        assert perf_main(["--ledger", ledger, "--strict",
                          "--append", "wall_seconds=20"]) == 1
        assert "regression" in capsys.readouterr().err

    def test_without_strict_regression_still_exits_zero(self, ledger,
                                                        capsys):
        perf_main(["--ledger", ledger, "--append", "wall_seconds=10"])
        assert perf_main(["--ledger", ledger,
                          "--append", "wall_seconds=20"]) == 0
        assert "regression" in capsys.readouterr().err

    def test_strict_without_regression_exits_zero(self, ledger, capsys):
        perf_main(["--ledger", ledger, "--append", "wall_seconds=20"])
        assert perf_main(["--ledger", ledger, "--strict",
                          "--append", "wall_seconds=10"]) == 0
        assert "regression" not in capsys.readouterr().err

    def test_strict_on_empty_ledger_exits_zero(self, ledger):
        assert perf_main(["--ledger", ledger, "--strict"]) == 0
