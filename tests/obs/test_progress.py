"""Progress-stream tests: golden event sequences on a tiny 2-spec plan.

The ``--progress jsonl`` stream is the machine-facing contract: every
spec must reach exactly one terminal ``spec-finish`` event (status
``executed`` or ``cached``), framed by one ``plan-start`` and one
``plan-end``, under the serial executor, the process pool, and the
all-cache-hits path alike.  Terminal events are emitted by the parent
in plan order, so everything except heartbeat interleaving is asserted
verbatim.
"""

import io

import pytest

from repro.experiments import FIGURES, ResultCache, run_experiment
from repro.obs.progress import (
    NULL_PROGRESS,
    ProgressTracker,
    read_progress_jsonl,
)

#: Two specs -- one strategy, two MPLs -- small enough to simulate in
#: well under a second.
TINY = dict(cardinality=2_000, num_sites=4, measured_queries=5,
            mpls=(1, 2), seed=13, strategies=("range",))


def _run_with_progress(jobs=1, cache=None):
    buffer = io.StringIO()
    progress = ProgressTracker(stream=buffer, mode="jsonl")
    try:
        result = run_experiment(FIGURES["8a"], jobs=jobs, cache=cache,
                                progress=progress, **TINY)
    finally:
        progress.close()
    return result, read_progress_jsonl(buffer.getvalue())


def _assert_terminal_exactly_once(events, total, statuses):
    """Every spec index gets exactly one spec-finish, in plan order."""
    assert events[0]["event"] == "plan-start"
    assert events[0]["total"] == total
    assert events[-1]["event"] == "plan-end"
    finishes = [e for e in events if e["event"] == "spec-finish"]
    assert [e["index"] for e in finishes] == list(range(total))
    assert [e["status"] for e in finishes] == statuses
    starts = [e for e in events if e["event"] == "spec-start"]
    assert sorted(e["index"] for e in starts) == list(range(total))
    assert events[-1]["executed"] == statuses.count("executed")
    assert events[-1]["cached"] == statuses.count("cached")


class TestGoldenSequences:
    def test_serial_two_spec_plan(self):
        result, events = _run_with_progress(jobs=1)
        _assert_terminal_exactly_once(events, 2, ["executed", "executed"])
        # Serial emits no heartbeats; the sequence is fully golden.
        assert [e["event"] for e in events] == [
            "plan-start", "spec-start", "spec-finish",
            "spec-start", "spec-finish", "plan-end"]
        assert events[0]["executor"] == "serial"
        assert events[0]["figure"] == "8a"
        finish = [e for e in events if e["event"] == "spec-finish"][0]
        assert finish["strategy"] == "range"
        assert finish["mpl"] == 1
        assert len(finish["spec"]) == 12
        assert finish["events"] > 0
        assert finish["sim_seconds"] > 0
        assert result.executed_runs == 2

    def test_parallel_two_spec_plan(self):
        result, events = _run_with_progress(jobs=2)
        _assert_terminal_exactly_once(events, 2, ["executed", "executed"])
        assert events[0]["executor"] == "process-pool"
        assert events[0]["jobs"] == 2
        # Workers heartbeat at phase boundaries and once at completion.
        beats = [e for e in events if e["event"] == "heartbeat"]
        assert beats, "parallel workers must push heartbeats"
        assert {b["phase"] for b in beats} & {"simulate", "worker-done"}
        for beat in beats:
            assert beat["pid"] > 0
            assert len(beat["spec"]) == 12
        done = [b for b in beats if b["phase"] == "worker-done"]
        assert all(b["events"] > 0 for b in done)
        assert result.executed_runs == 2

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_all_cache_hits_path(self, tmp_path, jobs):
        cache = ResultCache(str(tmp_path))
        run_experiment(FIGURES["8a"], cache=cache, **TINY)  # warm it
        result, events = _run_with_progress(jobs=jobs, cache=cache)
        _assert_terminal_exactly_once(events, 2, ["cached", "cached"])
        assert not [e for e in events if e["event"] == "heartbeat"]
        assert result.cached_runs == 2


class TestTrackerUnit:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ProgressTracker(stream=io.StringIO(), mode="fancy")

    def test_line_mode_overwrites_one_status_line(self):
        buffer = io.StringIO()
        progress = ProgressTracker(stream=buffer, mode="line")
        result = run_experiment(FIGURES["8a"], progress=progress, **TINY)
        out = buffer.getvalue()
        assert result.executed_runs == 2
        # Carriage-return rewrites, one final newline at plan end.
        assert out.count("\r") >= 3
        assert out.endswith("\n")
        assert "2 simulated, 0 cached" in out

    def test_eta_prices_cached_specs_at_zero(self):
        progress = ProgressTracker(stream=io.StringIO(), mode="jsonl")
        progress.plan_started(total=4, executor="serial", jobs=1)

        class FakeSpec:
            strategy = "range"
            multiprogramming_level = 1

            def digest(self):
                return "f" * 64

        assert progress.eta_seconds() is None  # nothing executed yet
        progress.spec_finished(FakeSpec(), 0, cached=False, wall_seconds=2.0)
        progress.spec_finished(FakeSpec(), 1, cached=True)
        # Two specs remain, priced at the 2.0 s mean of executed ones.
        assert progress.eta_seconds() == pytest.approx(4.0)

    def test_eta_tail_cannot_use_more_workers_than_specs(self):
        """One spec left on a 4-worker pool still takes a full mean
        wall -- the old ``/ jobs`` estimate claimed a quarter of it."""
        progress = ProgressTracker(stream=io.StringIO(), mode="jsonl")
        progress.plan_started(total=5, executor="process-pool", jobs=4)

        class FakeSpec:
            strategy = "range"
            multiprogramming_level = 1

            def digest(self):
                return "f" * 64

        for index in range(4):
            progress.spec_finished(FakeSpec(), index, cached=False,
                                   wall_seconds=2.0)
        assert progress.eta_seconds() == pytest.approx(2.0)
        # With plenty of specs left the pool-wide divisor still applies.
        wide = ProgressTracker(stream=io.StringIO(), mode="jsonl")
        wide.plan_started(total=9, executor="process-pool", jobs=4)
        wide.spec_finished(FakeSpec(), 0, cached=False, wall_seconds=2.0)
        assert wide.eta_seconds() == pytest.approx(8 * 2.0 / 4)

    def test_null_progress_accepts_everything(self):
        NULL_PROGRESS.plan_started(total=1, executor="serial", jobs=1)
        NULL_PROGRESS.heartbeat({})
        NULL_PROGRESS.plan_finished()
        assert NULL_PROGRESS.worker_queue() is None

    def test_read_progress_jsonl_accepts_str_stream_and_lines(self):
        raw = '{"event": "plan-end"}\n\n{"event": "plan-start"}\n'
        for source in (raw, io.StringIO(raw), raw.splitlines()):
            events = read_progress_jsonl(source)
            assert [e["event"] for e in events] == ["plan-end", "plan-start"]
