"""Telemetry lifecycle tests plus the machine integration checks."""

import pytest

from repro.core import RangeStrategy
from repro.des import Environment
from repro.gamma import GammaMachine
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.storage import make_wisconsin
from repro.workload import make_mix


def _machine(telemetry=None, **kwargs):
    relation = make_wisconsin(10_000, correlation="low", seed=70)
    placement = RangeStrategy("unique1").partition(relation, 4)
    return GammaMachine(placement,
                        indexes={"unique1": False, "unique2": True},
                        seed=3, telemetry=telemetry, **kwargs)


class TestLifecycle:
    def test_bind_is_idempotent_for_same_env(self):
        telemetry = Telemetry()
        env = Environment()
        assert telemetry.bind(env) is telemetry
        assert telemetry.bind(env) is telemetry

    def test_bind_rejects_second_env(self):
        telemetry = Telemetry()
        telemetry.bind(Environment())
        with pytest.raises(RuntimeError):
            telemetry.bind(Environment())

    def test_trace_disabled_still_collects_metrics(self):
        telemetry = Telemetry(trace=False)
        telemetry.bind(Environment())
        assert not telemetry.tracing
        assert telemetry.begin_query(1, "QA") is None
        assert telemetry.lookup(1) is None
        telemetry.end_query(1)  # no-op, must not raise

    def test_null_telemetry_is_inert(self):
        assert not NULL_TELEMETRY.enabled
        assert NULL_TELEMETRY.begin_query(1, "QA") is None
        assert NULL_TELEMETRY.lookup(1) is None
        NULL_TELEMETRY.end_query(1)
        NULL_TELEMETRY.begin_window()
        NULL_TELEMETRY.end_window()
        assert NULL_TELEMETRY.bind(Environment()) is NULL_TELEMETRY


class TestMachineIntegration:
    def test_default_machine_uses_null_telemetry(self):
        machine = _machine()
        assert machine.telemetry is NULL_TELEMETRY

    def test_run_produces_spans_metrics_and_timelines(self):
        telemetry = Telemetry(timeline_interval=0.05)
        machine = _machine(telemetry)
        result = machine.run(make_mix("low-low", domain=10_000),
                             multiprogramming_level=4, measured_queries=80)
        assert result.completed >= 80

        # Spans: roughly one finished trace per measured query (queries
        # in flight at window start/end blur the exact count).
        assert telemetry.spans.finished >= 40
        assert telemetry.spans.span_count() > 0
        assert telemetry.spans.resource_totals  # why-table substrate

        # Metrics: per-node disk counters were registered and counted.
        reads = telemetry.registry.get("node.0.disk.reads")
        assert reads is not None and reads.value > 0
        completed = telemetry.registry.get("sched.queries.completed")
        assert completed.value == pytest.approx(result.completed)

        # Timelines: the sampler produced utilization series per node.
        cpu_timeline = telemetry.registry.get("node.0.cpu.utilization")
        assert cpu_timeline is not None and len(cpu_timeline) > 0
        assert all(0.0 <= v <= 1.0 + 1e-9 for _, v in cpu_timeline.points)
        sched_timeline = telemetry.registry.get("sched.cpu.utilization")
        assert sched_timeline is not None and len(sched_timeline) > 0

    def test_warmup_telemetry_is_dropped(self):
        telemetry = Telemetry()
        machine = _machine(telemetry)
        result = machine.run(make_mix("low-low", domain=10_000),
                             multiprogramming_level=4, measured_queries=50)
        # The completed-queries counter was reset at the window
        # boundary: it counts measured completions only, not warm-up.
        completed = telemetry.registry.get("sched.queries.completed")
        assert completed.value == pytest.approx(result.completed)
        assert completed.value < 50 + machine.metrics.completed_total

    def test_disabled_run_keeps_summary_utilizations(self):
        machine = _machine()
        result = machine.run(make_mix("low-low", domain=10_000),
                             multiprogramming_level=4, measured_queries=50)
        # The summary's utilizations come from the same cumulative
        # busy-seconds the sampler reads; they must survive telemetry
        # being off entirely.
        assert 0.0 < result.cpu_utilization <= 1.0
        assert 0.0 < result.disk_utilization <= 1.0
        usage = machine.resource_usage()
        assert usage["node.0.cpu.busy_seconds"] > 0
        assert usage["sched.cpu.busy_seconds"] > 0


class TestTelemetrySpec:
    def test_build_mirrors_constructor(self):
        from repro.obs import TelemetrySpec
        spec = TelemetrySpec(trace=False, timeline_interval=0.25,
                             span_capacity=1_000)
        telemetry = spec.build()
        telemetry.bind(Environment())
        assert telemetry.spans is None  # trace=False
        assert telemetry.timeline_interval == 0.25
        assert telemetry.span_capacity == 1_000

    def test_spec_is_picklable(self):
        import pickle

        from repro.obs import TelemetrySpec
        spec = TelemetrySpec()
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_detached_telemetry_pickles_with_data(self):
        import pickle

        from repro.obs import why_table
        telemetry = Telemetry()
        machine = _machine(telemetry)
        machine.run(make_mix("low-low", domain=10_000),
                    multiprogramming_level=4, measured_queries=40)
        telemetry.detach()
        assert telemetry.env is None
        assert telemetry.sampler is None
        clone = pickle.loads(pickle.dumps(telemetry))
        # Collected data survives the round trip...
        assert clone.spans.span_count() == telemetry.spans.span_count()
        assert clone.spans.resource_totals == telemetry.spans.resource_totals
        assert "query type" in why_table(clone.spans)
        # ...including registry instruments and timelines.
        completed = clone.registry.get("sched.queries.completed")
        assert completed.value == 40

    def test_undetached_telemetry_still_pickles(self):
        # __getstate__ strips the environment and sampler even when the
        # caller forgot to detach (the pickle is a snapshot either way).
        import pickle
        telemetry = Telemetry()
        machine = _machine(telemetry)
        machine.run(make_mix("low-low", domain=10_000),
                    multiprogramming_level=2, measured_queries=20)
        clone = pickle.loads(pickle.dumps(telemetry))
        assert clone.env is None
        assert clone.sampler is None
        assert clone.spans.span_count() == telemetry.spans.span_count()
