"""Unit tests for the static placement-quality audit layer."""

import math

import pytest

from repro.core import RangeStrategy
from repro.gamma import GammaMachine
from repro.obs import (
    SkewStats,
    Telemetry,
    audit_digest,
    audit_placement,
    fragment_counts,
    gini_coefficient,
    skew_stats,
    slice_spreads,
)
from repro.experiments import ATTR_A, ATTR_B, FIGURES, build_strategy
from repro.storage import make_wisconsin
from repro.workload import make_mix

CARDINALITY = 20_000
SITES = 32


@pytest.fixture(scope="module")
def relation():
    return make_wisconsin(CARDINALITY, correlation="low", seed=13)


@pytest.fixture(scope="module")
def mix():
    return make_mix("low-low", domain=CARDINALITY)


def _placement(name, relation, num_sites=SITES):
    strategy = build_strategy(name, FIGURES["8a"], cardinality=CARDINALITY)
    return strategy.partition(relation, num_sites)


class TestSkewStats:
    def test_even_vector_is_unskewed(self):
        stats = skew_stats([10, 10, 10, 10])
        assert stats.max_mean_ratio == 1.0
        assert stats.cv == 0.0
        assert stats.gini == 0.0
        assert stats.empty_fraction == 0.0

    def test_concentrated_vector_is_maximally_skewed(self):
        stats = skew_stats([100, 0, 0, 0])
        assert stats.max_mean_ratio == pytest.approx(4.0)
        assert stats.gini == pytest.approx(0.75)
        assert stats.empty_fraction == pytest.approx(0.75)

    def test_gini_bounds(self):
        # Gini of n-1 zeros and one loaded cell approaches (n-1)/n.
        assert 0.0 <= gini_coefficient([5, 3, 8, 1]) < 1.0
        assert gini_coefficient([0, 0, 0]) == 0.0
        assert gini_coefficient([7]) == 0.0

    def test_all_zero_vector(self):
        stats = skew_stats([0, 0])
        assert stats.max_mean_ratio == 1.0
        assert stats.cv == 0.0
        assert stats.empty_fraction == 1.0

    def test_empty_vector_rejected(self):
        with pytest.raises(ValueError):
            skew_stats([])

    def test_json_round_trip(self):
        stats = skew_stats([3, 1, 4, 1, 5])
        assert SkewStats.from_json_dict(stats.to_json_dict()) == stats


class TestSection7Fanouts:
    """The audit reproduces the paper's §7 in-text processor counts."""

    def test_range_broadcasts_qb_to_all_processors(self, relation, mix):
        audit = audit_placement(_placement("range", relation), mix,
                                strategy="range", samples=200)
        qb = audit.fanouts["QB"]
        # Range on unique1 cannot localize unique2: all 32 processors.
        assert qb.target_min == qb.target_max == SITES
        assert qb.broadcast_fraction == 1.0
        assert not qb.two_step
        # The partitioning attribute localizes to a single processor.
        qa = audit.fanouts["QA"]
        assert qa.target_mean == pytest.approx(1.0)
        assert qa.broadcast_fraction == 0.0

    def test_magic_fanout_within_one_of_mi_targets(self, relation, mix):
        placement = _placement("magic", relation)
        assert placement.slice_targets == {ATTR_A: 4, ATTR_B: 8}
        assert placement.mi == {ATTR_A: 4.0, ATTR_B: 8.0}
        audit = audit_placement(placement, mix, strategy="magic",
                                samples=200)
        assert abs(audit.fanouts["QA"].target_mean
                   - placement.slice_targets[ATTR_A]) <= 1.0
        assert abs(audit.fanouts["QB"].target_mean
                   - placement.slice_targets[ATTR_B]) <= 1.0
        assert not audit.fanouts["QA"].two_step
        assert audit.fanouts["QA"].broadcast_fraction == 0.0

    def test_magic_slice_spread_tracks_targets(self, relation):
        spreads = {s.attribute: s
                   for s in slice_spreads(_placement("magic", relation))}
        for attribute in (ATTR_A, ATTR_B):
            spread = spreads[attribute]
            assert spread.target is not None
            assert abs(spread.achieved_mean - spread.target) <= 1.0
            assert spread.within_one

    def test_berd_reports_two_step_probe_and_base_fanout(self, relation,
                                                         mix):
        audit = audit_placement(_placement("berd", relation), mix,
                                strategy="berd", samples=200)
        qb = audit.fanouts["QB"]
        # Secondary-attribute selections probe the auxiliary index
        # first, then select on the matching base fragments.
        assert qb.two_step
        assert qb.probe_mean >= 1.0
        assert 1.0 <= qb.target_mean < SITES
        assert qb.broadcast_fraction == 0.0
        # Primary-attribute selections need no probe.
        assert not audit.fanouts["QA"].two_step
        # Auxiliary heat map present for the secondary attribute.
        assert ATTR_B in audit.aux_counts
        assert sum(audit.aux_counts[ATTR_B]) == CARDINALITY


class TestAuditStructure:
    def test_heat_maps_cover_relation(self, relation, mix):
        audit = audit_placement(_placement("range", relation), mix,
                                strategy="range", samples=50)
        assert len(audit.tuple_counts) == SITES
        assert sum(audit.tuple_counts) == CARDINALITY
        assert audit.fragment_counts == tuple(1 for _ in range(SITES))

    def test_magic_fragment_counts_from_directory(self, relation, mix):
        placement = _placement("magic", relation)
        audit = audit_placement(placement, mix, strategy="magic",
                                samples=50)
        assert sum(audit.fragment_counts) == placement.directory.num_entries

    def test_deterministic_across_calls(self, relation, mix):
        placement = _placement("berd", relation)
        first = audit_placement(placement, mix, strategy="berd",
                                samples=60, seed=5)
        second = audit_placement(placement, mix, strategy="berd",
                                 samples=60, seed=5)
        assert first == second
        assert audit_digest({"berd": first.summary()}) \
            == audit_digest({"berd": second.summary()})

    def test_json_round_trip(self, relation, mix):
        from repro.obs import PlacementAudit
        audit = audit_placement(_placement("magic", relation), mix,
                                strategy="magic", samples=40)
        assert PlacementAudit.from_json_dict(audit.to_json_dict()) == audit

    def test_small_directory_identity_path_has_no_targets(self, mix):
        tiny = make_wisconsin(600, correlation="low", seed=13)
        strategy = build_strategy("magic", FIGURES["8a"], cardinality=600)
        # 62x61 entries > 16 sites, so targets exist; force the identity
        # path with a relation smaller than the directory cannot happen
        # via configs -- use a 1-D strategy instead.
        from repro.core import MagicStrategy, MagicTuning
        one_dim = MagicStrategy(
            [ATTR_A], tuning=MagicTuning(shape={ATTR_A: 40},
                                         mi={ATTR_A: 4.0}))
        placement = one_dim.partition(tiny, 8)
        # K = 1 assigns round-robin; no factorized target applies.
        assert placement.slice_targets is None
        assert slice_spreads(placement)[0].target is None


class TestRuntimeLoadBalance:
    """The gamma machine records per-node load-balance telemetry."""

    def test_run_records_busy_shares_and_op_counters(self):
        relation = make_wisconsin(10_000, correlation="low", seed=70)
        placement = RangeStrategy("unique1").partition(relation, 4)
        telemetry = Telemetry(timeline_interval=0.05)
        machine = GammaMachine(placement,
                               indexes={"unique1": False, "unique2": True},
                               seed=3, telemetry=telemetry)
        machine.run(make_mix("low-low", domain=10_000),
                    multiprogramming_level=4, measured_queries=60)
        registry = telemetry.registry

        shares = [registry.get(f"node.{site}.cpu.busy_share").value
                  for site in range(4)]
        assert sum(shares) == pytest.approx(1.0)
        assert registry.get("nodes.cpu.busy_share.max_over_mean").value \
            >= 1.0

        selects = [registry.get(f"node.{site}.ops.selects").value
                   for site in range(4)]
        assert sum(selects) > 0
        imbalance = registry.get("nodes.cpu.imbalance")
        assert imbalance is not None and len(imbalance) > 0
        assert all(0.0 <= value <= 1.0 + 1e-9
                   for _, value in imbalance.points)

    def test_disabled_telemetry_records_nothing(self):
        relation = make_wisconsin(5_000, correlation="low", seed=70)
        placement = RangeStrategy("unique1").partition(relation, 4)
        machine = GammaMachine(placement,
                               indexes={"unique1": False, "unique2": True},
                               seed=3)
        machine.run(make_mix("low-low", domain=5_000),
                    multiprogramming_level=2, measured_queries=30)
        # The null registry hands out shared no-ops; nothing persists.
        assert machine.telemetry.registry.get("node.0.ops.selects") is None


class TestSpreadProbe:
    def test_spread_probe_measures_rate_gap(self):
        from repro.des import Environment
        from repro.obs import MetricsRegistry, TimelineSampler
        env = Environment()
        registry = MetricsRegistry()
        sampler = TimelineSampler(env, registry, interval=1.0)
        busy = {"a": 0.0, "b": 0.0}
        sampler.add_spread_probe("imbalance", [lambda: busy["a"],
                                               lambda: busy["b"]])
        sampler.start()

        def workload(env):
            while True:
                yield env.timeout(1.0)
                busy["a"] += 1.0   # flat out
                busy["b"] += 0.25  # mostly idle

        env.process(workload(env))
        env.run(until=3.5)
        values = [v for _, v in registry.get("imbalance").points]
        # After the first interval the gap settles at 0.75/s.
        assert values[1:] == [pytest.approx(0.75)] * 2

    def test_spread_probe_survives_resync(self):
        from repro.des import Environment
        from repro.obs import MetricsRegistry, TimelineSampler
        env = Environment()
        registry = MetricsRegistry()
        sampler = TimelineSampler(env, registry, interval=1.0)
        busy = {"a": 0.0, "b": 0.0}
        sampler.add_spread_probe("imbalance", [lambda: busy["a"],
                                               lambda: busy["b"]])
        busy["a"] = 100.0  # warm-up work that resync must discard
        sampler.resync()
        sampler.start()
        env.run(until=1.5)
        values = [v for _, v in registry.get("imbalance").points]
        assert values == [pytest.approx(0.0)]
        assert all(math.isfinite(v) for v in values)
