"""Unit tests for the metrics registry instruments."""

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_increments(self, registry):
        counter = registry.counter("node.0.disk.reads")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_rejects_negative(self, registry):
        counter = registry.counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_get_or_create_returns_same_instrument(self, registry):
        a = registry.counter("x")
        b = registry.counter("x")
        assert a is b

    def test_name_collision_across_types(self, registry):
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")


class TestGauge:
    def test_set_holds_last_value(self, registry):
        gauge = registry.gauge("sched.queries.in_flight")
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3


class TestHistogram:
    def test_observe_counts_and_sums(self, registry):
        hist = registry.histogram("disk.wait_seconds")
        hist.observe(0.001)
        hist.observe(0.5)
        assert hist.count == 2
        assert hist.total == pytest.approx(0.501)
        assert hist.mean == pytest.approx(0.2505)

    def test_buckets_are_cumulative(self, registry):
        hist = registry.histogram("h", bounds=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        # Prometheus-style: each bound counts everything at or below it;
        # the implicit +Inf bucket is the total count.
        assert hist.bucket_counts == [1, 2]
        assert hist.count == 3
        assert hist.minimum == pytest.approx(0.05)
        assert hist.maximum == pytest.approx(5.0)

    def test_rejects_unsorted_bounds(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("bad", bounds=(1.0, 0.1))

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestTimeline:
    def test_samples_kept_in_order(self, registry):
        timeline = registry.timeline("node.0.cpu.utilization")
        timeline.sample(0.0, 0.1)
        timeline.sample(0.5, 0.9)
        assert timeline.points == [(0.0, 0.1), (0.5, 0.9)]
        assert len(timeline) == 2
        assert timeline.last == (0.5, 0.9)

    def test_bounded_with_drop_accounting(self, registry):
        timeline = registry.timeline("t", capacity=2)
        for i in range(5):
            timeline.sample(float(i), 0.0)
        assert len(timeline) == 2
        assert timeline.dropped == 3
        assert [t for t, _ in timeline.points] == [3.0, 4.0]


class TestRegistry:
    def test_iteration_sorted_by_name(self, registry):
        registry.counter("b")
        registry.counter("a")
        assert [metric.name for metric in registry] == ["a", "b"]
        assert registry.names() == ["a", "b"]

    def test_reset_clears_instruments_but_keeps_them(self, registry):
        counter = registry.counter("c")
        counter.inc(5)
        timeline = registry.timeline("t")
        timeline.sample(0.0, 1.0)
        registry.reset()
        assert counter.value == 0
        assert len(timeline) == 0
        assert registry.get("c") is counter

    def test_get_unknown_returns_none(self, registry):
        assert registry.get("nope") is None


class TestNullRegistry:
    def test_disabled_flag(self):
        assert MetricsRegistry.enabled
        assert not NullRegistry.enabled

    def test_instruments_are_shared_noops(self):
        a = NULL_REGISTRY.counter("anything")
        b = NULL_REGISTRY.counter("else")
        assert a is b
        a.inc(10)
        assert a.value == 0

    def test_all_instrument_kinds_absorb_calls(self):
        NULL_REGISTRY.gauge("g").set(1)
        NULL_REGISTRY.histogram("h").observe(1.0)
        NULL_REGISTRY.timeline("t").sample(0.0, 1.0)
        assert NULL_REGISTRY.gauge("g").value == 0.0
        assert NULL_REGISTRY.histogram("h").count == 0
        assert len(NULL_REGISTRY.timeline("t")) == 0
        assert list(NULL_REGISTRY) == []
