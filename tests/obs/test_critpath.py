"""Unit tests for critical-path extraction and attribution."""

import pytest

from repro.obs import (
    critical_paths,
    chrome_events_from_critical_path,
    critpath_table,
    summarize_critical_paths,
    validate_chrome_trace,
    chrome_trace,
)


def _span(trace, span, parent, name, start, end, **attrs):
    record = {"trace": trace, "span": span, "parent": parent,
              "name": name, "start": start, "end": end, "qtype": "QA"}
    record.update(attrs)
    return record


def _leaf(trace, span, parent, resource, wait, service, end):
    return _span(trace, span, parent, resource,
                 end - wait - service, end,
                 resource=resource, wait=wait, service=service)


def _simple_trace(trace_id=1):
    """root [0,10] -> plan [0,1] with a leaf, select [1,9] with leaves."""
    return [
        _span(trace_id, 0, None, "query", 0.0, 10.0),
        _span(trace_id, 1, 0, "plan", 0.0, 1.0),
        _leaf(trace_id, 2, 1, "sched.cpu", wait=0.25, service=0.5, end=0.75),
        _span(trace_id, 3, 0, "select.site", 1.0, 9.0),
        _leaf(trace_id, 4, 3, "node.disk", wait=1.0, service=3.0, end=6.0),
        _leaf(trace_id, 5, 3, "node.cpu", wait=0.0, service=2.0, end=8.0),
    ]


class TestCriticalPaths:
    def test_segments_partition_the_wall(self):
        paths = critical_paths(_simple_trace())
        assert len(paths) == 1
        path = paths[0]
        assert path.wall == pytest.approx(10.0)
        assert sum(s.duration for s in path.segments) \
            == pytest.approx(path.wall)
        # Chronological, non-overlapping tiling of [start, end].
        cursor = path.start
        for segment in path.segments:
            assert segment.start == pytest.approx(cursor)
            cursor = segment.end
        assert cursor == pytest.approx(path.end)

    def test_attribution_sums_to_at_most_wall(self):
        path = critical_paths(_simple_trace())[0]
        attribution = path.attribution()
        assert sum(attribution.values()) <= path.wall * (1 + 1e-9)
        assert sum(attribution.values()) == pytest.approx(path.wall)
        # Leaf time split into wait/service; gaps attributed as self.
        assert attribution["node.disk.wait"] == pytest.approx(1.0)
        assert attribution["node.disk.service"] == pytest.approx(3.0)
        assert attribution["sched.cpu.wait"] == pytest.approx(0.25)
        assert attribution["sched.cpu.service"] == pytest.approx(0.5)
        # query self: [9, 10]; plan self: [0.75, 1.0].
        assert attribution["query.self"] == pytest.approx(1.0)
        assert attribution["plan.self"] == pytest.approx(0.25)

    def test_phases_partition_the_wall(self):
        path = critical_paths(_simple_trace())[0]
        phases = path.phases()
        assert sum(phases.values()) == pytest.approx(path.wall)
        assert phases["plan"] == pytest.approx(1.0)
        assert phases["select.site"] == pytest.approx(8.0)
        assert phases["query"] == pytest.approx(1.0)

    def test_overlapping_siblings_are_clipped(self):
        # Two children overlap on [2, 6]; the path must not double-count.
        records = [
            _span(1, 0, None, "query", 0.0, 10.0),
            _leaf(1, 1, 0, "node.cpu", wait=0.0, service=6.0, end=6.0),
            _leaf(1, 2, 0, "node.disk", wait=0.0, service=8.0, end=10.0),
        ]
        path = critical_paths(records)[0]
        assert sum(s.duration for s in path.segments) \
            == pytest.approx(10.0)
        attribution = path.attribution()
        # The later-ending disk leaf wins its whole interval [2, 10];
        # the cpu leaf only contributes the uncovered prefix [0, 2].
        assert attribution["node.disk.service"] == pytest.approx(8.0)
        assert attribution["node.cpu.service"] == pytest.approx(2.0)

    def test_grandchild_outside_clip_window_is_skipped(self):
        # A clipped subtree whose own children lie entirely after the
        # clip window must not leak segments outside it.
        records = [
            _span(1, 0, None, "query", 0.0, 10.0),
            _span(1, 1, 0, "select.site", 0.0, 8.0),
            _leaf(1, 2, 1, "node.cpu", wait=0.0, service=1.0, end=8.0),
            _span(1, 3, 0, "select.site", 4.0, 10.0),
            _leaf(1, 4, 3, "node.disk", wait=0.0, service=2.0, end=10.0),
        ]
        path = critical_paths(records)[0]
        assert sum(s.duration for s in path.segments) \
            == pytest.approx(10.0)
        cursor = path.start
        for segment in path.segments:
            assert segment.start >= cursor - 1e-12
            cursor = segment.end

    def test_truncated_traces_skipped(self):
        records = _simple_trace()
        records[2]["truncated"] = True
        assert critical_paths(records) == []

    def test_incomplete_traces_skipped(self):
        no_root = [r for r in _simple_trace() if r["parent"] is not None]
        assert critical_paths(no_root) == []
        missing_parent = _simple_trace(2)
        missing_parent.pop(3)  # drop select.site; its leaves dangle
        assert critical_paths(missing_parent) == []

    def test_total_work_is_all_leaves(self):
        path = critical_paths(_simple_trace())[0]
        # 0.75 + 4.0 + 2.0 over all leaves, overlapping or not.
        assert path.total_work == pytest.approx(6.75)


class TestSummaries:
    def test_per_type_aggregation(self):
        records = _simple_trace(1) + _simple_trace(2)
        summaries = summarize_critical_paths(critical_paths(records))
        assert list(summaries) == ["QA"]
        summary = summaries["QA"]
        assert summary.queries == 2
        assert summary.mean_wall == pytest.approx(10.0)
        assert sum(summary.path_seconds.values()) \
            == pytest.approx(10.0)
        assert sum(summary.phase_seconds.values()) \
            == pytest.approx(10.0)
        assert summary.mean_critical_work <= summary.mean_wall
        assert 0.0 < summary.serial_fraction <= 1.0
        assert summary.parallelism == pytest.approx(6.75 / 10.0)

    def test_table_renders_shares_and_phases(self):
        summaries = summarize_critical_paths(
            critical_paths(_simple_trace()))
        text = critpath_table(summaries)
        assert "query type QA" in text
        assert "node.disk" in text
        assert "(coordination)" in text
        assert "phase split:" in text
        assert "select.site" in text
        assert "overlap" in text

    def test_empty_table_message(self):
        assert "no complete traces" in critpath_table({})


class TestChromeExport:
    def test_events_validate_and_tile(self):
        path = critical_paths(_simple_trace())[0]
        events = chrome_events_from_critical_path(path, pid=7)
        trace = chrome_trace(events)
        assert validate_chrome_trace(trace) == []
        slices = [e for e in events if e.get("ph") == "X"]
        assert len(slices) == len(path.segments)
        assert all(e["pid"] == 7 for e in slices)
        # Simulated seconds -> microseconds, tiling the response time.
        total_us = sum(e["dur"] for e in slices)
        assert total_us == pytest.approx(path.wall * 1e6)
        names = {e["name"] for e in slices}
        assert any("[service]" in name for name in names)
        assert any("[self]" in name for name in names)
