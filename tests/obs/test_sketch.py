"""Unit tests for the mergeable latency sketches."""

import json
import math
import pickle
import random

import pytest

from repro.obs import LatencyRecorder, LatencySketch


def _quantile_exact(values, q):
    return sorted(values)[int(q * (len(values) - 1))]


class TestLatencySketch:
    def test_empty_sketch(self):
        sketch = LatencySketch()
        assert len(sketch) == 0
        assert math.isnan(sketch.quantile(0.5))
        assert math.isnan(sketch.mean)
        assert sketch.bucket_count == 0

    def test_single_value(self):
        sketch = LatencySketch()
        sketch.record(0.125)
        assert sketch.quantile(0.0) == pytest.approx(0.125, rel=0.02)
        assert sketch.quantile(1.0) == pytest.approx(0.125, rel=0.02)
        assert sketch.mean == pytest.approx(0.125)
        assert sketch.min == sketch.max == 0.125

    @pytest.mark.parametrize("accuracy", [0.01, 0.02, 0.05])
    def test_relative_accuracy_guarantee(self, accuracy):
        rng = random.Random(42)
        values = [rng.lognormvariate(0.0, 2.0) for _ in range(4000)]
        sketch = LatencySketch(relative_accuracy=accuracy)
        for value in values:
            sketch.record(value)
        for q in (0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999):
            exact = _quantile_exact(values, q)
            estimate = sketch.quantile(q)
            assert abs(estimate - exact) <= accuracy * exact * 1.001, \
                (q, estimate, exact)

    def test_zero_and_negative_values_counted(self):
        sketch = LatencySketch()
        sketch.record(0.0)
        sketch.record(0.0)
        sketch.record(1.0)
        assert sketch.count == 3
        assert sketch.quantile(0.0) == 0.0
        assert sketch.quantile(1.0) == pytest.approx(1.0, rel=0.0201)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LatencySketch(relative_accuracy=0.0)
        with pytest.raises(ValueError):
            LatencySketch(relative_accuracy=1.0)
        with pytest.raises(ValueError):
            LatencySketch(max_buckets=1)
        with pytest.raises(ValueError):
            LatencySketch().quantile(1.5)

    def test_bounded_memory_with_accurate_tail(self):
        # 9 decades of values into 48 buckets: low buckets collapse,
        # but the p99 of the (high) tail stays within the guarantee.
        sketch = LatencySketch(relative_accuracy=0.02, max_buckets=48)
        rng = random.Random(7)
        values = [10 ** rng.uniform(-6, 3) for _ in range(20_000)]
        for value in values:
            sketch.record(value)
        assert len(sketch.buckets) <= 48
        assert sketch.bucket_count <= 49
        for q in (0.95, 0.99, 0.999):
            exact = _quantile_exact(values, q)
            assert abs(sketch.quantile(q) - exact) <= 0.02 * exact * 1.001

    def test_capacity_independent_of_sample_count(self):
        sketch = LatencySketch(max_buckets=64)
        rng = random.Random(3)
        sizes = []
        for n in range(1, 50_001):
            sketch.record(rng.expovariate(1.0))
            if n % 10_000 == 0:
                sizes.append(sketch.bucket_count)
        assert all(size <= 65 for size in sizes)
        # Growth has stopped: the last two checkpoints are equal.
        assert sizes[-1] == sizes[-2]

    def test_merge_equals_single_stream(self):
        rng = random.Random(11)
        values = [rng.lognormvariate(0, 1) for _ in range(3000)]
        whole = LatencySketch()
        for value in values:
            whole.record(value)
        # Shard the same stream over 3 sketches and merge.
        shards = [LatencySketch() for _ in range(3)]
        for index, value in enumerate(values):
            shards[index % 3].record(value)
        merged = LatencySketch()
        for shard in shards:
            merged.merge(shard)
        assert merged.buckets == whole.buckets
        assert merged.count == whole.count
        assert merged.total == pytest.approx(whole.total)
        assert merged.min == whole.min
        assert merged.max == whole.max

    def test_merge_rejects_mismatched_parameters(self):
        with pytest.raises(ValueError):
            LatencySketch(relative_accuracy=0.02).merge(
                LatencySketch(relative_accuracy=0.05))
        with pytest.raises(ValueError):
            LatencySketch(max_buckets=128).merge(
                LatencySketch(max_buckets=512))

    def test_json_round_trip(self):
        sketch = LatencySketch()
        for value in (0.0, 0.001, 0.5, 2.0, 2.0, 100.0):
            sketch.record(value)
        payload = json.loads(json.dumps(sketch.to_dict()))
        back = LatencySketch.from_dict(payload)
        assert back.buckets == sketch.buckets
        assert back.count == sketch.count
        assert back.zero_count == sketch.zero_count
        assert back.min == sketch.min
        assert back.max == sketch.max
        assert back.summary() == sketch.summary()

    def test_empty_json_round_trip(self):
        back = LatencySketch.from_dict(
            json.loads(json.dumps(LatencySketch().to_dict())))
        assert back.count == 0
        assert back.min == math.inf
        assert back.max == -math.inf

    def test_pickle_round_trip(self):
        sketch = LatencySketch()
        rng = random.Random(5)
        for _ in range(500):
            sketch.record(rng.expovariate(2.0))
        back = pickle.loads(pickle.dumps(sketch))
        assert back.buckets == sketch.buckets
        assert back.summary() == sketch.summary()

    def test_summary_columns(self):
        sketch = LatencySketch()
        for value in (0.01, 0.02, 0.03):
            sketch.record(value)
        summary = sketch.summary()
        assert set(summary) == {"count", "mean", "max", "p50", "p95", "p99"}
        assert summary["count"] == 3
        assert summary["p50"] <= summary["p95"] <= summary["p99"]
        empty = LatencySketch().summary()
        assert empty == {"count": 0, "mean": 0.0, "max": 0.0,
                         "p50": 0.0, "p95": 0.0, "p99": 0.0}


class TestLatencyRecorder:
    def test_records_per_query_type(self):
        recorder = LatencyRecorder()
        recorder.record("QA", 0.1)
        recorder.record("QB", 0.2)
        recorder.record("QA", 0.3)
        assert sorted(recorder.sketches) == ["QA", "QB"]
        assert recorder.sketches["QA"].count == 2
        assert recorder.overall().count == 3

    def test_reset_drops_warmup(self):
        recorder = LatencyRecorder()
        recorder.record("QA", 0.1)
        recorder.reset()
        assert recorder.sketches == {}

    def test_merge_and_merged_classmethod(self):
        a = LatencyRecorder()
        b = LatencyRecorder()
        a.record("QA", 0.1)
        b.record("QA", 0.2)
        b.record("QB", 0.3)
        merged = LatencyRecorder.merged([a, b])
        assert merged.sketches["QA"].count == 2
        assert merged.sketches["QB"].count == 1
        assert LatencyRecorder.merged([]) is None

    def test_json_and_pickle_round_trip(self):
        recorder = LatencyRecorder(relative_accuracy=0.05)
        recorder.record("QA", 0.25)
        recorder.record("QB", 1.5)
        payload = json.loads(json.dumps(recorder.to_dict()))
        back = LatencyRecorder.from_dict(payload)
        assert back.relative_accuracy == 0.05
        assert back.summary() == recorder.summary()
        pickled = pickle.loads(pickle.dumps(recorder))
        assert pickled.summary() == recorder.summary()

    def test_summary_sorted_by_type(self):
        recorder = LatencyRecorder()
        recorder.record("QB", 0.2)
        recorder.record("QA", 0.1)
        assert list(recorder.summary()) == ["QA", "QB"]
