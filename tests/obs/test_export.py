"""Unit tests for the JSONL and Prometheus exporters."""

import pytest

from repro.obs import (
    MetricsRegistry,
    load_jsonl,
    metric_records,
    render_prometheus,
    write_metrics_jsonl,
)


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.counter("node.0.disk.reads").inc(12)
    registry.gauge("sched.queries.in_flight").set(4)
    hist = registry.histogram("disk.wait_seconds", bounds=(0.01, 0.1))
    hist.observe(0.005)
    hist.observe(0.05)
    timeline = registry.timeline("node.0.cpu.utilization")
    timeline.sample(1.0, 0.25)
    timeline.sample(2.0, 0.75)
    return registry


class TestJsonl:
    def test_metric_records_cover_all_instruments(self, registry):
        records = {r["name"]: r for r in metric_records(registry)}
        assert set(records) == {"node.0.disk.reads",
                                "sched.queries.in_flight",
                                "disk.wait_seconds",
                                "node.0.cpu.utilization"}
        assert records["node.0.disk.reads"]["value"] == 12
        assert records["disk.wait_seconds"]["count"] == 2
        assert records["node.0.cpu.utilization"]["points"] == [[1.0, 0.25],
                                                               [2.0, 0.75]]

    def test_round_trip_through_file(self, registry, tmp_path):
        path = tmp_path / "metrics.jsonl"
        written = write_metrics_jsonl(registry, str(path))
        records = load_jsonl(str(path))
        assert written == len(records) == 4
        by_name = {r["name"]: r for r in records}
        assert by_name["sched.queries.in_flight"]["value"] == 4


class TestPrometheus:
    def test_rendering(self, registry):
        text = render_prometheus(registry)
        assert "# TYPE repro_node_0_disk_reads counter" in text
        assert "repro_node_0_disk_reads 12.0" in text
        assert "repro_sched_queries_in_flight 4.0" in text
        # Histogram: cumulative buckets plus +Inf, sum, count.
        assert 'repro_disk_wait_seconds_bucket{le="0.01"} 1' in text
        assert 'repro_disk_wait_seconds_bucket{le="0.1"} 2' in text
        assert 'repro_disk_wait_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_disk_wait_seconds_count 2" in text
        # Timelines render as a gauge holding the last sample.
        assert "repro_node_0_cpu_utilization 0.75" in text

    def test_empty_registry(self):
        assert render_prometheus(MetricsRegistry()) == ""
