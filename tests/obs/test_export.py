"""Unit tests for the JSONL and Prometheus exporters."""

import re

import pytest

from repro.obs.export import _prom_name, _prom_value
from repro.obs import (
    MetricsRegistry,
    load_jsonl,
    metric_records,
    render_prometheus,
    write_metrics_jsonl,
)


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.counter("node.0.disk.reads").inc(12)
    registry.gauge("sched.queries.in_flight").set(4)
    hist = registry.histogram("disk.wait_seconds", bounds=(0.01, 0.1))
    hist.observe(0.005)
    hist.observe(0.05)
    timeline = registry.timeline("node.0.cpu.utilization")
    timeline.sample(1.0, 0.25)
    timeline.sample(2.0, 0.75)
    return registry


class TestJsonl:
    def test_metric_records_cover_all_instruments(self, registry):
        records = {r["name"]: r for r in metric_records(registry)}
        assert set(records) == {"node.0.disk.reads",
                                "sched.queries.in_flight",
                                "disk.wait_seconds",
                                "node.0.cpu.utilization"}
        assert records["node.0.disk.reads"]["value"] == 12
        assert records["disk.wait_seconds"]["count"] == 2
        assert records["node.0.cpu.utilization"]["points"] == [[1.0, 0.25],
                                                               [2.0, 0.75]]

    def test_round_trip_through_file(self, registry, tmp_path):
        path = tmp_path / "metrics.jsonl"
        written = write_metrics_jsonl(registry, str(path))
        records = load_jsonl(str(path))
        assert written == len(records) == 4
        by_name = {r["name"]: r for r in records}
        assert by_name["sched.queries.in_flight"]["value"] == 4


class TestPrometheus:
    def test_rendering(self, registry):
        text = render_prometheus(registry)
        assert "# TYPE repro_node_0_disk_reads counter" in text
        assert "repro_node_0_disk_reads 12.0" in text
        assert "repro_sched_queries_in_flight 4.0" in text
        # Histogram: cumulative buckets plus +Inf, sum, count.
        assert 'repro_disk_wait_seconds_bucket{le="0.01"} 1' in text
        assert 'repro_disk_wait_seconds_bucket{le="0.1"} 2' in text
        assert 'repro_disk_wait_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_disk_wait_seconds_count 2" in text
        # Timelines render as a gauge holding the last sample.
        assert "repro_node_0_cpu_utilization 0.75" in text

    def test_empty_registry(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestPrometheusEdgeCases:
    """The text exposition format's naming and value special cases."""

    def test_nan_value_renders_as_NaN(self):
        registry = MetricsRegistry()
        registry.gauge("throughput.ci_halfwidth").set(float("nan"))
        text = render_prometheus(registry)
        assert "repro_throughput_ci_halfwidth NaN" in text

    def test_infinities_render_with_sign(self):
        registry = MetricsRegistry()
        registry.gauge("ratio.up").set(float("inf"))
        registry.gauge("ratio.down").set(float("-inf"))
        text = render_prometheus(registry)
        assert "repro_ratio_up +Inf" in text
        assert "repro_ratio_down -Inf" in text
        # Never python's repr spellings, which scrapers reject.
        assert "inf\n" not in text

    def test_short_window_nan_confidence_interval_round_trips(self):
        # The realistic NaN source: a confidence interval over a window
        # too short to estimate variance.
        from repro.gamma.metrics import RunMetrics
        from repro.des import Environment
        metrics = RunMetrics(Environment())
        registry = MetricsRegistry()
        registry.gauge("throughput.ci").set(
            metrics.throughput_confidence())
        text = render_prometheus(registry)
        assert "repro_throughput_ci NaN" in text

    def test_name_sanitization(self):
        assert _prom_name("node.0.disk-reads") == "node_0_disk_reads"
        assert _prom_name("node 0/disk%util") == "node_0_disk_util"
        assert _prom_name("9lives") == "_9lives"
        assert _prom_name("") == "_"
        assert _prom_name("already_ok:sum") == "already_ok:sum"

    def test_sanitized_names_are_legal_metric_names(self):
        legal = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
        for ugly in ("node.3.cpu", "7th-heaven", "a b c", "μs.per.op"):
            assert legal.match(_prom_name(ugly)), ugly

    def test_value_formatting(self):
        assert _prom_value(1.5) == "1.5"
        assert _prom_value(float("nan")) == "NaN"
        assert _prom_value(float("inf")) == "+Inf"
        assert _prom_value(float("-inf")) == "-Inf"

    def test_special_values_render_scrapeable_lines(self):
        registry = MetricsRegistry()
        registry.gauge("edge.nan").set(float("nan"))
        registry.gauge("edge.inf").set(float("inf"))
        for line in render_prometheus(registry).splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            assert value in ("NaN", "+Inf", "-Inf") or float(value) == 0.0 \
                or value not in ("inf", "-inf", "nan")
