"""Unit tests for wall-clock phase attribution (:mod:`repro.obs.phases`)."""

import os
import pickle

import pytest

from repro.obs import phases
from repro.obs.phases import MAX_SPANS, PhaseAccumulator, memory_snapshot


@pytest.fixture(autouse=True)
def clean_stack():
    """Every test starts and ends with no accumulator installed."""
    phases.reset()
    yield
    phases.reset()


class TestAccumulator:
    def test_totals_accumulate_seconds_and_counts(self):
        acc = PhaseAccumulator()
        with acc.phase("simulate"):
            pass
        with acc.phase("simulate"):
            pass
        snap = acc.snapshot(memory=False)
        assert snap["totals"]["simulate"]["count"] == 2
        assert snap["totals"]["simulate"]["seconds"] >= 0.0

    def test_nested_phases_record_depth(self):
        acc = PhaseAccumulator()
        with acc.phase("outer"):
            with acc.phase("inner"):
                assert acc.open_phase == "inner"
        depths = {span["name"]: span["depth"] for span in acc.spans}
        assert depths == {"outer": 0, "inner": 1}
        assert all(span["pid"] == os.getpid() for span in acc.spans)

    def test_exception_still_closes_phase(self):
        acc = PhaseAccumulator()
        with pytest.raises(RuntimeError):
            with acc.phase("simulate"):
                raise RuntimeError("boom")
        assert acc.open_phase is None
        assert acc.snapshot(memory=False)["totals"]["simulate"]["count"] == 1

    def test_span_cap_counts_drops(self):
        acc = PhaseAccumulator()
        acc.spans = [{"name": "x"}] * MAX_SPANS
        with acc.phase("overflow"):
            pass
        assert len(acc.spans) == MAX_SPANS
        assert acc.dropped_spans == 1
        # Totals keep counting past the cap.
        assert acc.seconds("overflow") >= 0.0

    def test_annotate_sums_counters(self):
        acc = PhaseAccumulator()
        acc.annotate(events=100, sim_seconds=1.5)
        acc.annotate(events=50)
        assert acc.counters == {"events": 150.0, "sim_seconds": 1.5}

    def test_snapshot_is_picklable_plain_data(self):
        acc = PhaseAccumulator()
        with acc.phase("simulate"):
            acc.annotate(events=3)
        snap = acc.snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap

    def test_merge_folds_worker_snapshot(self):
        worker = PhaseAccumulator()
        with worker.phase("simulate"):
            worker.annotate(events=10)
        parent = PhaseAccumulator()
        with parent.phase("cache-read"):
            pass
        parent.merge(worker.snapshot())
        snap = parent.snapshot(memory=False)
        assert set(snap["totals"]) == {"simulate", "cache-read"}
        assert snap["counters"]["events"] == 10.0
        # Worker spans arrive verbatim (the pid keys the trace track).
        assert any(s["name"] == "simulate" for s in snap["spans"])

    def test_merge_keeps_max_memory_mark(self):
        parent = PhaseAccumulator()
        parent.merge({"memory": {"peak_rss_kb": 1e12}})
        snap = parent.snapshot(memory=True)
        assert snap["memory"]["peak_rss_kb"] == 1e12

    def test_listener_sees_start_and_end(self):
        calls = []
        acc = PhaseAccumulator(
            listener=lambda name, action, t: calls.append((name, action)))
        with acc.phase("simulate"):
            pass
        assert calls == [("simulate", "start"), ("simulate", "end")]


class TestModuleStack:
    def test_phase_is_noop_without_accumulator(self):
        assert phases.current() is None
        with phases.phase("simulate"):
            pass  # must not raise or record anywhere
        phases.annotate(events=5)  # ditto

    def test_pop_merges_into_parent_by_default(self):
        outer = phases.push(PhaseAccumulator())
        phases.push(PhaseAccumulator())
        with phases.phase("simulate"):
            pass
        phases.pop()
        assert phases.current() is outer
        assert outer.seconds("simulate") >= 0.0
        assert outer.snapshot(memory=False)["totals"]["simulate"]["count"] == 1

    def test_pop_without_merge_keeps_parent_clean(self):
        outer = phases.push(PhaseAccumulator())
        phases.push(PhaseAccumulator())
        with phases.phase("simulate"):
            pass
        phases.pop(merge_into_parent=False)
        assert outer.snapshot(memory=False)["totals"] == {}

    def test_reset_clears_inherited_state(self):
        phases.push(PhaseAccumulator())
        phases.reset()
        assert phases.current() is None


class TestMemorySnapshot:
    def test_reports_peak_rss_on_unix(self):
        marks = memory_snapshot()
        assert marks["peak_rss_kb"] is None or marks["peak_rss_kb"] > 0

    def test_tracemalloc_mark_absent_unless_tracing(self):
        import tracemalloc
        if not tracemalloc.is_tracing():
            assert memory_snapshot()["tracemalloc_peak_kb"] is None
