"""CLI coverage for ``repro-profile`` (--json payload, --sort orders)."""

import json

import pytest

from repro.experiments.profile_cli import build_parser, main, profile_point

TINY = ["--cardinality", "2000", "--processors-count", "4",
        "--measured", "5", "--mpl", "2"]


class TestProfilePoint:
    def test_returns_stats_result_and_wall(self):
        stats, result, wall = profile_point(
            "8a", "range", mpl=2, cardinality=2_000, num_sites=4,
            measured=5, seed=13)
        assert result.throughput > 0
        assert wall > 0
        assert stats.stats  # cProfile saw the simulation


class TestCli:
    def test_default_sort_is_tottime(self):
        assert build_parser().parse_args([]).sort == "tottime"

    def test_header_reports_wall_seconds(self, capsys):
        assert main(TINY) == 0
        out = capsys.readouterr().out
        assert "wall " in out
        assert "top " in out

    @pytest.mark.parametrize("sort", ["tottime", "cumulative"])
    def test_json_payload_sorted_and_walled(self, tmp_path, sort, capsys):
        path = str(tmp_path / "profile.json")
        assert main(TINY + ["--sort", sort, "--top", "10",
                            "--json", path]) == 0
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["sort"] == sort
        assert payload["wall_seconds"] > 0
        assert payload["throughput"] > 0
        assert len(payload["rows"]) == 10
        key = "cumtime" if sort == "cumulative" else sort
        values = [row[key] for row in payload["rows"]]
        assert values == sorted(values, reverse=True)
        # Per-function time can never exceed the whole run's wall time.
        assert values[0] <= payload["wall_seconds"] * 1.5

    def test_json_to_stdout(self, capsys):
        assert main(TINY + ["--json", "-"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert "wall_seconds" in payload
