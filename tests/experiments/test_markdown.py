"""Tests for the markdown report generator."""

import pytest

from repro.experiments import (
    figure_section,
    report_from_directory,
    save_figure_json,
    scoreboard_row,
    series_table,
)


@pytest.fixture(scope="module")
def small_result(small_figure_result):
    # Shared session-scoped run from tests/conftest.py.
    return small_figure_result


class TestBuildingBlocks:
    def test_scoreboard_row_shape(self, small_result):
        row = scoreboard_row(small_result)
        assert row.startswith("| Fig 8a |")
        assert row.count("|") == 5

    def test_series_table(self, small_result):
        table = series_table(small_result)
        lines = table.splitlines()
        assert lines[0].startswith("| MPL |")
        assert len(lines) == 2 + 2  # header + separator + 2 MPL rows

    def test_series_table_mpl_filter(self, small_result):
        table = series_table(small_result, mpls=[8])
        assert "| 8 |" in table
        assert "| 1 |" not in table

    def test_figure_section_complete(self, small_result):
        section = figure_section(small_result)
        assert "### Figure 8a" in section
        assert "8 processors" in section
        assert "Outcome" in section


class TestDirectoryReport:
    def test_report_roundtrip(self, small_result, tmp_path):
        save_figure_json(small_result, str(tmp_path / "figure_8a.json"))
        report = report_from_directory(str(tmp_path), title="Test report")
        assert report.startswith("# Test report")
        assert "Fig 8a" in report
        assert "### Figure 8a" in report

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            report_from_directory(str(tmp_path))

    def test_bad_file_skipped_with_note(self, small_result, tmp_path):
        save_figure_json(small_result, str(tmp_path / "figure_8a.json"))
        (tmp_path / "figure_zz.json").write_text(
            '{"format_version": 99}')
        report = report_from_directory(str(tmp_path))
        assert "Skipped files" in report
        assert "figure_zz.json" in report

    def test_non_figure_files_ignored(self, small_result, tmp_path):
        save_figure_json(small_result, str(tmp_path / "figure_8a.json"))
        (tmp_path / "notes.txt").write_text("irrelevant")
        report = report_from_directory(str(tmp_path))
        assert "notes.txt" not in report
