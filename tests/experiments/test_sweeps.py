"""Tests for the parameter-sweep framework."""

import pytest

from repro.experiments import AXES, SweepResult, sweep
from repro.experiments.sweeps import run_point
from repro.experiments import FIGURES


SMALL = dict(cardinality=10_000, measured_queries=50,
             multiprogramming_level=8)


#: One representative value per built-in axis, for apply() coverage.
AXIS_SAMPLES = {
    "processors": 4,
    "num_sites": 8,
    "qb_selectivity": 12,
    "correlation": 0.5,
    "buffer_pool": 64,
    "cpu_mips": 6_000_000,
}


class TestAxes:
    def test_builtin_axes_present(self):
        assert {"processors", "qb_selectivity", "correlation",
                "buffer_pool", "cpu_mips"} <= set(AXES)

    def test_every_axis_sampled(self):
        # Keep AXIS_SAMPLES in sync when adding an axis.
        assert set(AXIS_SAMPLES) == set(AXES)

    @pytest.mark.parametrize("axis_name", sorted(AXES))
    def test_apply_overrides_accepted_by_run_point(self, axis_name):
        overrides = AXES[axis_name].apply(AXIS_SAMPLES[axis_name])
        assert set(overrides) <= {"params", "correlation",
                                  "qb_low_tuples", "num_sites"}
        kwargs = dict(cardinality=4_000, measured_queries=15, num_sites=4)
        kwargs.update(overrides)
        run = run_point(FIGURES["8a"], "range", multiprogramming_level=2,
                        **kwargs)
        assert run.completed == 15
        assert run.throughput > 0

    def test_every_axis_described(self):
        for axis in AXES.values():
            assert axis.description

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown axis"):
            sweep("voltage", [1, 2])


class TestSweep:
    @pytest.fixture(scope="class")
    def processors_sweep(self):
        return sweep("processors", [4, 8], figure="8a",
                     strategies=("range", "magic"), **SMALL)

    def test_grid_complete(self, processors_sweep):
        assert len(processors_sweep.points) == 4  # 2 values x 2 strategies
        assert processors_sweep.axis == "processors"

    def test_series_extraction(self, processors_sweep):
        series = processors_sweep.series("magic")
        assert [v for v, _ in series] == [4, 8]
        assert all(th > 0 for _, th in series)

    def test_ratio_series(self, processors_sweep):
        ratios = processors_sweep.ratio_series("magic", "range")
        assert len(ratios) == 2
        assert all(r > 0 for _, r in ratios)

    def test_missing_strategy_empty(self, processors_sweep):
        assert processors_sweep.series("berd") == []

    def test_qb_selectivity_axis(self):
        result = sweep("qb_selectivity", [10, 20], figure="9",
                       strategies=("magic",), **SMALL)
        assert len(result.points) == 2

    def test_correlation_axis(self):
        result = sweep("correlation", [0.0, 1.0], figure="8a",
                       strategies=("magic",), **SMALL)
        th = dict(result.series("magic"))
        # Perfectly correlated attributes localize and speed MAGIC up.
        assert th[1.0] > th[0.0]

    def test_buffer_pool_axis(self):
        result = sweep("buffer_pool", [0, 256], figure="8a",
                       strategies=("range",), **SMALL)
        assert len(result.points) == 2

    def test_parallel_sweep_matches_serial(self, processors_sweep):
        parallel = sweep("processors", [4, 8], figure="8a",
                         strategies=("range", "magic"), jobs=2, **SMALL)
        assert parallel.jobs == 2
        assert [(p.strategy, p.value, p.result)
                for p in parallel.points] == \
            [(p.strategy, p.value, p.result)
             for p in processors_sweep.points]

    def test_sweep_resumes_from_cache(self, tmp_path):
        from repro.experiments import ResultCache
        cache = ResultCache(str(tmp_path))
        first = sweep("processors", [4, 8], figure="8a",
                      strategies=("range", "magic"), cache=cache, **SMALL)
        assert first.executed_runs == 4
        second = sweep("processors", [4, 8], figure="8a",
                       strategies=("range", "magic"), cache=cache, **SMALL)
        assert second.executed_runs == 0
        assert second.cached_runs == 4
        assert [p.result for p in second.points] == \
            [p.result for p in first.points]


class TestRunPoint:
    def test_overrides_apply(self):
        run = run_point(FIGURES["8a"], "range", multiprogramming_level=4,
                        cardinality=10_000, num_sites=4,
                        measured_queries=40, correlation=1.0)
        assert run.completed == 40
        assert run.multiprogramming_level == 4

    def test_qb_tuples_override(self):
        run = run_point(FIGURES["8a"], "berd", multiprogramming_level=4,
                        cardinality=10_000, num_sites=4,
                        measured_queries=40, qb_low_tuples=20)
        assert run.completed == 40
