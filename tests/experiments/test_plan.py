"""Tests for the declarative run-plan layer."""

import pickle

import pytest

from repro.experiments import (
    FIGURES,
    PlannedRun,
    RunSpec,
    compile_figure,
    compile_point,
    execute_run,
    params_fingerprint,
)
from repro.experiments.plan import clear_memos, prewarm
from repro.experiments.sweeps import run_point
from repro.gamma import GAMMA_PARAMETERS


def _spec(**overrides):
    base = dict(figure="8a", strategy="range", cardinality=10_000,
                correlation="low", num_sites=4, multiprogramming_level=2,
                measured_queries=20, seed=5, mix_name="low-low")
    base.update(overrides)
    return RunSpec(**base)


class TestRunSpec:
    def test_frozen_and_hashable(self):
        spec = _spec()
        with pytest.raises(AttributeError):
            spec.seed = 7
        assert spec in {spec}
        assert spec == _spec()

    def test_picklable(self):
        spec = _spec()
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_digest_stable(self):
        assert _spec().digest() == _spec().digest()
        assert len(_spec().digest()) == 64

    def test_digest_sensitive_to_every_field(self):
        base = _spec().digest()
        variants = [
            _spec(strategy="magic"), _spec(cardinality=20_000),
            _spec(correlation="high"), _spec(num_sites=8),
            _spec(multiprogramming_level=4), _spec(measured_queries=40),
            _spec(seed=6), _spec(mix_name="low-moderate"),
            _spec(qb_low_tuples=20), _spec(params_digest="deadbeef"),
        ]
        digests = {base} | {v.digest() for v in variants}
        assert len(digests) == len(variants) + 1

    def test_machine_seed_derives_from_spec(self):
        assert _spec(seed=41).machine_seed == 41


class TestParamsFingerprint:
    def test_equal_params_fingerprint_identically(self):
        assert params_fingerprint(GAMMA_PARAMETERS) == \
            params_fingerprint(GAMMA_PARAMETERS.with_overrides())

    def test_changed_knob_changes_fingerprint(self):
        faster = GAMMA_PARAMETERS.with_overrides(
            cpu_instructions_per_second=6_000_000.0)
        assert params_fingerprint(faster) != \
            params_fingerprint(GAMMA_PARAMETERS)


class TestCompile:
    def test_figure_grid_strategy_major(self):
        plan = compile_figure(FIGURES["8a"], mpls=(1, 8), seed=5)
        keys = [(run.spec.strategy, run.spec.multiprogramming_level)
                for run in plan]
        assert keys == [("range", 1), ("range", 8), ("berd", 1),
                        ("berd", 8), ("magic", 1), ("magic", 8)]
        assert len(plan) == 6
        assert len(set(plan.digests())) == 6

    def test_point_applies_overrides(self):
        planned = compile_point(FIGURES["8a"], "berd",
                                multiprogramming_level=4,
                                correlation=1.0, qb_low_tuples=20,
                                num_sites=8)
        assert planned.spec.correlation == 1.0
        assert planned.spec.qb_low_tuples == 20
        assert planned.spec.num_sites == 8
        assert planned.spec.params_digest == \
            params_fingerprint(GAMMA_PARAMETERS)

    def test_point_defaults_to_config_correlation(self):
        planned = compile_point(FIGURES["8b"], "range",
                                multiprogramming_level=1)
        assert planned.spec.correlation == "high"


class TestMemoEviction:
    """The memos evict oldest-first instead of dropping everything."""

    @pytest.fixture(autouse=True)
    def _fresh_memos(self):
        clear_memos()
        yield
        clear_memos()

    def test_relation_memo_keeps_recent_entries(self, monkeypatch):
        from repro.experiments import plan

        builds = []
        real_make = plan.make_wisconsin

        def counting_make(cardinality, correlation, seed):
            builds.append(seed)
            return real_make(cardinality, correlation=correlation,
                             seed=seed)

        monkeypatch.setattr(plan, "make_wisconsin", counting_make)
        monkeypatch.setattr(plan, "_MAX_RELATIONS", 4)

        def relation(seed):
            return plan._relation_for(_spec(cardinality=2_000, seed=seed))

        for seed in range(5):
            relation(seed)
        # Cap 4: inserting seed 4 evicted only seed 0, the oldest.
        assert builds == [0, 1, 2, 3, 4]
        for seed in (4, 3, 2, 1):
            relation(seed)
        # All four recent entries were still memoized.  The old
        # clear-the-dict eviction would have rebuilt 3, 2 and 1 here.
        assert builds == [0, 1, 2, 3, 4]
        relation(0)
        assert builds == [0, 1, 2, 3, 4, 0]

    def test_placement_memo_evicts_oldest_only(self, monkeypatch):
        from repro.experiments import plan

        built = []
        real_build = plan.build_strategy

        def counting_build(name, config, cardinality, params):
            built.append(name)
            return real_build(name, config, cardinality, params)

        monkeypatch.setattr(plan, "build_strategy", counting_build)
        monkeypatch.setattr(plan, "_MAX_PLACEMENTS", 2)

        def placement(strategy):
            spec = _spec(cardinality=2_000, strategy=strategy)
            return plan._placement_for(spec, GAMMA_PARAMETERS)

        for strategy in ("range", "berd", "magic"):
            placement(strategy)
        assert built == ["range", "berd", "magic"]
        # berd was evicted to make room for magic; magic is still live.
        placement("magic")
        assert built == ["range", "berd", "magic"]
        placement("range")
        assert built == ["range", "berd", "magic", "range"]


class TestPrewarm:
    @pytest.fixture(autouse=True)
    def _fresh_memos(self):
        clear_memos()
        yield
        clear_memos()

    def _plan(self):
        return compile_figure(FIGURES["8a"], cardinality=2_000,
                              num_sites=4, measured_queries=10,
                              mpls=(1, 2), seed=5)

    def test_builds_each_distinct_artifact_once(self):
        stats = prewarm(self._plan())
        # 3 strategies x 2 MPLs share one relation; the relation memo
        # is hit while building the 2nd and 3rd strategies' placements.
        assert stats == {"relations_built": 1, "relations_hit": 2,
                         "placements_built": 3, "placements_hit": 0,
                         "errors": 0}

    def test_second_prewarm_is_all_hits(self):
        prewarm(self._plan())
        stats = prewarm(self._plan())
        assert stats == {"relations_built": 0, "relations_hit": 3,
                         "placements_built": 0, "placements_hit": 3,
                         "errors": 0}

    def test_strict_raises_on_unbuildable_spec(self):
        import dataclasses
        bad = PlannedRun(spec=dataclasses.replace(
            _spec(cardinality=2_000), strategy="no-such-strategy"))
        with pytest.raises(ValueError):
            prewarm([bad])

    def test_non_strict_counts_errors(self):
        import dataclasses
        bad = PlannedRun(spec=dataclasses.replace(
            _spec(cardinality=2_000), strategy="no-such-strategy"))
        good = compile_point(FIGURES["8a"], "range", cardinality=2_000,
                             num_sites=4, measured_queries=10,
                             multiprogramming_level=1, seed=5)
        stats = prewarm([bad, good], strict=False)
        assert stats["errors"] == 1
        assert stats["placements_built"] == 1


class TestExecuteRun:
    def test_matches_run_point(self):
        spec_kwargs = dict(multiprogramming_level=2, cardinality=8_000,
                           num_sites=4, measured_queries=20, seed=5)
        planned = compile_point(FIGURES["8a"], "range", **spec_kwargs)
        direct = execute_run(planned.spec, planned.params)
        via_run_point = run_point(FIGURES["8a"], "range", **spec_kwargs)
        assert direct == via_run_point

    def test_memo_reuse_is_result_invariant(self):
        planned = compile_point(FIGURES["8a"], "magic",
                                multiprogramming_level=2,
                                cardinality=8_000, num_sites=4,
                                measured_queries=20, seed=5)
        warm = execute_run(planned.spec, planned.params)
        clear_memos()
        cold = execute_run(planned.spec, planned.params)
        assert warm == cold

    def test_planned_run_defaults_params(self):
        assert PlannedRun(spec=_spec()).params == GAMMA_PARAMETERS
