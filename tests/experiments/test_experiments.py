"""Tests for the experiment harness (configs, runner, report, CLI)."""

import pytest

from repro.experiments import (
    ATTR_A,
    ATTR_B,
    FIGURES,
    average_processors_table,
    build_strategy,
    check_expectation,
    format_figure,
    format_processor_table,
    rebalance_worst_case,
    run_experiment,
)
from repro.experiments.cli import build_parser, main
from repro.experiments.runner import FigureResult


class TestConfigs:
    def test_every_paper_figure_present(self):
        assert set(FIGURES) == {"8a", "8b", "9", "10a", "10b",
                                "11a", "11b", "12a", "12b"}

    def test_shapes_match_paper(self):
        assert FIGURES["8a"].magic_shape == {ATTR_A: 62, ATTR_B: 61}
        assert FIGURES["10a"].magic_shape == {ATTR_A: 23, ATTR_B: 193}
        assert FIGURES["11a"].magic_shape == {ATTR_A: 193, ATTR_B: 23}
        assert FIGURES["12a"].magic_shape == {ATTR_A: 101, ATTR_B: 91}

    def test_correlations(self):
        assert FIGURES["8a"].correlation == "low"
        assert FIGURES["8b"].correlation == "high"

    def test_figure9_compares_berd_and_magic_only(self):
        assert FIGURES["9"].strategies == ("berd", "magic")
        assert FIGURES["9"].mix_name == "low-low-20"

    def test_mpls_cover_paper_axis(self):
        for config in FIGURES.values():
            assert config.mpls[0] == 1
            assert config.mpls[-1] == 64

    def test_describe(self):
        assert "8a" in FIGURES["8a"].describe()


class TestStrategyFactory:
    def test_all_names_buildable(self):
        config = FIGURES["8a"]
        for name in ("range", "hash", "berd", "magic", "magic-derived"):
            strategy = build_strategy(name, config, cardinality=10_000)
            assert strategy is not None

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            build_strategy("zigzag", FIGURES["8a"], 10_000)


class TestRunnerSmall:
    @pytest.fixture(scope="class")
    def small_result(self):
        return run_experiment(
            FIGURES["8a"], cardinality=10_000, num_sites=8,
            measured_queries=60, mpls=(1, 8), seed=5)

    def test_series_complete(self, small_result):
        assert set(small_result.series) == {"range", "berd", "magic"}
        for runs in small_result.series.values():
            assert [r.multiprogramming_level for r in runs] == [1, 8]
            assert all(r.throughput > 0 for r in runs)

    def test_throughput_lookup(self, small_result):
        value = small_result.throughput_at("magic", 8)
        assert value == small_result.series["magic"][1].throughput
        with pytest.raises(KeyError):
            small_result.throughput_at("magic", 99)

    def test_final_throughputs(self, small_result):
        finals = small_result.final_throughputs()
        assert set(finals) == {"range", "berd", "magic"}

    def test_format_figure_renders(self, small_result):
        text = format_figure(small_result)
        assert "Figure 8a" in text
        assert "MPL" in text
        assert "paper expectation" in text

    def test_check_expectation_returns_verdict(self, small_result):
        ok, detail = check_expectation(small_result)
        assert isinstance(ok, bool)
        assert "magic" in detail


class TestProcessorTable:
    def test_low_low_counts(self):
        table = average_processors_table(
            FIGURES["8a"], cardinality=20_000, num_sites=8, samples=100,
            seed=5)
        # range broadcasts QB to all 8 sites, localizes QA to 1.
        assert table["range"]["QB"] == 8.0
        assert table["range"]["QA"] == 1.0
        # MAGIC localizes both below the machine size.
        assert table["magic"]["average"] < 8.0
        text = format_processor_table(FIGURES["8a"], table)
        assert "range" in text and "magic" in text


class TestRebalanceWorstCase:
    def test_paper_section4_shape(self):
        stats = rebalance_worst_case(num_sites=8, cardinality=8_000, grid=8)
        assert stats["empty_before"] >= stats["empty_after"]
        assert stats["spread_after"] <= stats["spread_before"]
        assert stats["swaps"] >= 0


class TestCli:
    def test_parser_accepts_figures(self):
        args = build_parser().parse_args(["--figure", "8a", "--quick"])
        assert args.figure == "8a"
        assert args.quick

    def test_no_action_prints_help(self, capsys):
        assert main([]) == 2

    def test_rebalance_action(self, capsys):
        assert main(["--rebalance"]) == 0
        out = capsys.readouterr().out
        assert "Section 4" in out

    def test_sweep_requires_values(self, capsys):
        assert main(["--sweep", "processors"]) == 2

    def test_sweep_action(self, capsys):
        code = main(["--sweep", "cpu_mips",
                     "--sweep-values", "3000000",
                     "--quick", "--cardinality", "10000",
                     "--processors-count", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Sweep over cpu_mips" in out

    def test_report_action(self, capsys, tmp_path):
        from repro.experiments import run_experiment, save_figure_json
        result = run_experiment(FIGURES["8a"], cardinality=10_000,
                                num_sites=4, measured_queries=40,
                                mpls=(1,), seed=5)
        save_figure_json(result, str(tmp_path / "figure_8a.json"))
        assert main(["--report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Fig 8a" in out

    def test_save_json_flag(self, capsys, tmp_path):
        import os
        code = main(["--figure", "8a", "--quick",
                     "--cardinality", "10000",
                     "--processors-count", "4",
                     "--save-json", str(tmp_path)])
        assert code == 0
        assert os.path.exists(tmp_path / "figure_8a.json")


class TestCliTelemetry:
    def test_trace_writes_artifacts(self, capsys, tmp_path):
        import os
        code = main(["--figure", "8a", "--trace",
                     "--metrics-out", str(tmp_path),
                     "--cardinality", "10000",
                     "--processors-count", "4",
                     "--mpls", "2", "--measured", "30"])
        assert code == 0
        stem = tmp_path / "8a_range_mpl2"
        for suffix in (".spans.jsonl", ".metrics.jsonl", ".metrics.prom",
                       ".summary.txt"):
            assert os.path.exists(str(stem) + suffix)
        # The span dump replays as well-nested trees.
        from repro.obs import load_jsonl, validate_span_forest
        records = load_jsonl(str(stem) + ".spans.jsonl")
        assert records
        assert validate_span_forest(records) == []
        summary = (tmp_path / "8a_range_mpl2.summary.txt").read_text()
        assert "query type" in summary
        prom = (tmp_path / "8a_range_mpl2.metrics.prom").read_text()
        assert "# TYPE repro_" in prom

    def test_untraced_run_writes_nothing(self, capsys, tmp_path):
        import os
        out_dir = tmp_path / "never"
        code = main(["--figure", "8a",
                     "--cardinality", "10000",
                     "--processors-count", "4",
                     "--mpls", "2", "--measured", "30"])
        assert code == 0
        assert not os.path.exists(out_dir)

    def test_explain_prints_breakdown(self, capsys):
        code = main(["--explain", "8a", "--explain-mpl", "4",
                     "--cardinality", "10000",
                     "--processors-count", "4",
                     "--measured", "30"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 8a at MPL 4" in out
        assert "query type QA" in out
        assert "bottleneck" in out
        assert "saturated resource" in out
        assert "scheduler CPU load by strategy" in out
