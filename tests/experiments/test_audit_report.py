"""Tests for the audit reports, the repro-audit CLI, and --audit wiring."""

import dataclasses
import json
import os
import re

import pytest

from repro.experiments import (
    FIGURES,
    audit_payload,
    build_audit_report,
    figure_from_dict,
    figure_to_dict,
    render_html,
    render_markdown,
    run_experiment,
    save_figure_json,
    write_report,
)
from repro.experiments import audit_cli
from repro.experiments.cli import build_parser, main


@pytest.fixture(scope="module")
def tiny_result():
    return run_experiment(FIGURES["8a"], cardinality=3_000, num_sites=8,
                          measured_queries=30, mpls=(1,), seed=7)


@pytest.fixture(scope="module")
def tiny_report(tiny_result):
    return build_audit_report(tiny_result, samples=60, sensitivity=False)


class TestReportContent:
    def test_markdown_sections(self, tiny_report):
        text = render_markdown(tiny_report)
        assert text.startswith("# Placement audit: figure 8a")
        assert f"Audit digest: `{tiny_report.digest}`" in text
        for heading in ("Measured throughput", "Declustering skew",
                        "Per-query fan-out",
                        "MAGIC slice spread vs. M_i targets",
                        "Tuple heat maps"):
            assert heading in text, heading
        for strategy in ("range", "berd", "magic"):
            assert strategy in text
        # BERD's auxiliary index gets its own heat map.
        assert "Auxiliary index on `unique2`" in text

    def test_html_is_self_contained(self, tiny_report):
        html = render_html(tiny_report)
        assert html.startswith("<!DOCTYPE html>")
        assert "<style>" in html
        assert "<script" not in html          # no external/runtime deps
        assert 'src="http' not in html
        assert tiny_report.digest in html

    def test_write_report_artifacts(self, tiny_report, tmp_path):
        md_path, html_path = write_report(tiny_report, str(tmp_path))
        assert os.path.basename(md_path) == "audit_8a.md"
        assert os.path.basename(html_path) == "audit_8a.html"
        assert os.path.getsize(md_path) > 0
        assert os.path.getsize(html_path) > 0

    def test_sensitivity_section_optional(self, tiny_result, tiny_report):
        assert "Correlation sensitivity" not in render_markdown(tiny_report)
        with_sensitivity = build_audit_report(tiny_result, samples=40,
                                              sensitivity=True)
        text = render_markdown(with_sensitivity)
        assert "Correlation sensitivity" in text
        assert "| berd | high |" in text


class TestResultsV2Audit:
    """The audit digest rides along in the results-v2 JSON schema."""

    def test_audit_round_trips(self, tiny_result, tiny_report):
        payload = audit_payload(tiny_report)
        assert set(payload) == {"summary", "digest"}
        assert payload["digest"] == tiny_report.digest
        assert set(payload["summary"]) == {"range", "berd", "magic"}

        audited = dataclasses.replace(tiny_result, audit=payload)
        as_dict = figure_to_dict(audited)
        assert as_dict["audit"]["digest"] == tiny_report.digest
        # Survives an actual JSON encode/decode, not just dict identity.
        decoded = json.loads(json.dumps(as_dict))
        back = figure_from_dict(decoded)
        assert back.audit == payload

    def test_absent_audit_stays_absent(self, tiny_result):
        as_dict = figure_to_dict(tiny_result)
        assert "audit" not in as_dict
        assert figure_from_dict(as_dict).audit is None


class TestZeroPerturbation:
    def test_audit_flag_does_not_perturb_throughput(self, capsys, tmp_path):
        base = ["--figure", "8a", "--cardinality", "3000",
                "--processors-count", "8", "--mpls", "1",
                "--measured", "30", "--seed", "7"]
        plain_dir = tmp_path / "plain"
        audited_dir = tmp_path / "audited"
        assert main(base + ["--save-json", str(plain_dir)]) == 0
        assert main(base + ["--save-json", str(audited_dir),
                            "--audit-out", str(tmp_path / "reports"),
                            "--audit-samples", "40"]) == 0

        plain = json.loads((plain_dir / "figure_8a.json").read_text())
        audited = json.loads((audited_dir / "figure_8a.json").read_text())
        # Bit-identical simulation: the audit is pure post-processing.
        assert plain["series"] == audited["series"]
        assert plain["spec_digests"] == audited["spec_digests"]
        assert "audit" not in plain
        assert set(audited["audit"]) == {"summary", "digest"}
        assert os.path.getsize(tmp_path / "reports" / "audit_8a.md") > 0
        assert os.path.getsize(tmp_path / "reports" / "audit_8a.html") > 0


class TestOfflineCli:
    def test_no_arguments_prints_help(self, capsys):
        assert audit_cli.main([]) == 2
        assert "repro-audit" in capsys.readouterr().out

    def test_cached_run_audits_without_simulation(self, tiny_result,
                                                  tmp_path, monkeypatch,
                                                  capsys):
        path = str(tmp_path / "figure_8a.json")
        save_figure_json(tiny_result, path)

        class Boom:
            def __init__(self, *args, **kwargs):
                raise AssertionError("audit must not simulate")

        monkeypatch.setattr("repro.experiments.plan.GammaMachine", Boom)
        out_dir = tmp_path / "reports"
        code = audit_cli.main([path, "--out", str(out_dir),
                               "--samples", "50", "--no-sensitivity"])
        assert code == 0
        assert os.path.getsize(out_dir / "audit_8a.md") > 0
        assert os.path.getsize(out_dir / "audit_8a.html") > 0
        assert "audited" in capsys.readouterr().out

    def test_static_figure_audit(self, tmp_path, capsys):
        out_dir = tmp_path / "static"
        code = audit_cli.main(["--figure", "8a",
                               "--cardinality", "2000",
                               "--processors-count", "8",
                               "--samples", "40", "--no-sensitivity",
                               "--out", str(out_dir)])
        assert code == 0
        text = (out_dir / "audit_8a.md").read_text()
        assert "Placement audit: figure 8a" in text
        assert "2000 tuples on 8 processors" in text


class TestExplainTopK:
    def test_parser_default(self):
        args = build_parser().parse_args(["--explain", "8a"])
        assert args.explain_top_k == 5

    def test_top_k_truncates_why_tables(self, capsys):
        code = main(["--explain", "8a", "--explain-mpl", "2",
                     "--cardinality", "6000",
                     "--processors-count", "4",
                     "--measured", "30",
                     "--explain-top-k", "1"])
        assert code == 0
        out = capsys.readouterr().out
        # 3 strategies x 2 query types, one resource row each.
        resource_rows = [line for line in out.splitlines()
                         if re.match(r"^\s+(node|sched)\.\S+\s+\d", line)]
        assert len(resource_rows) == 6
        # The elided remainder is summarized, not dropped silently.
        assert "(other)" in out
