"""Executor observability: zero perturbation, phases, worker crashes.

The load-bearing guarantee of the run observatory is that it *observes*:
a figure regenerated with progress streaming and phase attribution on
must be bit-identical -- series and spec digests -- to one regenerated
with both off, under serial and parallel executors alike.
"""

import io
import json

import pytest

from repro.experiments import (
    FIGURES,
    ParallelExecutor,
    compile_figure,
    figure_from_dict,
    figure_to_dict,
    run_experiment,
)
from repro.experiments.executor import WorkerCrash
from repro.obs.phases import PHASE_NAMES
from repro.obs.progress import ProgressTracker

TINY = dict(cardinality=2_000, num_sites=4, measured_queries=5,
            mpls=(1, 2), seed=13, strategies=("range",))


def _series_payload(result):
    return json.dumps(
        {name: [run.to_json_dict() for run in runs]
         for name, runs in result.series.items()},
        sort_keys=True)


class TestZeroPerturbation:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_observed_run_bit_identical_to_dark_run(self, jobs):
        dark = run_experiment(FIGURES["8a"], jobs=jobs,
                              collect_phases=False, **TINY)
        progress = ProgressTracker(stream=io.StringIO(), mode="jsonl")
        try:
            observed = run_experiment(FIGURES["8a"], jobs=jobs,
                                      progress=progress,
                                      collect_phases=True, **TINY)
        finally:
            progress.close()
        assert _series_payload(dark) == _series_payload(observed)
        assert dark.spec_digests == observed.spec_digests
        assert dark.phases is None
        assert observed.phases is not None


class TestPhaseAttribution:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_core_phases_recorded(self, jobs):
        # Fresh per-process memos: a relation/placement memo hit from an
        # earlier test in this process would legitimately skip the
        # build phases (that is the memo working as designed).
        from repro.experiments.plan import clear_memos
        clear_memos()
        result = run_experiment(FIGURES["8a"], jobs=jobs, **TINY)
        totals = result.phases["totals"]
        for name in ("plan-compile", "relation-build",
                     "placement-build", "simulate"):
            assert name in totals, f"missing phase {name!r} at jobs={jobs}"
            assert totals[name]["seconds"] >= 0.0
            assert totals[name]["count"] >= 1
        assert set(totals) <= set(PHASE_NAMES)
        # Simulation facts for events/sec reporting.
        assert result.phases["counters"]["events"] > 0
        assert result.phases["counters"]["sim_seconds"] > 0
        mem = result.phases["memory"]
        assert mem["peak_rss_kb"] is None or mem["peak_rss_kb"] > 0

    def test_serial_and_parallel_count_same_events(self):
        serial = run_experiment(FIGURES["8a"], jobs=1, **TINY)
        parallel = run_experiment(FIGURES["8a"], jobs=2, **TINY)
        assert serial.phases["counters"]["events"] == \
            parallel.phases["counters"]["events"]

    def test_phases_round_trip_results_v2(self):
        result = run_experiment(FIGURES["8a"], **TINY)
        payload = json.loads(json.dumps(figure_to_dict(result),
                                        sort_keys=True))
        restored = figure_from_dict(payload)
        assert restored.phases == result.phases

    def test_v2_files_without_phases_still_load(self):
        result = run_experiment(FIGURES["8a"], collect_phases=False, **TINY)
        payload = figure_to_dict(result)
        assert "phases" not in payload
        assert figure_from_dict(payload).phases is None

    def test_parallel_outcome_carries_worker_snapshot(self):
        plan = compile_figure(FIGURES["8a"], **TINY)
        from repro.obs import phases as phases_module
        phases_module.push(phases_module.PhaseAccumulator())
        try:
            outcomes = ParallelExecutor(jobs=2).execute(plan)
        finally:
            phases_module.pop(merge_into_parent=False)
        assert all(o.phases is not None for o in outcomes)
        assert all("simulate" in o.phases["totals"] for o in outcomes)


class TestWorkerCrash:
    def test_crash_carries_digest_and_traceback(self):
        plan = compile_figure(FIGURES["8a"], **TINY)
        # Corrupt one spec so the worker fails deep inside the build.
        bad = plan.runs[1].spec
        object.__setattr__(bad, "strategy", "no-such-strategy")
        with pytest.raises(WorkerCrash) as info:
            ParallelExecutor(jobs=2).execute(plan)
        message = str(info.value)
        assert bad.digest() in message
        assert "no-such-strategy" in message
        assert "worker traceback" in message
        assert "Traceback (most recent call last)" in message
        assert "worker pid" in message
