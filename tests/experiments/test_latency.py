"""Latency observatory: zero perturbation, results-v2 payload, CLI.

The load-bearing guarantee mirrors the executor observability suite:
latency capture must *observe* -- a figure regenerated with sketches on
must be bit-identical (series and spec digests) to one regenerated with
them off, under serial and parallel executors alike.  On top of that,
the ``latency`` payload itself must be identical between serial and
parallel runs, survive the results-v2 round trip, and stay bounded in
memory at the full 1,024-site machine scale.
"""

import json

import pytest

from repro.core import RangeStrategy
from repro.experiments import (
    FIGURES,
    figure_from_dict,
    figure_to_dict,
    run_experiment,
)
from repro.experiments.audit_report import (
    build_audit_report,
    render_html,
    render_markdown,
)
from repro.experiments.latency import (
    latency_budget_lines,
    latency_payload,
    latency_table,
    recorders_from_payload,
)
from repro.experiments.latency_cli import main as latency_main
from repro.gamma import GammaMachine
from repro.obs import Telemetry, TelemetrySpec
from repro.storage import make_wisconsin
from repro.workload import make_mix

TINY = dict(cardinality=2_000, num_sites=4, measured_queries=5,
            mpls=(1, 2), seed=13, strategies=("range",))
LATENCY_ONLY = TelemetrySpec(trace=False, timeline_interval=0.0,
                             latency=True)


def _series_payload(result):
    return json.dumps(
        {name: [run.to_json_dict() for run in runs]
         for name, runs in result.series.items()},
        sort_keys=True)


class TestZeroPerturbation:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_capture_bit_identical_to_dark_run(self, jobs):
        dark = run_experiment(FIGURES["8a"], jobs=jobs, **TINY)
        observed = run_experiment(FIGURES["8a"], jobs=jobs,
                                  telemetry_spec=LATENCY_ONLY, **TINY)
        assert _series_payload(dark) == _series_payload(observed)
        assert dark.spec_digests == observed.spec_digests
        assert dark.latency is None
        assert observed.latency is not None

    def test_serial_and_parallel_payloads_identical(self):
        serial = run_experiment(FIGURES["8a"], jobs=1,
                                telemetry_spec=LATENCY_ONLY, **TINY)
        parallel = run_experiment(FIGURES["8a"], jobs=2,
                                  telemetry_spec=LATENCY_ONLY, **TINY)
        assert json.dumps(serial.latency, sort_keys=True) \
            == json.dumps(parallel.latency, sort_keys=True)


class TestResultsRoundTrip:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(FIGURES["8a"], telemetry_spec=LATENCY_ONLY,
                              **TINY)

    def test_percentiles_present_per_figure_point(self, result):
        points = result.latency["points"]
        assert set(points) == {"range"}
        entries = points["range"]
        assert [entry["mpl"] for entry in entries] == [1, 2]
        for entry in entries:
            for summary in [entry["overall"], *entry["by_type"].values()]:
                assert {"count", "mean", "max", "p50", "p95",
                        "p99"} <= set(summary)
                assert summary["count"] > 0
                assert summary["p50"] <= summary["p95"] <= summary["p99"]
        merged = result.latency["merged"]["range"]["overall"]
        assert merged["count"] == sum(
            entry["overall"]["count"] for entry in entries)

    def test_latency_round_trips_results_v2(self, result):
        payload = json.loads(json.dumps(figure_to_dict(result),
                                        sort_keys=True))
        assert "latency" in payload
        restored = figure_from_dict(payload)
        assert restored.latency == result.latency

    def test_v2_files_without_latency_still_load(self):
        dark = run_experiment(FIGURES["8a"], **TINY)
        payload = figure_to_dict(dark)
        assert "latency" not in payload
        assert figure_from_dict(payload).latency is None

    def test_recorders_rebuild_from_payload(self, result):
        recorders = recorders_from_payload(result.latency)
        for mpl, recorder in recorders["range"]:
            entry = next(e for e in result.latency["points"]["range"]
                         if e["mpl"] == mpl)
            assert recorder.overall().summary() == entry["overall"]


class TestBoundedMemoryAtScale:
    def test_sketch_capacity_survives_1024_sites(self):
        # The full machine scale: 1,024 sites, latency-only capture.
        # Sketch capacity must stay at the configured bucket bound
        # regardless of how many queries (or sites) fed it.
        relation = make_wisconsin(4_096, correlation="low", seed=70)
        placement = RangeStrategy("unique1").partition(relation, 1024)
        telemetry = Telemetry(trace=False, timeline_interval=0.0,
                              latency=True)
        machine = GammaMachine(placement,
                               indexes={"unique1": False, "unique2": True},
                               seed=3, telemetry=telemetry)
        machine.run(make_mix("low-low", domain=4_096),
                    multiprogramming_level=2, measured_queries=6,
                    warmup_queries=1)
        recorder = telemetry.latency
        assert recorder is not None
        overall = recorder.overall()
        assert overall.count >= 6
        for sketch in [overall, *recorder.sketches.values()]:
            assert sketch.bucket_count <= sketch.max_buckets + 1


class TestPayloadHelpers:
    def _telemetries(self):
        out = {}
        for (strategy, mpl), values in {
            ("berd", 1): (0.1, 0.2), ("berd", 4): (0.4, 0.8),
            ("magic", 1): (0.05,), ("magic", 4): (0.2,),
        }.items():
            telemetry = Telemetry(trace=False, timeline_interval=0.0,
                                  latency=True)
            for index, value in enumerate(values):
                telemetry.latency.record("QA" if index % 2 == 0 else "QB",
                                         value)
            out[(strategy, mpl)] = telemetry
        return out

    def test_payload_none_without_capture(self):
        assert latency_payload({}) is None
        dark = Telemetry(trace=False, timeline_interval=0.0)
        assert latency_payload({("range", 1): dark}) is None

    def test_payload_sorted_points_and_merge(self):
        payload = latency_payload(self._telemetries())
        assert list(payload["points"]) == ["berd", "magic"]
        assert [e["mpl"] for e in payload["points"]["berd"]] == [1, 4]
        assert payload["merged"]["berd"]["overall"]["count"] == 4
        assert payload["relative_accuracy"] == pytest.approx(0.02)

    def test_table_and_budget_lines(self):
        payload = latency_payload(self._telemetries())
        table = latency_table(payload)
        assert "strategy berd" in table
        assert "strategy magic" in table
        assert "all mpls (all types)" in table
        assert "p99 ms" in table
        restricted = latency_table(payload, mpls=(4,))
        assert "mpl 1" not in restricted
        assert "mpl 4" in restricted
        lines = latency_budget_lines(payload)
        assert any("berd" in line and "mpl   4" in line for line in lines)
        assert all("ms" in line for line in lines[1:])


class TestLatencyCli:
    @pytest.fixture(scope="class")
    def saved(self, tmp_path_factory):
        result = run_experiment(FIGURES["8a"], telemetry_spec=LATENCY_ONLY,
                                **TINY)
        path = tmp_path_factory.mktemp("latency") / "figure_8a.json"
        path.write_text(json.dumps(figure_to_dict(result)))
        return str(path)

    def test_offline_budget_table(self, saved, capsys):
        assert latency_main([saved]) == 0
        out = capsys.readouterr().out
        assert "latency budget" in out
        assert "strategy range" in out

    def test_file_without_latency_reported(self, tmp_path, capsys):
        dark = run_experiment(FIGURES["8a"], **TINY)
        path = tmp_path / "dark.json"
        path.write_text(json.dumps(figure_to_dict(dark)))
        assert latency_main([str(path)]) == 0
        assert "no latency payload" in capsys.readouterr().out

    def test_no_mode_prints_help(self, capsys):
        assert latency_main([]) == 2
        assert "repro-latency" in capsys.readouterr().out

    def test_spans_mode_prints_critical_paths(self, tmp_path, capsys):
        records = [
            {"trace": 1, "span": 0, "parent": None, "name": "query",
             "qtype": "QA", "start": 0.0, "end": 2.0},
            {"trace": 1, "span": 1, "parent": 0, "name": "node.disk",
             "qtype": "QA", "resource": "node.disk", "wait": 0.5,
             "service": 1.0, "start": 0.5, "end": 2.0},
        ]
        path = tmp_path / "run.spans.jsonl"
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        assert latency_main(["--spans", str(path)]) == 0
        out = capsys.readouterr().out
        assert "critical paths from" in out
        assert "node.disk" in out

    def test_out_file_written(self, saved, tmp_path, capsys):
        out_path = tmp_path / "report.txt"
        assert latency_main([saved, "--out", str(out_path)]) == 0
        capsys.readouterr()
        assert "latency budget" in out_path.read_text()


class TestAuditReportSections:
    def test_latency_budget_in_markdown_and_html(self):
        result = run_experiment(FIGURES["8a"], telemetry_spec=LATENCY_ONLY,
                                **TINY)
        report = build_audit_report(result, samples=50, sensitivity=False)
        assert report.latency == result.latency
        markdown = render_markdown(report)
        assert "## Query latency budget (measured)" in markdown
        assert "range" in markdown
        assert "Query latency budget (measured)" in render_html(report)

    def test_critical_path_tables_when_tracing(self):
        result = run_experiment(
            FIGURES["8a"],
            telemetry_spec=TelemetrySpec(trace=True, timeline_interval=0.0,
                                         latency=True),
            **TINY)
        report = build_audit_report(result, samples=50, sensitivity=False)
        assert "range" in report.critpath_tables
        assert "query type" in report.critpath_tables["range"]
        markdown = render_markdown(report)
        assert "## Critical path: range" in markdown
