"""Tests for ASCII plotting and results serialization."""

import json

import pytest

from repro.experiments import (
    ascii_plot,
    figure_from_dict,
    figure_to_csv,
    figure_to_dict,
    load_figure_json,
    plot_figure,
    save_figure_json,
)


@pytest.fixture(scope="module")
def small_result(small_figure_result):
    # Shared session-scoped run from tests/conftest.py.
    return small_figure_result


class TestAsciiPlot:
    def test_basic_render(self):
        series = {"magic": [(1, 10.0), (8, 50.0)],
                  "range": [(1, 8.0), (8, 20.0)]}
        text = ascii_plot(series, width=40, height=10)
        assert "M" in text
        assert "r" in text
        assert "legend" in text
        assert "MPL" in text

    def test_dimensions(self):
        series = {"magic": [(1, 10.0), (64, 100.0)]}
        text = ascii_plot(series, width=30, height=8)
        body = [line for line in text.splitlines() if "|" in line]
        assert len(body) == 8
        assert all(len(line.split("|", 1)[1]) == 30 for line in body)

    def test_overlapping_points_starred(self):
        series = {"a": [(1, 10.0)], "b": [(1, 10.0)]}
        text = ascii_plot(series, width=20, height=6,
                          marks={"a": "a", "b": "b"})
        assert "*" in text

    def test_y_axis_anchored_at_zero(self):
        text = ascii_plot({"a": [(1, 50.0), (2, 100.0)]},
                          width=20, height=6, marks={"a": "a"})
        assert " 0 |" in text or "0 |" in text

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError):
            ascii_plot({"a": []})

    def test_plot_figure_includes_title(self, small_result):
        text = plot_figure(small_result)
        assert "Figure 8a" in text
        assert "legend" in text


class TestResultsIo:
    def test_dict_roundtrip(self, small_result):
        payload = figure_to_dict(small_result)
        # Must survive JSON encoding.
        payload = json.loads(json.dumps(payload))
        restored = figure_from_dict(payload)
        assert restored.config.figure == "8a"
        assert set(restored.series) == set(small_result.series)
        for name in small_result.series:
            original = small_result.series[name]
            loaded = restored.series[name]
            assert [r.throughput for r in loaded] == \
                [r.throughput for r in original]
            assert [r.response_time_by_type for r in loaded] == \
                [r.response_time_by_type for r in original]

    def test_json_file_roundtrip(self, small_result, tmp_path):
        path = tmp_path / "fig8a.json"
        save_figure_json(small_result, str(path))
        restored = load_figure_json(str(path))
        assert restored.cardinality == small_result.cardinality
        assert restored.final_throughputs() == \
            small_result.final_throughputs()

    def test_version_checked(self, small_result):
        payload = figure_to_dict(small_result)
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="format"):
            figure_from_dict(payload)

    def test_unknown_figure_rejected(self, small_result):
        payload = figure_to_dict(small_result)
        payload["figure"] = "17z"
        payload["format_version"] = 1
        with pytest.raises(ValueError, match="unknown figure"):
            figure_from_dict(payload)

    def test_csv_rows(self, small_result):
        text = figure_to_csv(small_result)
        lines = text.strip().splitlines()
        # header + 3 strategies x 2 MPLs
        assert len(lines) == 1 + 3 * 2
        assert lines[0].startswith("figure,strategy,mpl")
        assert any(line.startswith("8a,magic,8,") for line in lines)


class TestSeedEcho:
    def test_seed_round_trips_through_json(self, small_result, tmp_path):
        assert small_result.seed == 5
        payload = figure_to_dict(small_result)
        assert payload["seed"] == 5
        path = tmp_path / "8a.json"
        save_figure_json(small_result, str(path))
        # The artifact itself names the seed it was generated with.
        assert json.loads(path.read_text())["seed"] == 5
        restored = load_figure_json(str(path))
        assert restored.seed == 5

    def test_legacy_payload_without_seed_defaults(self, small_result):
        payload = figure_to_dict(small_result)
        del payload["seed"]
        restored = figure_from_dict(payload)
        assert restored.seed == 13
