"""Property-based round-trips for results persistence and the cache.

Hypothesis generates adversarial-but-valid results (NaNs, zero counts,
huge throughputs) and adversarial *invalid* cache entries (truncation,
digest mismatch, partial writes); the persistence layer must round-trip
the former losslessly and treat every one of the latter as a miss, not
an error.
"""

import json
import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.cache import ResultCache
from repro.experiments.config import FIGURES
from repro.experiments.plan import RunSpec
from repro.experiments.results_io import (
    figure_from_dict,
    figure_to_dict,
    load_figure_json,
    save_figure_json,
)
from repro.experiments.runner import FigureResult
from repro.gamma import RunResult

finite = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                   allow_infinity=False)

run_results = st.builds(
    RunResult,
    multiprogramming_level=st.integers(min_value=1, max_value=512),
    throughput=finite,
    completed=st.integers(min_value=0, max_value=100_000),
    elapsed_seconds=finite,
    response_time_mean=finite,
    response_time_by_type=st.dictionaries(
        st.sampled_from(["QA", "QB", "INSERT"]), finite, max_size=3),
    cpu_utilization=st.floats(min_value=0.0, max_value=1.0),
    disk_utilization=st.floats(min_value=0.0, max_value=1.0),
    scheduler_cpu_utilization=st.floats(min_value=0.0, max_value=1.0),
    messages_sent=st.integers(min_value=0, max_value=10_000_000),
    # NaN half-widths happen for real (too few batches for a CI) and
    # must survive serialization.
    throughput_ci=st.one_of(finite, st.just(float("nan"))),
)

figure_results = st.builds(
    FigureResult,
    config=st.sampled_from(sorted(FIGURES)).map(FIGURES.get),
    cardinality=st.integers(min_value=1, max_value=10**6),
    num_sites=st.integers(min_value=1, max_value=128),
    measured_queries=st.integers(min_value=1, max_value=10_000),
    series=st.dictionaries(
        st.sampled_from(["range", "hash", "magic", "berd"]),
        st.lists(run_results, min_size=1, max_size=4), max_size=3),
    seed=st.integers(min_value=0, max_value=2**31),
)


def _equal(a: FigureResult, b: FigureResult) -> bool:
    """Dataclass equality, with NaN == NaN for confidence intervals."""
    def strip(result):
        return {s: [(r.to_json_dict(), r.throughput_ci != r.throughput_ci)
                    for r in runs]
                for s, runs in result.series.items()}
    if a.config is not b.config or strip(a).keys() != strip(b).keys():
        return False
    for s in a.series:
        for ra, rb in zip(a.series[s], b.series[s]):
            da, db = ra.to_json_dict(), rb.to_json_dict()
            ca, cb = da.pop("throughput_ci"), db.pop("throughput_ci")
            if da != db:
                return False
            if not (ca == cb or (ca != ca and cb != cb)):
                return False
    return (a.cardinality, a.num_sites, a.measured_queries, a.seed) == \
           (b.cardinality, b.num_sites, b.measured_queries, b.seed)


class TestResultsIoProperties:
    @given(result=figure_results)
    @settings(max_examples=60, deadline=None)
    def test_dict_round_trip_v2(self, result):
        assert _equal(figure_from_dict(figure_to_dict(result)), result)

    @given(result=figure_results)
    @settings(max_examples=30, deadline=None)
    def test_v1_payloads_still_load(self, result):
        """Pre-plan-layer files: no executor block, no digests, no seed."""
        payload = figure_to_dict(result)
        payload["format_version"] = 1
        for key in ("executor", "spec_digests", "seed"):
            payload.pop(key, None)
        loaded = figure_from_dict(payload)
        assert loaded.config is result.config
        assert loaded.seed == 13  # the historical harness-wide default
        assert loaded.executor == "serial"
        assert sorted(loaded.series) == sorted(result.series)

    @given(result=figure_results)
    @settings(max_examples=20, deadline=None)
    def test_file_round_trip(self, result, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("io") / "figure.json")
        save_figure_json(result, path)
        assert _equal(load_figure_json(path), result)


SPEC = RunSpec(figure="8a", strategy="range", cardinality=1000,
               correlation="low", num_sites=4, multiprogramming_level=2,
               measured_queries=10, seed=13, mix_name="low-low")

RESULT = RunResult(multiprogramming_level=2, throughput=50.0,
                   completed=10, elapsed_seconds=0.2,
                   response_time_mean=0.03)


class TestCacheCorruptionRecovery:
    """Every malformed entry is a miss; none is an error or a wrong hit."""

    def _primed(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        path = cache.put(SPEC, RESULT)
        return cache, path

    def test_round_trip_baseline(self, tmp_path):
        cache, _ = self._primed(tmp_path)
        assert cache.get(SPEC) == RESULT
        assert (cache.hits, cache.misses) == (1, 0)

    @given(keep=st.integers(min_value=0, max_value=60))
    @settings(max_examples=25, deadline=None)
    def test_truncated_entry_is_a_miss(self, tmp_path_factory, keep):
        cache, path = self._primed(tmp_path_factory.mktemp("c"))
        blob = open(path).read()
        with open(path, "w") as handle:
            handle.write(blob[:keep])
        assert cache.get(SPEC) is None
        assert cache.misses == 1

    def test_wrong_spec_under_right_digest_is_a_miss(self, tmp_path):
        """A digest collision (or hand-moved file) must not be returned."""
        cache, path = self._primed(tmp_path)
        payload = json.load(open(path))
        payload["spec"]["cardinality"] = 999_999
        json.dump(payload, open(path, "w"))
        assert cache.get(SPEC) is None

    def test_format_version_bump_is_a_miss(self, tmp_path):
        cache, path = self._primed(tmp_path)
        payload = json.load(open(path))
        payload["cache_format"] = 999
        json.dump(payload, open(path, "w"))
        assert cache.get(SPEC) is None

    def test_mangled_result_fields_are_a_miss(self, tmp_path):
        cache, path = self._primed(tmp_path)
        payload = json.load(open(path))
        payload["result"] = {"not_a_field": 1}
        json.dump(payload, open(path, "w"))
        assert cache.get(SPEC) is None

    def test_partial_write_leaves_no_entry(self, tmp_path):
        """A crash mid-put must leave the previous state intact: the
        temp file is cleaned up and the final path never half-written."""
        cache = ResultCache(str(tmp_path / "cache"))
        path = cache.path_for(SPEC)

        class Unserializable:
            pass

        bad = RunResult(multiprogramming_level=2, throughput=1.0,
                        completed=1, elapsed_seconds=1.0,
                        response_time_mean=1.0,
                        response_time_by_type={"QA": Unserializable()})
        try:
            cache.put(SPEC, bad)
        except TypeError:
            pass
        assert not os.path.exists(path)
        assert SPEC not in cache
        leftovers = [name for _, _, files in os.walk(cache.root)
                     for name in files]
        assert leftovers == []

    def test_rewrite_after_corruption_recovers(self, tmp_path):
        cache, path = self._primed(tmp_path)
        with open(path, "w") as handle:
            handle.write("{corrupt")
        assert cache.get(SPEC) is None
        cache.put(SPEC, RESULT)
        assert cache.get(SPEC) == RESULT
