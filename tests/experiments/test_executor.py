"""Tests for plan executors and the resumable result cache.

The determinism test is the contract ``--jobs N`` rests on: a parallel
run of the fig-8a smoke config must be *bit-identical* to serial,
because every seed derives from the RunSpec, never from worker state.
"""

import json
import math
import multiprocessing
import os
import pickle
import time

import pytest

from repro.experiments import (
    FIGURES,
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    WorkerCrash,
    compile_figure,
    compile_point,
    figure_from_dict,
    figure_to_dict,
    make_executor,
    run_experiment,
)
from repro.experiments.executor import _chunk_pending
from repro.obs import Telemetry, TelemetrySpec, phases

#: Start methods worth exercising here: fork covers the copy-on-write
#: memo path, spawn the per-worker initializer prewarm.  Filtered by
#: platform so the suite ports (macOS/Windows default to spawn).
START_METHODS = [method for method in ("fork", "spawn")
                 if method in multiprocessing.get_all_start_methods()]

#: The fig-8a smoke configuration the determinism guarantee is stated on.
SMOKE = dict(cardinality=10_000, num_sites=4, measured_queries=30,
             mpls=(1, 4), seed=5)


def _series_payload(result):
    """A figure's series as canonical JSON (NaN-tolerant bit comparison)."""
    return json.dumps(
        {name: [run.to_json_dict() for run in runs]
         for name, runs in result.series.items()},
        sort_keys=True)


class TestMakeExecutor:
    def test_serial_for_one_job(self):
        assert isinstance(make_executor(1), SerialExecutor)

    def test_parallel_for_many(self):
        executor = make_executor(3)
        assert isinstance(executor, ParallelExecutor)
        assert executor.jobs == 3

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            make_executor(0)
        with pytest.raises(ValueError):
            ParallelExecutor(1)


class TestParallelDeterminism:
    def test_jobs4_bit_identical_to_serial(self):
        serial = run_experiment(FIGURES["8a"], **SMOKE)
        parallel = run_experiment(FIGURES["8a"], jobs=4, **SMOKE)
        assert _series_payload(serial) == _series_payload(parallel)
        assert parallel.jobs == 4
        assert parallel.executor == "process-pool"
        assert serial.spec_digests == parallel.spec_digests

    def test_outcomes_arrive_in_plan_order(self):
        plan = compile_figure(FIGURES["8a"], cardinality=8_000, num_sites=4,
                              measured_queries=20, mpls=(1, 2), seed=5)
        outcomes = ParallelExecutor(jobs=2).execute(plan)
        assert [o.spec for o in outcomes] == plan.specs()

    def test_live_telemetry_provider_rejected(self):
        plan = compile_figure(FIGURES["8a"], cardinality=8_000, num_sites=4,
                              measured_queries=10, mpls=(1,), seed=5)
        with pytest.raises(ValueError, match="process boundaries"):
            ParallelExecutor(jobs=2).execute(
                plan, telemetry_provider=lambda spec: Telemetry())

    def test_parallel_telemetry_spec_returns_snapshots(self):
        plan = compile_figure(FIGURES["8a"], cardinality=8_000, num_sites=4,
                              measured_queries=20, mpls=(2,), seed=5,
                              strategies=("range",))
        (outcome,) = ParallelExecutor(jobs=2).execute(
            plan, telemetry_spec=TelemetrySpec())
        assert outcome.telemetry is not None
        assert outcome.telemetry.env is None  # detached snapshot
        assert outcome.telemetry.spans.span_count() > 0
        # Snapshots survive a further pickle round trip.
        clone = pickle.loads(pickle.dumps(outcome.telemetry))
        assert clone.spans.span_count() == \
            outcome.telemetry.spans.span_count()


class TestStartMethods:
    """The parallel contract holds under every start method we can pin.

    Fork exercises parent prewarm + copy-on-write memo inheritance,
    spawn the per-worker initializer prewarm -- so a Python-default
    change (3.14 stops defaulting to fork on Linux) cannot silently
    flip the executor onto an untested path.
    """

    KWARGS = dict(cardinality=8_000, num_sites=4, measured_queries=20,
                  mpls=(1, 2), seed=5)

    @pytest.fixture(scope="class")
    def serial_payload(self):
        return _series_payload(run_experiment(FIGURES["8a"], **self.KWARGS))

    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_bit_identical_to_serial(self, start_method, serial_payload):
        parallel = run_experiment(FIGURES["8a"], jobs=2,
                                  start_method=start_method, **self.KWARGS)
        assert _series_payload(parallel) == serial_payload
        assert parallel.process_cpu_seconds > 0

    def test_unavailable_start_method_rejected(self):
        with pytest.raises(ValueError, match="unavailable"):
            ParallelExecutor(2, start_method="no-such-method")

    @pytest.mark.skipif("fork" not in START_METHODS,
                        reason="fork unavailable on this platform")
    def test_fork_workers_inherit_warm_memos(self):
        """Under fork, every build happens in the parent prewarm --
        worker phase snapshots must contain no build phases at all."""
        from repro.experiments.plan import clear_memos
        clear_memos()  # force the prewarm to build, not hit
        plan = compile_figure(FIGURES["8a"], **self.KWARGS)
        acc = phases.push(phases.PhaseAccumulator())
        try:
            outcomes = ParallelExecutor(
                jobs=2, start_method="fork").execute(plan)
        finally:
            phases.pop(merge_into_parent=False)
        assert len(outcomes) == 6
        for outcome in outcomes:
            totals = outcome.phases["totals"]
            assert "relation-build" not in totals
            assert "placement-build" not in totals
            assert "simulate" in totals
        # The figure-level accumulator saw the parent-side prewarm:
        # one relation, one placement per strategy.
        assert acc.totals["relation-build"][1] == 1
        assert acc.totals["placement-build"][1] == 3


class TestChunking:
    """Unit contract of the deterministic chunked-dispatch planner."""

    def _pending(self, mpls=(1, 2, 4, 8), strategies=None):
        plan = compile_figure(FIGURES["8a"], cardinality=8_000, num_sites=4,
                              measured_queries=10, mpls=mpls, seed=5,
                              strategies=strategies)
        return list(enumerate(plan))

    def test_chunks_are_memo_local(self):
        for chunk in _chunk_pending(self._pending(), jobs=2):
            keys = {planned.spec.placement_key() for _, planned in chunk}
            assert len(keys) == 1

    def test_every_index_dispatched_exactly_once(self):
        pending = self._pending()
        chunks = _chunk_pending(pending, jobs=3)
        dispatched = sorted(index for chunk in chunks
                            for index, _ in chunk)
        assert dispatched == [index for index, _ in pending]

    def test_stragglers_first(self):
        chunks = _chunk_pending(self._pending(), jobs=2)
        max_mpls = [max(p.spec.multiprogramming_level for _, p in chunk)
                    for chunk in chunks]
        assert max_mpls == sorted(max_mpls, reverse=True)
        # ... and within a chunk the longest run leads too.
        for chunk in chunks:
            mpls = [p.spec.multiprogramming_level for _, p in chunk]
            assert mpls == sorted(mpls, reverse=True)

    def test_enough_chunks_to_feed_the_pool(self):
        pending = self._pending()
        for jobs in (2, 4, 8):
            chunks = _chunk_pending(pending, jobs)
            assert len(chunks) >= min(jobs, len(pending))

    def test_deterministic(self):
        pending = self._pending()
        first = _chunk_pending(pending, jobs=4)
        second = _chunk_pending(pending, jobs=4)
        assert [[index for index, _ in chunk] for chunk in first] == \
            [[index for index, _ in chunk] for chunk in second]

    def test_single_spec_plan(self):
        pending = self._pending(mpls=(2,), strategies=("range",))
        assert _chunk_pending(pending, jobs=4) == [pending]


@pytest.mark.skipif("fork" not in START_METHODS,
                    reason="test patches the parent and relies on fork "
                           "inheritance to ship the patch to workers")
class TestCrashContainment:
    def test_first_crash_cancels_pending_chunks(self, tmp_path, monkeypatch):
        """Crash on the first-dispatched spec of a 12-point plan: the
        parent must cancel not-yet-started chunks instead of simulating
        the remaining 11 points to completion first."""
        mpls = tuple(range(1, 13))
        plan = compile_figure(FIGURES["8a"], cardinality=8_000, num_sites=4,
                              measured_queries=10, mpls=mpls, seed=5,
                              strategies=("range",))
        marker_dir = str(tmp_path)
        crash_mpl = max(mpls)  # heads the first-submitted chunk

        def fake_run_one(planned, telemetry, check_invariants=False):
            mpl = planned.spec.multiprogramming_level
            if mpl == crash_mpl:
                raise RuntimeError("injected crash")
            time.sleep(0.2)
            open(os.path.join(marker_dir, f"ran-{mpl}"), "w").close()
            return "dummy-result", 0.2, 0.0

        from repro.experiments import executor as executor_module
        monkeypatch.setattr(executor_module, "_run_one", fake_run_one)
        with pytest.raises(WorkerCrash, match="injected crash") as err:
            ParallelExecutor(jobs=2, start_method="fork").execute(plan)
        # The crash report names the offending spec.
        assert "mpl 12" in str(err.value)
        assert "strategy 'range'" in str(err.value)
        # 12 specs chunk into 4 chunks of 3 at jobs=2.  Without
        # containment all 11 non-crashing specs run; with it, at most
        # the chunks already in flight when the crash surfaced do.
        assert len(os.listdir(marker_dir)) <= 9


class TestWallAndCpuSeconds:
    def test_serial_accounting(self):
        result = run_experiment(FIGURES["8a"], **SMOKE)
        assert result.cpu_seconds > 0
        assert result.wall_seconds >= result.cpu_seconds * 0.5
        assert result.executed_runs == 6
        assert result.cached_runs == 0

    def test_process_cpu_seconds_recorded_and_round_trips(self):
        result = run_experiment(FIGURES["8a"], **SMOKE)
        assert result.process_cpu_seconds > 0
        payload = figure_to_dict(result)
        assert payload["process_cpu_seconds"] == result.process_cpu_seconds
        restored = figure_from_dict(json.loads(json.dumps(payload)))
        assert restored.process_cpu_seconds == result.process_cpu_seconds

    def test_pre_warm_pool_files_default_process_cpu(self):
        result = run_experiment(FIGURES["8a"], mpls=(1,),
                                strategies=("range",), cardinality=8_000,
                                num_sites=4, measured_queries=10, seed=5)
        payload = figure_to_dict(result)
        del payload["process_cpu_seconds"]
        assert figure_from_dict(payload).process_cpu_seconds == 0.0

    def test_jobs_echoed_into_saved_json(self):
        result = run_experiment(FIGURES["8a"], jobs=2, **SMOKE)
        payload = figure_to_dict(result)
        assert payload["executor"]["jobs"] == 2
        assert payload["executor"]["name"] == "process-pool"
        assert payload["cpu_seconds"] > 0
        assert payload["process_cpu_seconds"] > 0
        assert payload["wall_seconds"] > 0


class TestResultCache:
    def _planned(self, **overrides):
        kwargs = dict(multiprogramming_level=2, cardinality=8_000,
                      num_sites=4, measured_queries=20, seed=5)
        kwargs.update(overrides)
        return compile_point(FIGURES["8a"], "range", **kwargs)

    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        (outcome,) = SerialExecutor().execute(
            compile_figure(FIGURES["8a"], cardinality=8_000, num_sites=4,
                           measured_queries=20, mpls=(2,), seed=5,
                           strategies=("range",)), cache=cache)
        assert not outcome.cached
        restored = cache.get(outcome.spec)
        assert restored == outcome.result
        assert cache.hits == 1

    def test_miss_on_unknown_spec(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.get(self._planned().spec) is None
        assert cache.misses == 1

    def test_corrupt_entry_counts_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        plan = compile_figure(FIGURES["8a"], cardinality=8_000, num_sites=4,
                              measured_queries=20, mpls=(2,), seed=5,
                              strategies=("range",))
        SerialExecutor().execute(plan, cache=cache)
        path = cache.path_for(plan.specs()[0])
        with open(path, "w") as handle:
            handle.write("{ truncated")
        assert cache.get(plan.specs()[0]) is None

    def test_interrupted_sweep_resumes(self, tmp_path):
        """A killed run's completed points are skipped on re-run."""
        cache = ResultCache(str(tmp_path))
        first = run_experiment(FIGURES["8a"], cache=cache, **SMOKE)
        assert first.executed_runs == 6
        assert len(cache) == 6
        # Simulate a partially-complete cache: drop one entry.
        os.unlink(cache.path_for(compile_point(
            FIGURES["8a"], "magic", multiprogramming_level=4,
            cardinality=SMOKE["cardinality"], num_sites=SMOKE["num_sites"],
            measured_queries=SMOKE["measured_queries"],
            seed=SMOKE["seed"]).spec))
        second = run_experiment(FIGURES["8a"], cache=cache, **SMOKE)
        assert second.executed_runs == 1
        assert second.cached_runs == 5
        assert _series_payload(first) == _series_payload(second)

    def test_parallel_run_resumes_from_serial_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        serial = run_experiment(FIGURES["8a"], cache=cache, **SMOKE)
        parallel = run_experiment(FIGURES["8a"], cache=cache, jobs=2,
                                  **SMOKE)
        assert parallel.executed_runs == 0
        assert parallel.cached_runs == 6
        assert _series_payload(serial) == _series_payload(parallel)

    def test_traced_runs_bypass_cache_reads(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        plan = compile_figure(FIGURES["8a"], cardinality=8_000, num_sites=4,
                              measured_queries=20, mpls=(2,), seed=5,
                              strategies=("range",))
        SerialExecutor().execute(plan, cache=cache)
        (outcome,) = SerialExecutor().execute(
            plan, cache=cache, telemetry_spec=TelemetrySpec())
        # Tracing needs a live simulation: the hit must not short-circuit.
        assert not outcome.cached
        assert outcome.telemetry is not None

    def test_different_measured_queries_do_not_alias(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        a = self._planned(measured_queries=20)
        b = self._planned(measured_queries=30)
        assert a.spec.digest() != b.spec.digest()
        assert cache.path_for(a.spec) != cache.path_for(b.spec)


class TestRunResultRoundTrip:
    """RunResult must cross pickle (executors) and JSON (cache) losslessly."""

    @pytest.fixture(scope="class")
    def result(self):
        planned = compile_point(FIGURES["8a"], "range",
                                multiprogramming_level=2,
                                cardinality=8_000, num_sites=4,
                                measured_queries=20, seed=5)
        from repro.experiments import execute_run
        return execute_run(planned.spec, planned.params)

    def test_pickle_round_trip(self, result):
        assert pickle.loads(pickle.dumps(result)) == result

    def test_json_round_trip(self, result):
        from repro.gamma import RunResult
        payload = json.loads(json.dumps(result.to_json_dict()))
        restored = RunResult.from_json_dict(payload)
        for field, value in result.to_json_dict().items():
            other = getattr(restored, field)
            if isinstance(value, float) and math.isnan(value):
                assert math.isnan(other)
            else:
                assert other == value
