"""Tests for plan executors and the resumable result cache.

The determinism test is the contract ``--jobs N`` rests on: a parallel
run of the fig-8a smoke config must be *bit-identical* to serial,
because every seed derives from the RunSpec, never from worker state.
"""

import json
import math
import os
import pickle

import pytest

from repro.experiments import (
    FIGURES,
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    compile_figure,
    compile_point,
    figure_to_dict,
    make_executor,
    run_experiment,
)
from repro.obs import Telemetry, TelemetrySpec

#: The fig-8a smoke configuration the determinism guarantee is stated on.
SMOKE = dict(cardinality=10_000, num_sites=4, measured_queries=30,
             mpls=(1, 4), seed=5)


def _series_payload(result):
    """A figure's series as canonical JSON (NaN-tolerant bit comparison)."""
    return json.dumps(
        {name: [run.to_json_dict() for run in runs]
         for name, runs in result.series.items()},
        sort_keys=True)


class TestMakeExecutor:
    def test_serial_for_one_job(self):
        assert isinstance(make_executor(1), SerialExecutor)

    def test_parallel_for_many(self):
        executor = make_executor(3)
        assert isinstance(executor, ParallelExecutor)
        assert executor.jobs == 3

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            make_executor(0)
        with pytest.raises(ValueError):
            ParallelExecutor(1)


class TestParallelDeterminism:
    def test_jobs4_bit_identical_to_serial(self):
        serial = run_experiment(FIGURES["8a"], **SMOKE)
        parallel = run_experiment(FIGURES["8a"], jobs=4, **SMOKE)
        assert _series_payload(serial) == _series_payload(parallel)
        assert parallel.jobs == 4
        assert parallel.executor == "process-pool"
        assert serial.spec_digests == parallel.spec_digests

    def test_outcomes_arrive_in_plan_order(self):
        plan = compile_figure(FIGURES["8a"], cardinality=8_000, num_sites=4,
                              measured_queries=20, mpls=(1, 2), seed=5)
        outcomes = ParallelExecutor(jobs=2).execute(plan)
        assert [o.spec for o in outcomes] == plan.specs()

    def test_live_telemetry_provider_rejected(self):
        plan = compile_figure(FIGURES["8a"], cardinality=8_000, num_sites=4,
                              measured_queries=10, mpls=(1,), seed=5)
        with pytest.raises(ValueError, match="process boundaries"):
            ParallelExecutor(jobs=2).execute(
                plan, telemetry_provider=lambda spec: Telemetry())

    def test_parallel_telemetry_spec_returns_snapshots(self):
        plan = compile_figure(FIGURES["8a"], cardinality=8_000, num_sites=4,
                              measured_queries=20, mpls=(2,), seed=5,
                              strategies=("range",))
        (outcome,) = ParallelExecutor(jobs=2).execute(
            plan, telemetry_spec=TelemetrySpec())
        assert outcome.telemetry is not None
        assert outcome.telemetry.env is None  # detached snapshot
        assert outcome.telemetry.spans.span_count() > 0
        # Snapshots survive a further pickle round trip.
        clone = pickle.loads(pickle.dumps(outcome.telemetry))
        assert clone.spans.span_count() == \
            outcome.telemetry.spans.span_count()


class TestWallAndCpuSeconds:
    def test_serial_accounting(self):
        result = run_experiment(FIGURES["8a"], **SMOKE)
        assert result.cpu_seconds > 0
        assert result.wall_seconds >= result.cpu_seconds * 0.5
        assert result.executed_runs == 6
        assert result.cached_runs == 0

    def test_jobs_echoed_into_saved_json(self):
        result = run_experiment(FIGURES["8a"], jobs=2, **SMOKE)
        payload = figure_to_dict(result)
        assert payload["executor"]["jobs"] == 2
        assert payload["executor"]["name"] == "process-pool"
        assert payload["cpu_seconds"] > 0
        assert payload["wall_seconds"] > 0


class TestResultCache:
    def _planned(self, **overrides):
        kwargs = dict(multiprogramming_level=2, cardinality=8_000,
                      num_sites=4, measured_queries=20, seed=5)
        kwargs.update(overrides)
        return compile_point(FIGURES["8a"], "range", **kwargs)

    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        (outcome,) = SerialExecutor().execute(
            compile_figure(FIGURES["8a"], cardinality=8_000, num_sites=4,
                           measured_queries=20, mpls=(2,), seed=5,
                           strategies=("range",)), cache=cache)
        assert not outcome.cached
        restored = cache.get(outcome.spec)
        assert restored == outcome.result
        assert cache.hits == 1

    def test_miss_on_unknown_spec(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.get(self._planned().spec) is None
        assert cache.misses == 1

    def test_corrupt_entry_counts_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        plan = compile_figure(FIGURES["8a"], cardinality=8_000, num_sites=4,
                              measured_queries=20, mpls=(2,), seed=5,
                              strategies=("range",))
        SerialExecutor().execute(plan, cache=cache)
        path = cache.path_for(plan.specs()[0])
        with open(path, "w") as handle:
            handle.write("{ truncated")
        assert cache.get(plan.specs()[0]) is None

    def test_interrupted_sweep_resumes(self, tmp_path):
        """A killed run's completed points are skipped on re-run."""
        cache = ResultCache(str(tmp_path))
        first = run_experiment(FIGURES["8a"], cache=cache, **SMOKE)
        assert first.executed_runs == 6
        assert len(cache) == 6
        # Simulate a partially-complete cache: drop one entry.
        os.unlink(cache.path_for(compile_point(
            FIGURES["8a"], "magic", multiprogramming_level=4,
            cardinality=SMOKE["cardinality"], num_sites=SMOKE["num_sites"],
            measured_queries=SMOKE["measured_queries"],
            seed=SMOKE["seed"]).spec))
        second = run_experiment(FIGURES["8a"], cache=cache, **SMOKE)
        assert second.executed_runs == 1
        assert second.cached_runs == 5
        assert _series_payload(first) == _series_payload(second)

    def test_parallel_run_resumes_from_serial_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        serial = run_experiment(FIGURES["8a"], cache=cache, **SMOKE)
        parallel = run_experiment(FIGURES["8a"], cache=cache, jobs=2,
                                  **SMOKE)
        assert parallel.executed_runs == 0
        assert parallel.cached_runs == 6
        assert _series_payload(serial) == _series_payload(parallel)

    def test_traced_runs_bypass_cache_reads(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        plan = compile_figure(FIGURES["8a"], cardinality=8_000, num_sites=4,
                              measured_queries=20, mpls=(2,), seed=5,
                              strategies=("range",))
        SerialExecutor().execute(plan, cache=cache)
        (outcome,) = SerialExecutor().execute(
            plan, cache=cache, telemetry_spec=TelemetrySpec())
        # Tracing needs a live simulation: the hit must not short-circuit.
        assert not outcome.cached
        assert outcome.telemetry is not None

    def test_different_measured_queries_do_not_alias(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        a = self._planned(measured_queries=20)
        b = self._planned(measured_queries=30)
        assert a.spec.digest() != b.spec.digest()
        assert cache.path_for(a.spec) != cache.path_for(b.spec)


class TestRunResultRoundTrip:
    """RunResult must cross pickle (executors) and JSON (cache) losslessly."""

    @pytest.fixture(scope="class")
    def result(self):
        planned = compile_point(FIGURES["8a"], "range",
                                multiprogramming_level=2,
                                cardinality=8_000, num_sites=4,
                                measured_queries=20, seed=5)
        from repro.experiments import execute_run
        return execute_run(planned.spec, planned.params)

    def test_pickle_round_trip(self, result):
        assert pickle.loads(pickle.dumps(result)) == result

    def test_json_round_trip(self, result):
        from repro.gamma import RunResult
        payload = json.loads(json.dumps(result.to_json_dict()))
        restored = RunResult.from_json_dict(payload)
        for field, value in result.to_json_dict().items():
            other = getattr(restored, field)
            if isinstance(value, float) and math.isnan(value):
                assert math.isnan(other)
            else:
                assert other == value
