"""Top-level public API integrity tests."""

import importlib

import pytest

import repro

SUBPACKAGES = ["repro.des", "repro.storage", "repro.core", "repro.gamma",
               "repro.workload", "repro.experiments"]


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, name):
        """Every name a package exports must actually exist."""
        module = importlib.import_module(name)
        for symbol in module.__all__:
            assert hasattr(module, symbol), f"{name}.{symbol} missing"

    def test_top_level_all_resolves(self):
        for symbol in repro.__all__:
            assert hasattr(repro, symbol)

    def test_no_duplicate_exports(self):
        for name in SUBPACKAGES:
            module = importlib.import_module(name)
            assert len(set(module.__all__)) == len(module.__all__), name

    def test_key_entry_points_importable(self):
        from repro import (
            BerdStrategy,
            GammaMachine,
            MagicStrategy,
            RangeStrategy,
            make_mix,
            make_wisconsin,
        )
        assert all(obj is not None for obj in (
            BerdStrategy, GammaMachine, MagicStrategy, RangeStrategy,
            make_mix, make_wisconsin))

    def test_cli_entry_point_declared(self):
        import tomllib  # py311+; test env guarantees it
        with open("pyproject.toml", "rb") as handle:
            config = tomllib.load(handle)
        scripts = config["project"]["scripts"]
        assert scripts["repro-experiments"] == "repro.experiments.cli:main"

    def test_py_typed_marker_present(self):
        import os
        root = os.path.dirname(repro.__file__)
        assert os.path.exists(os.path.join(root, "py.typed"))


class TestDocstrings:
    @pytest.mark.parametrize("name", SUBPACKAGES + ["repro"])
    def test_packages_documented(self, name):
        module = importlib.import_module(name)
        assert module.__doc__ and len(module.__doc__) > 80

    def test_public_classes_documented(self):
        from repro import (
            BerdStrategy,
            GammaMachine,
            MagicStrategy,
            RangeStrategy,
        )
        for cls in (BerdStrategy, GammaMachine, MagicStrategy,
                    RangeStrategy):
            assert cls.__doc__ and len(cls.__doc__) > 30
