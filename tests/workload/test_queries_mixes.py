"""Unit tests for the workload: query specs and mixes."""

import random

import pytest

from repro.workload import (
    MIX_NAMES,
    QueryMix,
    SelectionQuerySpec,
    make_mix,
    qa_low,
    qa_moderate,
    qb_low,
    qb_moderate,
)


class TestQuerySpecs:
    def test_paper_selectivities(self):
        assert qa_low().tuples_retrieved == 1
        assert qb_low().tuples_retrieved == 10
        assert qa_moderate().tuples_retrieved == 30
        assert qb_moderate().tuples_retrieved == 300

    def test_selectivity_fractions(self):
        assert qb_low().selectivity == pytest.approx(0.0001)
        assert qa_moderate().selectivity == pytest.approx(0.0003)
        assert qb_moderate().selectivity == pytest.approx(0.003)

    def test_index_kinds(self):
        assert not qa_low().clustered_index
        assert not qa_moderate().clustered_index
        assert qb_low().clustered_index
        assert qb_moderate().clustered_index

    def test_equality_predicate_for_single_tuple(self):
        rng = random.Random(1)
        pred = qa_low().make_predicate(rng)
        assert pred.is_equality
        assert pred.attribute == "unique1"

    def test_range_predicate_width_exact(self):
        rng = random.Random(1)
        for spec in (qb_low(), qa_moderate(), qb_moderate()):
            for _ in range(20):
                pred = spec.make_predicate(rng)
                assert pred.high - pred.low + 1 == spec.tuples_retrieved
                assert 0 <= pred.low
                assert pred.high < spec.domain

    def test_scaled_domain(self):
        spec = qb_moderate(domain=10_000)
        assert spec.tuples_retrieved == 30  # 0.3% of 10k

    def test_validation(self):
        with pytest.raises(ValueError):
            SelectionQuerySpec("bad", "a", 0, False, 100)
        with pytest.raises(ValueError):
            SelectionQuerySpec("bad", "a", 200, False, 100)


class TestHotSpotPlacement:
    def test_uniform_by_default(self):
        spec = qa_low()
        assert not spec.is_skewed

    def test_hot_queries_land_in_hot_region(self):
        rng = random.Random(1)
        spec = qb_low().with_skew(hot_fraction=0.2, hot_probability=1.0)
        assert spec.is_skewed
        for _ in range(100):
            pred = spec.make_predicate(rng)
            assert pred.low < 0.2 * spec.domain

    def test_hot_probability_mixes_regions(self):
        rng = random.Random(2)
        spec = qb_low().with_skew(hot_fraction=0.2, hot_probability=0.8)
        hot = sum(1 for _ in range(2000)
                  if spec.make_predicate(rng).low < 0.2 * spec.domain)
        # ~80% forced hot + ~20% of the uniform remainder also lands hot.
        assert 0.75 < hot / 2000 < 0.92

    def test_skew_preserves_width(self):
        rng = random.Random(3)
        spec = qb_moderate().with_skew(0.1, 0.9)
        for _ in range(50):
            pred = spec.make_predicate(rng)
            assert pred.high - pred.low + 1 == spec.tuples_retrieved

    def test_mix_level_skew(self):
        mix = make_mix("low-low", hot_fraction=0.25, hot_probability=0.9)
        assert all(s.is_skewed for s in mix.specs)

    def test_validation(self):
        with pytest.raises(ValueError):
            qa_low().with_skew(0.0, 0.5)
        with pytest.raises(ValueError):
            qa_low().with_skew(0.5, 1.5)


class TestMixes:
    def test_all_paper_mixes_buildable(self):
        for name in MIX_NAMES:
            mix = make_mix(name)
            assert len(mix.specs) == 2
            assert mix.frequencies == (0.5, 0.5)

    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError):
            make_mix("extreme-extreme")

    def test_mix_composition(self):
        mix = make_mix("low-moderate")
        assert mix.spec_named("QA").tuples_retrieved == 1
        assert mix.spec_named("QB").tuples_retrieved == 300

    def test_fig9_variant(self):
        mix = make_mix("low-low-20")
        assert mix.spec_named("QB").tuples_retrieved == 20

    def test_unknown_spec_name(self):
        with pytest.raises(KeyError):
            make_mix("low-low").spec_named("QZ")

    def test_callable_source_protocol(self):
        mix = make_mix("low-low")
        rng = random.Random(7)
        qtype, relation, pred = mix(rng)
        assert qtype in ("QA", "QB")
        assert relation == "R"
        assert pred.attribute in ("unique1", "unique2")

    def test_fifty_fifty_sampling(self):
        mix = make_mix("low-low")
        rng = random.Random(3)
        names = [mix.sample_spec(rng).name for _ in range(2000)]
        qa_share = names.count("QA") / len(names)
        assert 0.45 < qa_share < 0.55

    def test_validation(self):
        spec = qa_low()
        with pytest.raises(ValueError):
            QueryMix("m", "R", (spec,), (0.5, 0.5))
        with pytest.raises(ValueError):
            QueryMix("m", "R", (), ())
        with pytest.raises(ValueError):
            QueryMix("m", "R", (spec,), (0.0,))
