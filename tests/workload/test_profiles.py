"""Unit tests for the analytic resource profiles and derived cost model."""

import pytest

from repro.gamma import GAMMA_PARAMETERS
from repro.workload import (
    cost_model_for_mix,
    cost_of_participation,
    directory_search_cost,
    estimate_profile,
    make_mix,
    qa_low,
    qa_moderate,
    qb_low,
    qb_moderate,
)

CARD = 100_000


class TestEstimates:
    def test_moderate_costs_more_than_low(self):
        low = estimate_profile(qa_low(), GAMMA_PARAMETERS, CARD, 0.5)
        mod = estimate_profile(qa_moderate(), GAMMA_PARAMETERS, CARD, 0.5)
        assert mod.total_seconds > 5 * low.total_seconds

    def test_nonclustered_disk_dominated(self):
        mod = estimate_profile(qa_moderate(), GAMMA_PARAMETERS, CARD, 0.5)
        # ~26 random reads at ~15 ms each.
        assert 0.25 < mod.disk_seconds < 0.6

    def test_clustered_streams_cheaply(self):
        mod = estimate_profile(qb_moderate(), GAMMA_PARAMETERS, CARD, 0.5)
        # descent + ~9 sequential pages.
        assert mod.disk_seconds < 0.1

    def test_paper_pair_equality_claim(self):
        """§6: each low/moderate pair has comparable execution times.

        With our calibration the pairs agree within a factor of ~3 --
        recorded as a known deviation in EXPERIMENTS.md.
        """
        la = estimate_profile(qa_low(), GAMMA_PARAMETERS, CARD, 0.5)
        lb = estimate_profile(qb_low(), GAMMA_PARAMETERS, CARD, 0.5)
        assert 0.25 < la.total_seconds / lb.total_seconds < 4.0

    def test_network_scales_with_tuples(self):
        lo = estimate_profile(qb_low(), GAMMA_PARAMETERS, CARD, 0.5)
        hi = estimate_profile(qb_moderate(), GAMMA_PARAMETERS, CARD, 0.5)
        assert hi.net_seconds > lo.net_seconds

    def test_frequency_passthrough(self):
        p = estimate_profile(qa_low(), GAMMA_PARAMETERS, CARD, 0.25)
        assert p.frequency == 0.25
        assert p.attribute == "unique1"


class TestCalibrationConstants:
    def test_cp_is_a_few_milliseconds(self):
        cp = cost_of_participation(GAMMA_PARAMETERS)
        assert 0.002 < cp < 0.02

    def test_cs_is_microseconds(self):
        cs = directory_search_cost(GAMMA_PARAMETERS)
        assert 0 < cs < 1e-4


class TestDerivedCostModel:
    def test_moderate_mi_near_nine(self):
        """§7.2/§7.3: the moderate queries' ideal M_i is ~9 processors."""
        model = cost_model_for_mix(
            make_mix("moderate-moderate"), GAMMA_PARAMETERS, CARD)
        assert 5 <= model.ideal_mi("unique1") <= 14

    def test_low_mi_small(self):
        model = cost_model_for_mix(
            make_mix("low-low"), GAMMA_PARAMETERS, CARD)
        assert model.ideal_mi("unique1") <= 4

    def test_low_moderate_asymmetry(self):
        """§7.2: M_B for the moderate QB far exceeds M_A for the low QA."""
        model = cost_model_for_mix(
            make_mix("low-moderate"), GAMMA_PARAMETERS, CARD)
        assert model.ideal_mi("unique2") > 2.5 * model.ideal_mi("unique1")

    def test_directory_shape_plausible(self):
        model = cost_model_for_mix(
            make_mix("low-low"), GAMMA_PARAMETERS, CARD)
        shape = model.directory_shape()
        total = shape["unique1"] * shape["unique2"]
        assert 32 <= total <= 100_000
