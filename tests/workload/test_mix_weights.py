"""Weight handling in QueryMix / CompositeSource.

``random.Random.choices`` normalizes weights internally, so mixes only
need *relative* frequencies -- these tests pin that contract: scaled
weights sample identically, and invalid weights are rejected up front
rather than surfacing as silent bias.
"""

import random

import pytest

from repro.workload.mixes import CompositeSource, QueryMix, make_mix
from repro.workload.queries import qa_low, qb_low


def _mix_with_frequencies(frequencies):
    return QueryMix(name="t", relation="R",
                    specs=(qa_low(1000), qb_low(1000)),
                    frequencies=frequencies)


class TestQueryMixWeights:
    def test_rejects_zero_and_negative_frequencies(self):
        with pytest.raises(ValueError):
            _mix_with_frequencies((0.5, 0.0))
        with pytest.raises(ValueError):
            _mix_with_frequencies((0.5, -1.0))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            _mix_with_frequencies((1.0,))

    def test_rejects_empty_mix(self):
        with pytest.raises(ValueError):
            QueryMix(name="t", relation="R", specs=(), frequencies=())

    def test_scaled_frequencies_sample_identically(self):
        """(1, 1) and (50, 50) are the same mix: only ratios matter."""
        unit = _mix_with_frequencies((1.0, 1.0))
        scaled = _mix_with_frequencies((50.0, 50.0))
        rng_a, rng_b = random.Random(9), random.Random(9)
        for _ in range(200):
            assert unit.sample_spec(rng_a).name == \
                scaled.sample_spec(rng_b).name

    def test_even_frequencies_are_roughly_balanced(self):
        mix = make_mix("low-low", domain=1000)
        assert mix.frequencies == (0.5, 0.5)
        rng = random.Random(4)
        names = [mix.sample_spec(rng).name for _ in range(2000)]
        qa = names.count("QA")
        assert 800 < qa < 1200  # ~50% with generous slack

    def test_skewed_frequencies_shift_the_draw(self):
        mix = _mix_with_frequencies((9.0, 1.0))
        rng = random.Random(4)
        names = [mix.sample_spec(rng).name for _ in range(2000)]
        assert names.count("QA") > 1600  # ~90%


class TestCompositeSourceWeights:
    def test_rejects_bad_weights(self):
        mix = make_mix("low-low", domain=1000)
        with pytest.raises(ValueError):
            CompositeSource(sources=(mix,), weights=(0.0,))
        with pytest.raises(ValueError):
            CompositeSource(sources=(mix,), weights=(1.0, 1.0))
        with pytest.raises(ValueError):
            CompositeSource(sources=(), weights=())

    def test_weighted_selection_between_relations(self):
        left = make_mix("low-low", relation="L", domain=1000)
        right = make_mix("low-low", relation="S", domain=1000)
        source = CompositeSource(sources=(left, right),
                                 weights=(3.0, 1.0))
        rng = random.Random(6)
        relations = [source(rng)[1] for _ in range(2000)]
        assert relations.count("L") > 1300  # ~75%
        assert relations.count("S") > 300
