"""Tests for the sequential-scan fallback (unindexed attributes)."""

import pytest

from repro.core import RangePredicate, RangeStrategy
from repro.gamma import GammaMachine, GAMMA_PARAMETERS
from repro.storage import make_wisconsin, sequential_scan_plan

INDEXES = {"unique1": False, "unique2": True}


class TestScanPlan:
    def test_reads_every_page(self):
        plan = sequential_scan_plan(3600, tuples_per_page=36,
                                    num_matches=10)
        assert plan.data_sequential_reads == 100
        assert plan.random_reads == 0
        assert plan.tuples_examined == 3600
        assert plan.tuples_returned == 10

    def test_empty_relation(self):
        plan = sequential_scan_plan(0)
        assert plan.total_reads == 0
        assert plan.tuples_returned == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            sequential_scan_plan(-1)
        with pytest.raises(ValueError):
            sequential_scan_plan(10, num_matches=11)

    def test_index_plans_return_equals_examined(self):
        from repro.storage import BTreeIndex
        plan = BTreeIndex(1000, clustered=True).range_lookup(50)
        assert plan.tuples_returned == plan.tuples_examined == 50


class TestScanExecution:
    @pytest.fixture(scope="class")
    def machine(self):
        relation = make_wisconsin(10_000, correlation="low", seed=80)
        placement = RangeStrategy("unique1").partition(relation, 4)
        return GammaMachine(placement, indexes=INDEXES, seed=1)

    def test_unindexed_query_returns_exact_results(self, machine):
        handle = machine.scheduler.submit(
            "R", "scan", RangePredicate("ten", 3, 3))
        machine.env.run(until=handle.completion)
        assert handle.tuples_returned == 1000  # unique1 % 10 == 3

    def test_scan_broadcasts(self, machine):
        handle = machine.scheduler.submit(
            "R", "scan", RangePredicate.equals("two", 0))
        machine.env.run(until=handle.completion)
        assert handle.sites_used == 4
        assert handle.tuples_returned == 5000

    def test_scan_much_slower_than_index(self, machine):
        start = machine.env.now
        handle = machine.scheduler.submit(
            "R", "scan", RangePredicate("one_percent", 5, 5))
        machine.env.run(until=handle.completion)
        scan_time = machine.env.now - start

        start = machine.env.now
        handle = machine.scheduler.submit(
            "R", "idx", RangePredicate("unique2", 0, 99))
        machine.env.run(until=handle.completion)
        index_time = machine.env.now - start
        assert scan_time > 5 * index_time

    def test_scan_under_buffer_pool(self):
        relation = make_wisconsin(10_000, correlation="low", seed=80)
        placement = RangeStrategy("unique1").partition(relation, 4)
        params = GAMMA_PARAMETERS.with_overrides(buffer_pool_pages=128)
        machine = GammaMachine(placement, indexes=INDEXES, params=params,
                               seed=1)
        handle = machine.scheduler.submit(
            "R", "scan", RangePredicate("ten", 7, 7))
        machine.env.run(until=handle.completion)
        assert handle.tuples_returned == 1000
