"""Unit tests for the system catalog."""

import random

import pytest

from repro.core import BerdStrategy, MagicStrategy, MagicTuning, RangeStrategy
from repro.gamma import GAMMA_PARAMETERS, SystemCatalog
from repro.storage import DiskLayout, make_wisconsin

P = 8


@pytest.fixture(scope="module")
def relation():
    return make_wisconsin(cardinality=10_000, correlation="low", seed=20)


@pytest.fixture
def catalog():
    return SystemCatalog(GAMMA_PARAMETERS)


def layouts():
    return [DiskLayout(GAMMA_PARAMETERS.disk_geometry) for _ in range(P)]


INDEXES = {"unique1": False, "unique2": True}


class TestRegistration:
    def test_register_range_placement(self, relation, catalog):
        placement = RangeStrategy("unique1").partition(relation, P)
        entry = catalog.register(placement, INDEXES, layouts())
        assert len(entry.sites) == P
        # Base extent sized for the fragment.
        frag = placement.fragment(0)
        expected_pages = -(-frag.cardinality // 36)
        assert entry.sites[0].base_extent.num_pages == expected_pages

    def test_double_registration_rejected(self, relation, catalog):
        placement = RangeStrategy("unique1").partition(relation, P)
        catalog.register(placement, INDEXES, layouts())
        with pytest.raises(ValueError):
            catalog.register(placement, INDEXES, layouts())

    def test_layout_count_checked(self, relation, catalog):
        placement = RangeStrategy("unique1").partition(relation, P)
        with pytest.raises(ValueError):
            catalog.register(placement, INDEXES, layouts()[:3])

    def test_unknown_relation_rejected(self, catalog):
        with pytest.raises(KeyError):
            catalog.entry("missing")


class TestIndexes:
    def test_btrees_per_site_and_attribute(self, relation, catalog):
        placement = RangeStrategy("unique1").partition(relation, P)
        catalog.register(placement, INDEXES, layouts())
        nonclustered = catalog.btree("R", 0, "unique1")
        clustered = catalog.btree("R", 0, "unique2")
        assert not nonclustered.clustered
        assert clustered.clustered
        assert nonclustered.num_keys == placement.fragment(0).cardinality

    def test_missing_index_rejected(self, relation, catalog):
        placement = RangeStrategy("unique1").partition(relation, P)
        catalog.register(placement, INDEXES, layouts())
        with pytest.raises(KeyError):
            catalog.btree("R", 0, "ten")

    def test_berd_aux_btrees_registered(self, relation, catalog):
        placement = BerdStrategy("unique1", ["unique2"]).partition(relation, P)
        catalog.register(placement, INDEXES, layouts())
        aux = catalog.aux_btree("R", 3, "unique2")
        assert aux.clustered
        assert aux.num_keys == placement.aux_cardinality("unique2", 3)

    def test_aux_btree_missing_for_range(self, relation, catalog):
        placement = RangeStrategy("unique1").partition(relation, P)
        catalog.register(placement, INDEXES, layouts())
        with pytest.raises(KeyError):
            catalog.aux_btree("R", 0, "unique2")


class TestPhysicalPositions:
    def test_random_read_within_extent(self, relation, catalog):
        placement = RangeStrategy("unique1").partition(relation, P)
        entry = catalog.register(placement, INDEXES, layouts())
        rng = random.Random(0)
        geometry = GAMMA_PARAMETERS.disk_geometry
        extent = entry.sites[2].base_extent
        lo = extent.start_page // geometry.pages_per_cylinder
        hi = (extent.end_page - 1) // geometry.pages_per_cylinder
        for _ in range(50):
            cyl = catalog.random_read_cylinder("R", 2, rng)
            assert lo <= cyl <= hi

    def test_sequential_run_fits(self, relation, catalog):
        placement = RangeStrategy("unique1").partition(relation, P)
        catalog.register(placement, INDEXES, layouts())
        rng = random.Random(0)
        for _ in range(20):
            cyl = catalog.sequential_run_cylinder("R", 0, 5, rng)
            assert cyl >= 0

    def test_aux_positions(self, relation, catalog):
        placement = BerdStrategy("unique1", ["unique2"]).partition(relation, P)
        catalog.register(placement, INDEXES, layouts())
        rng = random.Random(0)
        cyl = catalog.aux_read_cylinder("R", 0, "unique2", rng)
        assert cyl >= 0
        cyl2 = catalog.aux_sequential_run_cylinder("R", 0, "unique2", 1, rng)
        assert cyl2 >= 0


class TestLocalizationCost:
    def test_magic_costs_more_than_range(self, relation, catalog):
        range_placement = RangeStrategy("unique1").partition(relation, P)
        magic_placement = MagicStrategy(
            ["unique1", "unique2"],
            tuning=MagicTuning(shape={"unique1": 20, "unique2": 20},
                               mi={"unique1": 3.0, "unique2": 3.0}),
        ).partition(relation, P)
        catalog.register(range_placement, INDEXES, layouts())

        other = SystemCatalog(GAMMA_PARAMETERS)
        other.register(magic_placement, INDEXES, layouts())

        assert other.localization_instructions("R") > \
            catalog.localization_instructions("R") / 2
        # Both are bounded: localization never costs more than ~1 ms CPU.
        assert other.localization_instructions("R") < 3000
