"""Tests of scheduler coordination and operator execution details."""

import pytest

from repro.core import BerdStrategy, RangePredicate, RangeStrategy
from repro.gamma import GammaMachine
from repro.storage import make_wisconsin

P = 8
INDEXES = {"unique1": False, "unique2": True}


@pytest.fixture(scope="module")
def relation(wisconsin_factory):
    return wisconsin_factory(20_000, correlation="low", seed=22)


def run_one_query(machine, predicate, query_type="Q"):
    handle = machine.scheduler.submit("R", query_type, predicate)
    machine.env.run(until=handle.completion)
    return handle


class TestSingleQueryExecution:
    def test_single_site_query(self, relation):
        placement = RangeStrategy("unique1").partition(relation, P)
        machine = GammaMachine(placement, indexes=INDEXES, seed=5)
        handle = run_one_query(
            machine, RangePredicate.equals("unique1", 1234))
        assert handle.tuples_returned == 1
        assert handle.sites_used == 1

    def test_broadcast_query(self, relation):
        placement = RangeStrategy("unique1").partition(relation, P)
        machine = GammaMachine(placement, indexes=INDEXES, seed=5)
        handle = run_one_query(
            machine, RangePredicate("unique2", 100, 199))
        assert handle.tuples_returned == 100
        assert handle.sites_used == P

    def test_operator_counts_selects(self, relation):
        placement = RangeStrategy("unique1").partition(relation, P)
        machine = GammaMachine(placement, indexes=INDEXES, seed=5)
        run_one_query(machine, RangePredicate("unique2", 0, 9))
        executed = sum(n.operator_manager.selects_executed
                       for n in machine.nodes)
        assert executed == P  # broadcast: every site ran the select

    def test_berd_probe_then_select(self, relation):
        placement = BerdStrategy("unique1", ["unique2"]).partition(relation, P)
        machine = GammaMachine(placement, indexes=INDEXES, seed=5)
        handle = run_one_query(machine, RangePredicate("unique2", 500, 509))
        assert handle.tuples_returned == 10
        probes = sum(n.operator_manager.probes_executed
                     for n in machine.nodes)
        assert probes == 1

    def test_berd_empty_result_completes_after_probe(self, relation):
        placement = BerdStrategy("unique1", ["unique2"]).partition(relation, P)
        machine = GammaMachine(placement, indexes=INDEXES, seed=5)
        handle = run_one_query(
            machine, RangePredicate("unique2", 1_000_000, 1_000_100))
        assert handle.tuples_returned == 0
        assert machine.scheduler.in_flight == 0

    def test_primary_attribute_skips_probe(self, relation):
        placement = BerdStrategy("unique1", ["unique2"]).partition(relation, P)
        machine = GammaMachine(placement, indexes=INDEXES, seed=5)
        run_one_query(machine, RangePredicate("unique1", 0, 99))
        probes = sum(n.operator_manager.probes_executed
                     for n in machine.nodes)
        assert probes == 0

    def test_queries_tracked_and_released(self, relation):
        placement = RangeStrategy("unique1").partition(relation, P)
        machine = GammaMachine(placement, indexes=INDEXES, seed=5)
        for value in (10, 20, 30):
            run_one_query(machine, RangePredicate.equals("unique1", value))
        assert machine.scheduler.in_flight == 0

    def test_result_accuracy_many_predicates(self, relation):
        """Tuples returned always equals the true qualifying count."""
        placement = RangeStrategy("unique1").partition(relation, P)
        machine = GammaMachine(placement, indexes=INDEXES, seed=5)
        for lo, width in [(0, 50), (19_000, 500), (5_000, 1)]:
            pred = RangePredicate("unique1", lo, lo + width - 1)
            handle = run_one_query(machine, pred)
            assert handle.tuples_returned == width


class TestConcurrentQueries:
    def test_parallel_queries_all_complete(self, relation):
        placement = RangeStrategy("unique1").partition(relation, P)
        machine = GammaMachine(placement, indexes=INDEXES, seed=5)
        handles = [
            machine.scheduler.submit(
                "R", "Q", RangePredicate.equals("unique1", v))
            for v in range(0, 1000, 100)
        ]
        for handle in handles:
            machine.env.run(until=handle.completion)
        assert all(h.tuples_returned == 1 for h in handles)
        assert machine.scheduler.in_flight == 0

    def test_interleaved_probe_and_select(self, relation):
        placement = BerdStrategy("unique1", ["unique2"]).partition(relation, P)
        machine = GammaMachine(placement, indexes=INDEXES, seed=5)
        handles = []
        for v in range(0, 2000, 200):
            handles.append(machine.scheduler.submit(
                "R", "QB", RangePredicate("unique2", v, v + 9)))
            handles.append(machine.scheduler.submit(
                "R", "QA", RangePredicate.equals("unique1", v)))
        for handle in handles:
            machine.env.run(until=handle.completion)
        total = sum(h.tuples_returned for h in handles)
        assert total == 10 * 10 + 10 * 1
