"""Property-based tests for the Gamma components."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment
from repro.gamma import GAMMA_PARAMETERS, Cpu, Disk, Network


@given(
    requests=st.lists(
        st.tuples(st.integers(min_value=0, max_value=841),   # cylinder
                  st.integers(min_value=1, max_value=6),     # pages
                  st.booleans()),                            # sequential
        min_size=1, max_size=25)
)
@settings(max_examples=30, deadline=None)
def test_disk_serves_every_request_exactly_once(requests):
    env = Environment()
    cpu = Cpu(env, GAMMA_PARAMETERS)
    disk = Disk(env, GAMMA_PARAMETERS, cpu, seed=3)
    events = [disk.submit(cyl, pages, sequential=seq)
              for cyl, pages, seq in requests]

    def waiter(env):
        for ev in events:
            yield ev

    done = env.process(waiter(env))
    env.run(until=done)
    assert disk.requests_served == len(requests)
    assert disk.queue_length == 0
    assert all(ev.processed for ev in events)


@given(
    requests=st.lists(
        st.integers(min_value=0, max_value=841),
        min_size=2, max_size=20)
)
@settings(max_examples=30, deadline=None)
def test_disk_busy_time_bounded_by_elapsed(requests):
    env = Environment()
    cpu = Cpu(env, GAMMA_PARAMETERS)
    disk = Disk(env, GAMMA_PARAMETERS, cpu, seed=4)
    events = [disk.submit(cyl, 1) for cyl in requests]

    def waiter(env):
        for ev in events:
            yield ev

    done = env.process(waiter(env))
    env.run(until=done)
    assert 0 < disk.busy_seconds <= env.now + 1e-9
    # Each single-page read costs at least the transfer time.
    assert disk.busy_seconds >= len(requests) * \
        GAMMA_PARAMETERS.page_transfer_seconds() - 1e-9


@given(
    messages=st.lists(
        st.tuples(st.integers(min_value=0, max_value=3),   # src
                  st.integers(min_value=0, max_value=3),   # dst
                  st.integers(min_value=1, max_value=8192)),
        min_size=1, max_size=30)
)
@settings(max_examples=30, deadline=None)
def test_network_delivers_every_message(messages):
    env = Environment()
    net = Network(env, GAMMA_PARAMETERS)
    for node in range(4):
        net.attach(node, Cpu(env, GAMMA_PARAMETERS))

    def sender(env):
        for i, (src, dst, size) in enumerate(messages):
            yield from net.deliver(src, dst, size, ("msg", i))

    done = env.process(sender(env))
    env.run(until=done)
    env.run()
    delivered = sum(len(net.endpoint(n).mailbox) for n in range(4))
    assert delivered == len(messages)
    assert net.messages_sent == len(messages)
    assert net.bytes_sent == sum(size for _, _, size in messages)


@given(
    bursts=st.lists(st.integers(min_value=1, max_value=500_000),
                    min_size=1, max_size=15)
)
@settings(max_examples=30, deadline=None)
def test_cpu_work_conservation(bursts):
    """Total busy time equals the exact sum of requested service."""
    env = Environment()
    cpu = Cpu(env, GAMMA_PARAMETERS)

    def job(env, instructions):
        yield from cpu.execute(instructions)

    for instr in bursts:
        env.process(job(env, instr))
    env.run()
    expected = sum(bursts) / GAMMA_PARAMETERS.cpu_instructions_per_second
    assert cpu.busy_seconds == pytest.approx(expected)
    # Single server: makespan equals total service.
    assert env.now == pytest.approx(expected)
