"""Queueing-theory validation of the simulator.

The paper's model "was validated against the Gamma database machine";
we have no Gamma, but the simulator must obey the laws any queueing
network obeys.  These tests check it against closed-form results:

* M/D/1 waiting time at a single CPU under Poisson arrivals;
* Little's law (E[N] = lambda * R) on the whole machine, open arrivals;
* the utilization law (U = X * D) for the disks;
* intra-query linear speedup (the paper's footnote 2).
"""

import random

import pytest

from repro.core import BerdStrategy, MagicStrategy, MagicTuning, RangeStrategy
from repro.des import Environment, TallyMonitor
from repro.gamma import GAMMA_PARAMETERS, Cpu, GammaMachine, OpenArrivalSource
from repro.storage import make_wisconsin
from repro.workload import make_mix

INDEXES = {"unique1": False, "unique2": True}


class TestMD1:
    @pytest.mark.parametrize("rho", [0.3, 0.6])
    def test_cpu_utilization_matches_offered_load(self, rho):
        """Poisson arrivals at offered load rho: measured utilization ~ rho."""
        env = Environment()
        cpu = Cpu(env, GAMMA_PARAMETERS)
        service = 0.01
        instructions = service * GAMMA_PARAMETERS.cpu_instructions_per_second
        rate = rho / service
        rng = random.Random(42)

        def job(env):
            yield from cpu.execute(instructions)

        def arrivals(env):
            for _ in range(4000):
                yield env.timeout(rng.expovariate(rate))
                env.process(job(env))

        env.process(arrivals(env))
        env.run()
        assert cpu.busy_seconds / env.now == pytest.approx(rho, rel=0.1)

    @pytest.mark.parametrize("rho", [0.3, 0.6, 0.8])
    def test_md1_waiting_time(self, rho):
        """Measure queueing delay explicitly and compare with M/D/1."""
        env = Environment()
        cpu = Cpu(env, GAMMA_PARAMETERS)
        service = 0.01
        instructions = service * GAMMA_PARAMETERS.cpu_instructions_per_second
        rate = rho / service
        rng = random.Random(7)
        responses = TallyMonitor()

        def job(env):
            arrived = env.now
            yield from cpu.execute(instructions)
            responses.record(env.now - arrived)

        def arrivals(env):
            for _ in range(6000):
                yield env.timeout(rng.expovariate(rate))
                env.process(job(env))

        env.process(arrivals(env))
        env.run()
        expected_response = service + rho * service / (2 * (1 - rho))
        assert responses.mean == pytest.approx(expected_response, rel=0.15)


class TestOperationalLaws:
    @pytest.fixture(scope="class")
    def open_run(self):
        relation = make_wisconsin(20_000, correlation="low", seed=60)
        placement = RangeStrategy("unique1").partition(relation, 8)
        machine = GammaMachine(placement, indexes=INDEXES, seed=4)
        mix = make_mix("low-low", domain=20_000)
        driver = OpenArrivalSource(machine.env, machine.scheduler, mix,
                                   machine.metrics,
                                   arrivals_per_second=40.0, seed=9)
        driver.start()

        # Sample the number of in-flight queries for Little's law.
        samples = TallyMonitor()

        def sampler(env):
            while env.now < 120.0:
                samples.record(machine.scheduler.in_flight)
                yield env.timeout(0.05)

        machine.env.process(sampler(machine.env))
        machine.env.run(until=120.0)
        return machine, samples

    def test_littles_law(self, open_run):
        """E[N] = lambda * R on the whole machine."""
        machine, samples = open_run
        completed = machine.metrics.completed_total
        assert completed > 2000
        throughput = completed / machine.env.now
        response = machine.metrics.mean_response_time()
        expected_n = throughput * response
        assert samples.mean == pytest.approx(expected_n, rel=0.2)

    def test_utilization_law(self, open_run):
        """U_disk = X * D_disk, with D measured as busy time per query."""
        machine, _ = open_run
        elapsed = machine.env.now
        completed = machine.metrics.completed_total
        throughput = completed / elapsed
        total_busy = sum(n.disk.busy_seconds for n in machine.nodes)
        demand_per_query = total_busy / completed
        utilization = total_busy / (len(machine.nodes) * elapsed)
        assert utilization == pytest.approx(
            throughput * demand_per_query / len(machine.nodes), rel=1e-6)
        # And the system is comfortably below saturation at this rate.
        assert utilization < 0.9

    def test_throughput_tracks_arrival_rate(self, open_run):
        machine, _ = open_run
        rate = machine.metrics.completed_total / machine.env.now
        assert rate == pytest.approx(40.0, rel=0.15)


class TestLinearSpeedup:
    def test_intra_query_parallelism_reduces_response(self):
        """Footnote 2: declustering wider cuts an isolated query's
        response time.  BERD runs the moderate QA on one processor,
        MAGIC on ~16: at MPL 1 MAGIC must answer several times faster."""
        relation = make_wisconsin(100_000, correlation="low", seed=61)
        mix = make_mix("moderate-low")
        berd = BerdStrategy("unique1", ["unique2"]).partition(relation, 32)
        magic = MagicStrategy(
            ["unique1", "unique2"],
            tuning=MagicTuning(shape={"unique1": 193, "unique2": 23},
                               mi={"unique1": 9.0, "unique2": 1.0}),
        ).partition(relation, 32)

        responses = {}
        for name, placement in (("berd", berd), ("magic", magic)):
            machine = GammaMachine(placement, indexes=INDEXES, seed=7)
            result = machine.run(mix, multiprogramming_level=1,
                                 measured_queries=80)
            responses[name] = result.response_time_by_type["QA"]
        assert responses["berd"] > 3 * responses["magic"]
