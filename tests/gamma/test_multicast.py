"""The batched multicast path must be indistinguishable from deliver().

The scheduler's insert/probe/select fan-outs (one control message per
site, 1,024 of them on the big machine) go through
:meth:`Network.multicast`, which hoists the per-destination lookups out
of the loop.  The simulated behavior -- event timings, CPU and NIC
charges, counters, mailbox contents and order -- must be *identical* to
issuing the same :meth:`Network.deliver` calls back to back, or the
32-site figures would shift.
"""

import pytest

from repro.des import Environment
from repro.gamma import GAMMA_PARAMETERS, Cpu, Network

NUM_NODES = 5


def make_net(env):
    network = Network(env, GAMMA_PARAMETERS)
    for node in range(NUM_NODES):
        network.attach(node, Cpu(env, GAMMA_PARAMETERS, name=f"cpu{node}"))
    return network


def run_fanout(send):
    """Run one fan-out via *send* and snapshot everything observable."""
    env = Environment()
    net = make_net(env)
    finished = []

    def sender(env):
        yield from send(net, env)
        finished.append(env.now)

    env.process(sender(env))
    env.run()
    return {
        "finished": finished,
        "messages_sent": net.messages_sent,
        "bytes_sent": net.bytes_sent,
        "cpu_busy": [net.endpoint(i).cpu.busy_seconds
                     for i in range(NUM_NODES)],
        "mailboxes": [list(net.endpoint(i).mailbox._items)
                      for i in range(NUM_NODES)],
        "now": env.now,
    }


PAIRS = [(dst, f"msg-{dst}") for dst in (1, 3, 0, 4, 2)]
NUM_BYTES = 512


class TestMulticastEquivalence:
    def test_matches_sequential_deliver(self):
        def via_deliver(net, env):
            for dst, message in PAIRS:
                yield from net.deliver(0, dst, NUM_BYTES, message)

        def via_multicast(net, env):
            yield from net.multicast(0, PAIRS, NUM_BYTES)

        assert run_fanout(via_multicast) == run_fanout(via_deliver)

    def test_self_delivery_in_batch(self):
        pairs = [(0, "self"), (2, "other"), (0, "self-again")]

        def via_deliver(net, env):
            for dst, message in pairs:
                yield from net.deliver(0, dst, 64, message)

        def via_multicast(net, env):
            yield from net.multicast(0, pairs, 64)

        assert run_fanout(via_multicast) == run_fanout(via_deliver)

    def test_empty_batch_is_noop(self):
        def via_multicast(net, env):
            yield from net.multicast(0, [], NUM_BYTES)

        snap = run_fanout(via_multicast)
        assert snap["messages_sent"] == 0
        assert snap["now"] == 0
        assert all(not box for box in snap["mailboxes"])

    def test_counters_accumulate_per_destination(self):
        def via_multicast(net, env):
            yield from net.multicast(0, PAIRS, NUM_BYTES)

        snap = run_fanout(via_multicast)
        assert snap["messages_sent"] == len(PAIRS)
        assert snap["bytes_sent"] == len(PAIRS) * NUM_BYTES

    def test_concurrent_multicasts_interleave_like_delivers(self):
        """Two senders fanning out at once: NIC serialization must match."""
        def run(concurrent_send):
            env = Environment()
            net = make_net(env)
            done = []

            def sender(env, src):
                yield from concurrent_send(net, src)
                done.append((src, env.now))

            env.process(sender(env, 0))
            env.process(sender(env, 1))
            env.run()
            return done, net.bytes_sent

        def multicast(net, src):
            yield from net.multicast(
                src, [(d, (src, d)) for d in range(NUM_NODES)], 4096)

        def deliver(net, src):
            for d in range(NUM_NODES):
                yield from net.deliver(src, d, 4096, (src, d))

        assert run(multicast) == run(deliver)
