"""Integration tests: the whole Gamma machine end to end."""

import pytest

from repro.core import (
    BerdStrategy,
    MagicStrategy,
    MagicTuning,
    RangeStrategy,
)
from repro.gamma import GAMMA_PARAMETERS, GammaMachine
from repro.storage import make_wisconsin
from repro.workload import make_mix

P = 8
INDEXES = {"unique1": False, "unique2": True}


@pytest.fixture(scope="module")
def relation(wisconsin_factory):
    return wisconsin_factory(20_000, correlation="low", seed=21)


@pytest.fixture(scope="module")
def mix():
    return make_mix("low-low", domain=20_000)


def build(relation, strategy):
    placement = strategy.partition(relation, P)
    return GammaMachine(placement, indexes=INDEXES, seed=3)


class TestBasicRuns:
    def test_range_run_completes(self, relation, mix):
        machine = build(relation, RangeStrategy("unique1"))
        result = machine.run(mix, multiprogramming_level=4,
                             measured_queries=60)
        assert result.completed == 60
        assert result.throughput > 0
        assert result.elapsed_seconds > 0

    def test_berd_run_completes(self, relation, mix):
        machine = build(relation, BerdStrategy("unique1", ["unique2"]))
        result = machine.run(mix, multiprogramming_level=4,
                             measured_queries=60)
        assert result.completed == 60
        assert result.throughput > 0

    def test_magic_run_completes(self, relation, mix):
        strategy = MagicStrategy(
            ["unique1", "unique2"],
            tuning=MagicTuning(shape={"unique1": 20, "unique2": 20},
                               mi={"unique1": 2.0, "unique2": 4.0}))
        machine = build(relation, strategy)
        result = machine.run(mix, multiprogramming_level=4,
                             measured_queries=60)
        assert result.completed == 60

    def test_response_times_by_type_populated(self, relation, mix):
        machine = build(relation, RangeStrategy("unique1"))
        result = machine.run(mix, multiprogramming_level=4,
                             measured_queries=80)
        assert set(result.response_time_by_type) == {"QA", "QB"}
        assert all(v > 0 for v in result.response_time_by_type.values())

    def test_utilizations_in_range(self, relation, mix):
        machine = build(relation, RangeStrategy("unique1"))
        result = machine.run(mix, multiprogramming_level=8,
                             measured_queries=80)
        assert 0 < result.cpu_utilization <= 1.0
        assert 0 < result.disk_utilization <= 1.0
        assert 0 <= result.scheduler_cpu_utilization <= 1.0

    def test_invalid_run_args(self, relation, mix):
        machine = build(relation, RangeStrategy("unique1"))
        with pytest.raises(ValueError):
            machine.run(mix, multiprogramming_level=0, measured_queries=10)
        with pytest.raises(ValueError):
            machine.run(mix, multiprogramming_level=1, measured_queries=0)


class TestClosedLoopBehaviour:
    def test_throughput_rises_with_mpl(self, relation, mix):
        """A closed system's throughput grows with MPL before saturation."""
        lo = build(relation, RangeStrategy("unique1")).run(
            mix, multiprogramming_level=1, measured_queries=60)
        hi = build(relation, RangeStrategy("unique1")).run(
            mix, multiprogramming_level=8, measured_queries=60)
        assert hi.throughput > lo.throughput * 1.5

    def test_response_time_grows_with_mpl(self, relation, mix):
        lo = build(relation, RangeStrategy("unique1")).run(
            mix, multiprogramming_level=1, measured_queries=60)
        hi = build(relation, RangeStrategy("unique1")).run(
            mix, multiprogramming_level=16, measured_queries=60)
        assert hi.response_time_mean > lo.response_time_mean

    def test_reproducible_given_seed(self, relation, mix):
        a = build(relation, RangeStrategy("unique1")).run(
            mix, multiprogramming_level=4, measured_queries=50)
        b = build(relation, RangeStrategy("unique1")).run(
            mix, multiprogramming_level=4, measured_queries=50)
        assert a.throughput == b.throughput
        assert a.response_time_mean == b.response_time_mean

    def test_different_seeds_differ(self, relation, mix):
        placement = RangeStrategy("unique1").partition(relation, P)
        a = GammaMachine(placement, indexes=INDEXES, seed=1).run(
            mix, multiprogramming_level=4, measured_queries=50)
        b = GammaMachine(placement, indexes=INDEXES, seed=2).run(
            mix, multiprogramming_level=4, measured_queries=50)
        assert a.throughput != b.throughput


class TestPaperDirectionalResults:
    """Small-scale sanity versions of the paper's headline orderings."""

    def test_multi_attribute_beats_range_at_high_mpl(self, relation, mix):
        range_result = build(relation, RangeStrategy("unique1")).run(
            mix, multiprogramming_level=16, measured_queries=150)
        magic = MagicStrategy(
            ["unique1", "unique2"],
            tuning=MagicTuning(shape={"unique1": 20, "unique2": 20},
                               mi={"unique1": 2.0, "unique2": 4.0}))
        magic_result = build(relation, magic).run(
            mix, multiprogramming_level=16, measured_queries=150)
        assert magic_result.throughput > range_result.throughput

    def test_berd_two_phase_visible_in_message_count(self, relation, mix):
        berd = build(relation, BerdStrategy("unique1", ["unique2"])).run(
            mix, multiprogramming_level=4, measured_queries=100)
        rng = build(relation, RangeStrategy("unique1")).run(
            mix, multiprogramming_level=4, measured_queries=100)
        # BERD pays probe messages for half the workload but sends far
        # fewer select requests than range's full broadcast.
        assert berd.messages_sent < rng.messages_sent
