"""Unit tests for the Table 2 simulation parameters."""

import pytest

from repro.gamma import GAMMA_PARAMETERS, SimulationParameters


class TestTableTwoValues:
    """Pin every value Table 2 lists."""

    def test_disk_parameters(self):
        p = GAMMA_PARAMETERS
        assert p.disk_settle_seconds == 0.002
        assert p.disk_max_latency_seconds == 0.01668
        assert p.disk_transfer_bytes_per_second == 1_800_000.0
        assert p.disk_seek_factor_ms == 0.78
        assert p.page_bytes == 8192
        assert p.dma_instructions_per_page == 4000

    def test_network_parameters(self):
        p = GAMMA_PARAMETERS
        assert p.max_packet_bytes == 8192
        assert p.send_100_bytes_seconds == 0.0006
        assert p.send_8192_bytes_seconds == 0.0056

    def test_cpu_parameters(self):
        p = GAMMA_PARAMETERS
        assert p.cpu_instructions_per_second == 3_000_000.0
        assert p.read_page_instructions == 14_600
        assert p.write_page_instructions == 28_000

    def test_miscellaneous(self):
        p = GAMMA_PARAMETERS
        assert p.tuple_bytes == 208
        assert p.tuples_per_packet == 36
        assert p.tuples_per_page == 36
        assert p.num_processors == 32


class TestDerivedHelpers:
    def test_instructions_to_seconds(self):
        p = GAMMA_PARAMETERS
        assert p.instructions_to_seconds(3_000_000) == pytest.approx(1.0)
        assert p.instructions_to_seconds(14_600) == pytest.approx(14_600 / 3e6)

    def test_seek_square_root_model(self):
        p = GAMMA_PARAMETERS
        assert p.seek_seconds(0) == 0.0
        assert p.seek_seconds(-5) == 0.0
        assert p.seek_seconds(100) == pytest.approx(0.78e-3 * 10)

    def test_page_transfer(self):
        assert GAMMA_PARAMETERS.page_transfer_seconds() == pytest.approx(
            8192 / 1_800_000)

    def test_network_send_reproduces_table_points(self):
        p = GAMMA_PARAMETERS
        assert p.network_send_seconds(100) == pytest.approx(0.0006)
        assert p.network_send_seconds(8192) == pytest.approx(0.0056)

    def test_network_decomposition_consistent(self):
        p = GAMMA_PARAMETERS
        for size in (100, 500, 2080, 8192):
            assert p.network_send_seconds(size) == pytest.approx(
                p.network_latency_seconds()
                + p.network_occupancy_seconds(size))

    def test_network_monotone_in_size(self):
        p = GAMMA_PARAMETERS
        costs = [p.network_send_seconds(n) for n in (1, 100, 1000, 8192)]
        assert costs == sorted(costs)

    def test_network_invalid_size(self):
        with pytest.raises(ValueError):
            GAMMA_PARAMETERS.network_send_seconds(0)

    def test_packets_for_tuples(self):
        p = GAMMA_PARAMETERS
        assert p.packets_for_tuples(0) == 0
        assert p.packets_for_tuples(1) == 1
        assert p.packets_for_tuples(36) == 1
        assert p.packets_for_tuples(37) == 2
        assert p.packets_for_tuples(300) == 9

    def test_with_overrides(self):
        p = GAMMA_PARAMETERS.with_overrides(num_processors=8)
        assert p.num_processors == 8
        assert GAMMA_PARAMETERS.num_processors == 32  # original untouched

    def test_frozen(self):
        with pytest.raises(Exception):
            GAMMA_PARAMETERS.num_processors = 64
