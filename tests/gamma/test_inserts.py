"""Tests for the insert path (write workload extension)."""

import pytest

from repro.core import (
    BerdStrategy,
    HashStrategy,
    MagicStrategy,
    MagicTuning,
    RangeStrategy,
)
from repro.gamma import GammaMachine
from repro.storage import make_wisconsin

INDEXES = {"unique1": False, "unique2": True}
P = 4


@pytest.fixture(scope="module")
def relation():
    return make_wisconsin(10_000, correlation="low", seed=120)


class TestSiteForTuple:
    def test_range_uses_boundaries(self, relation):
        placement = RangeStrategy("unique1").partition(relation, P)
        # A value inside site 0's range must map to site 0.
        hi = placement.fragment(0).min_max("unique1")[1]
        assert placement.site_for_tuple({"unique1": int(hi)}) == 0
        assert placement.site_for_tuple({"unique1": 9_999}) == P - 1

    def test_range_requires_partitioning_attribute(self, relation):
        placement = RangeStrategy("unique1").partition(relation, P)
        with pytest.raises(KeyError):
            placement.site_for_tuple({"unique2": 5})

    def test_hash_default_rule(self, relation):
        placement = HashStrategy("unique1").partition(relation, P)
        site = placement.site_for_tuple({"unique1": 123})
        # Must agree with where the existing tuple 123 lives.
        assert placement.fragment(site).count_in_range(
            "unique1", 123, 123) == 1

    def test_berd_primary_and_aux(self, relation):
        placement = BerdStrategy("unique1", ["unique2"]).partition(
            relation, P)
        home = placement.site_for_tuple({"unique1": 100, "unique2": 5_000})
        assert 0 <= home < P
        aux = placement.aux_site_for("unique2", 5_000)
        assert 0 <= aux < P

    def test_magic_uses_grid_entry(self, relation):
        placement = MagicStrategy(
            ["unique1", "unique2"],
            tuning=MagicTuning(shape={"unique1": 8, "unique2": 8},
                               mi={"unique1": 2.0, "unique2": 2.0}),
        ).partition(relation, P)
        # The computed site must match where the actual tuple lives.
        u1 = int(relation.column("unique1")[17])
        u2 = int(relation.column("unique2")[17])
        site = placement.site_for_tuple({"unique1": u1, "unique2": u2})
        assert placement.fragment(site).count_in_range("unique1", u1, u1) \
            >= 1

    def test_magic_requires_all_dimensions(self, relation):
        placement = MagicStrategy(
            ["unique1", "unique2"],
            tuning=MagicTuning(shape={"unique1": 8, "unique2": 8},
                               mi={"unique1": 2.0, "unique2": 2.0}),
        ).partition(relation, P)
        with pytest.raises(KeyError):
            placement.site_for_tuple({"unique1": 5})


class TestInsertExecution:
    def _machine(self, relation, strategy):
        return GammaMachine(strategy.partition(relation, P),
                            indexes=INDEXES, seed=3)

    def test_range_insert_completes(self, relation):
        machine = self._machine(relation, RangeStrategy("unique1"))
        handle = machine.scheduler.submit_insert(
            "R", {"unique1": 5_000, "unique2": 7_777})
        machine.env.run(until=handle.completion)
        assert handle.sites_used == 1
        assert machine.scheduler.in_flight == 0

    def test_berd_insert_touches_aux_site(self, relation):
        machine = self._machine(
            relation, BerdStrategy("unique1", ["unique2"]))
        handle = machine.scheduler.submit_insert(
            "R", {"unique1": 100, "unique2": 9_000})
        machine.env.run(until=handle.completion)
        # home site (low unique1) and aux site (high unique2) differ.
        assert handle.sites_used == 2

    def test_berd_insert_slower_than_range(self, relation):
        durations = {}
        for name, strategy in (
                ("range", RangeStrategy("unique1")),
                ("berd", BerdStrategy("unique1", ["unique2"]))):
            machine = self._machine(relation, strategy)
            total = 0.0
            for i in range(20):
                start = machine.env.now
                handle = machine.scheduler.submit_insert(
                    "R", {"unique1": i * 37, "unique2": 9_999 - i * 41})
                machine.env.run(until=handle.completion)
                total += machine.env.now - start
            durations[name] = total
        assert durations["berd"] > durations["range"]

    def test_concurrent_inserts_and_selects(self, relation):
        from repro.core import RangePredicate
        machine = self._machine(
            relation, BerdStrategy("unique1", ["unique2"]))
        handles = []
        for i in range(10):
            handles.append(machine.scheduler.submit_insert(
                "R", {"unique1": i * 11, "unique2": i * 13}))
            handles.append(machine.scheduler.submit(
                "R", "QB", RangePredicate("unique2", i * 100,
                                          i * 100 + 9)))
        for handle in handles:
            machine.env.run(until=handle.completion)
        assert machine.scheduler.in_flight == 0
