"""Unit tests for the network interfaces and message delivery."""

import pytest

from repro.des import Environment
from repro.gamma import GAMMA_PARAMETERS, Cpu, Network


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def net(env):
    network = Network(env, GAMMA_PARAMETERS)
    for node in range(3):
        network.attach(node, Cpu(env, GAMMA_PARAMETERS, name=f"cpu{node}"))
    return network


class TestAttachment:
    def test_duplicate_attach_rejected(self, env, net):
        with pytest.raises(ValueError):
            net.attach(0, Cpu(env, GAMMA_PARAMETERS))

    def test_unknown_endpoint_rejected(self, net):
        with pytest.raises(KeyError):
            net.endpoint(99)


class TestDelivery:
    def test_message_lands_in_mailbox(self, env, net):
        def receiver(env):
            item = yield net.endpoint(1).mailbox.get()
            return (item, env.now)

        def sender(env):
            yield from net.deliver(0, 1, 100, "hello")

        r = env.process(receiver(env))
        env.process(sender(env))
        env.run()
        message, when = r.value
        assert message == "hello"
        # End-to-end >= the Table 2 cost for 100 bytes.
        assert when >= GAMMA_PARAMETERS.network_send_seconds(100)

    def test_delivery_charges_both_cpus(self, env, net):
        def sender(env):
            yield from net.deliver(0, 1, 100, "x")

        env.process(sender(env))
        env.run()
        handling = GAMMA_PARAMETERS.instructions_to_seconds(
            GAMMA_PARAMETERS.message_handling_instructions)
        assert net.endpoint(0).cpu.busy_seconds == pytest.approx(handling)
        assert net.endpoint(1).cpu.busy_seconds == pytest.approx(handling)

    def test_nic_serializes_concurrent_sends(self, env, net):
        """Two large packets from one node cannot overlap on its NIC."""
        done = []

        def sender(env, tag):
            yield from net.deliver(0, 1, 8192, tag)
            done.append((tag, env.now))

        env.process(sender(env, "a"))
        env.process(sender(env, "b"))
        env.run()
        occupancy = GAMMA_PARAMETERS.network_occupancy_seconds(8192)
        gap = abs(done[1][1] - done[0][1])
        assert gap >= occupancy * 0.99

    def test_self_delivery_skips_wire(self, env, net):
        def sender(env):
            yield from net.deliver(0, 0, 100, "loop")
            return env.now

        p = env.process(sender(env))
        env.run()
        handling = GAMMA_PARAMETERS.instructions_to_seconds(
            GAMMA_PARAMETERS.message_handling_instructions)
        assert p.value == pytest.approx(handling)
        assert len(net.endpoint(0).mailbox) == 1

    def test_counters(self, env, net):
        def sender(env):
            yield from net.deliver(0, 1, 100, "x")
            yield from net.deliver(0, 2, 8192, "y")

        env.process(sender(env))
        env.run()
        assert net.messages_sent == 2
        assert net.bytes_sent == 8292
        net.reset_stats()
        assert net.messages_sent == 0

    def test_external_delivery_no_receiver_contention(self, env, net):
        def sender(env):
            yield from net.deliver_external(0, 8192)
            return env.now

        p = env.process(sender(env))
        env.run()
        expected = (GAMMA_PARAMETERS.instructions_to_seconds(
                        GAMMA_PARAMETERS.message_handling_instructions)
                    + GAMMA_PARAMETERS.network_send_seconds(8192))
        assert p.value == pytest.approx(expected)
        # No mailbox received anything.
        assert all(len(net.endpoint(i).mailbox) == 0 for i in range(3))

    def test_fire_and_forget_send(self, env, net):
        net.send(0, 1, 100, "async")
        env.run()
        assert len(net.endpoint(1).mailbox) == 1
