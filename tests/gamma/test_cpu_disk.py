"""Unit tests for the CPU module and the elevator disk manager."""

import pytest

from repro.des import Environment
from repro.gamma import GAMMA_PARAMETERS, Cpu, Disk
from repro.gamma.cpu import DMA_PRIORITY


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def cpu(env):
    return Cpu(env, GAMMA_PARAMETERS)


class TestCpu:
    def test_execution_time_matches_mips(self, env, cpu):
        def proc(env):
            yield from cpu.execute(3_000_000)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == pytest.approx(1.0)

    def test_zero_instructions_free(self, env, cpu):
        def proc(env):
            yield from cpu.execute(0)
            return env.now

        # A generator that never yields still needs one scheduling point.
        def wrapper(env):
            yield env.timeout(0)
            yield from cpu.execute(0)
            return env.now

        p = env.process(wrapper(env))
        env.run()
        assert p.value == 0.0

    def test_negative_instructions_rejected(self, env, cpu):
        def proc(env):
            yield from cpu.execute(-5)

        env.process(proc(env))
        with pytest.raises(ValueError):
            env.run()

    def test_fcfs_serialization(self, env, cpu):
        finish = []

        def job(env, tag):
            yield from cpu.execute(300_000)  # 0.1 s
            finish.append((tag, env.now))

        for tag in "ab":
            env.process(job(env, tag))
        env.run()
        assert finish == [("a", pytest.approx(0.1)),
                          ("b", pytest.approx(0.2))]

    def test_dma_jumps_queue(self, env, cpu):
        order = []

        def setup(env):
            env.process(holder(env))
            yield env.timeout(0.01)
            env.process(normal(env))
            env.process(dma(env))

        def holder(env):
            yield from cpu.execute(300_000)
            order.append("holder")

        def normal(env):
            yield from cpu.execute(300_000)
            order.append("normal")

        def dma(env):
            yield from cpu.execute_dma(GAMMA_PARAMETERS.dma_instructions_per_page)
            order.append("dma")

        env.process(setup(env))
        env.run()
        assert order == ["holder", "dma", "normal"]

    def test_busy_seconds_accumulates(self, env, cpu):
        def proc(env):
            yield from cpu.execute(600_000)

        env.process(proc(env))
        env.run()
        assert cpu.busy_seconds == pytest.approx(0.2)

    def test_utilization_and_reset(self, env, cpu):
        def proc(env):
            yield from cpu.execute(3_000_000)

        env.process(proc(env))
        env.run()
        env.run(until=2.0)
        assert cpu.utilization() == pytest.approx(0.5)
        cpu.reset_stats()
        assert cpu.busy_seconds == 0.0


class TestDisk:
    def test_read_takes_positioning_plus_transfer(self, env, cpu):
        disk = Disk(env, GAMMA_PARAMETERS, cpu, seed=1)

        def proc(env):
            yield from disk.read(cylinder=100, num_pages=1)
            return env.now

        p = env.process(proc(env))
        env.run()
        # settle + seek(100) + latency(<=16.68ms) + transfer + DMA
        minimum = (0.002 + GAMMA_PARAMETERS.seek_seconds(100)
                   + GAMMA_PARAMETERS.page_transfer_seconds())
        assert p.value >= minimum
        assert p.value <= minimum + 0.01668 + 0.01

    def test_sequential_at_current_cylinder_skips_positioning(self, env, cpu):
        disk = Disk(env, GAMMA_PARAMETERS, cpu, seed=1)

        def proc(env):
            yield from disk.read(cylinder=50, num_pages=1)
            t_mid = env.now
            yield from disk.read(cylinder=50, num_pages=1, sequential=True)
            return env.now - t_mid

        p = env.process(proc(env))
        env.run()
        expected = (GAMMA_PARAMETERS.page_transfer_seconds()
                    + GAMMA_PARAMETERS.instructions_to_seconds(4000))
        assert p.value == pytest.approx(expected, rel=1e-6)

    def test_multi_page_stream(self, env, cpu):
        disk = Disk(env, GAMMA_PARAMETERS, cpu, seed=1)

        def proc(env):
            yield from disk.read(cylinder=0, num_pages=10, sequential=True)
            return env.now

        p = env.process(proc(env))
        env.run()
        transfer = 10 * GAMMA_PARAMETERS.page_transfer_seconds()
        dma = 10 * GAMMA_PARAMETERS.instructions_to_seconds(4000)
        # Arm starts at cylinder 0 and the read is sequential, so no
        # positioning is charged: exactly transfer + DMA time.
        assert p.value == pytest.approx(transfer + dma)

    def test_dma_interrupts_cpu(self, env, cpu):
        """Each transferred page charges the CPU 4000 instructions."""
        disk = Disk(env, GAMMA_PARAMETERS, cpu, seed=1)

        def proc(env):
            yield from disk.read(cylinder=0, num_pages=5, sequential=True)

        env.process(proc(env))
        env.run()
        assert cpu.busy_seconds == pytest.approx(
            5 * GAMMA_PARAMETERS.instructions_to_seconds(4000))

    def test_elevator_orders_by_cylinder(self, env, cpu):
        disk = Disk(env, GAMMA_PARAMETERS, cpu, seed=1)
        completions = []

        def submit_all(env):
            events = []
            # Occupy the disk, then queue out-of-order cylinders.
            first = disk.submit(cylinder=0, num_pages=1)
            for cyl in (500, 100, 300):
                ev = disk.submit(cylinder=cyl, num_pages=1)
                ev._add_callback(
                    lambda e, c=cyl: completions.append(c))
                events.append(ev)
            yield first
            for ev in events:
                yield ev

        env.process(submit_all(env))
        env.run()
        # Sweeping up from 0: 100, 300, 500.
        assert completions == [100, 300, 500]

    def test_sweep_reverses_at_end(self, env, cpu):
        disk = Disk(env, GAMMA_PARAMETERS, cpu, seed=1)
        completions = []

        def submit_all(env):
            first = disk.submit(cylinder=400, num_pages=1)
            yield env.timeout(0.001)
            events = [disk.submit(cylinder=c, num_pages=1)
                      for c in (600, 200)]
            for c, ev in zip((600, 200), events):
                ev._add_callback(lambda e, c=c: completions.append(c))
            yield first
            for ev in events:
                yield ev

        env.process(submit_all(env))
        env.run()
        # Head at 400 sweeping up: serve 600 first, then reverse to 200.
        assert completions == [600, 200]

    def test_invalid_requests_rejected(self, env, cpu):
        disk = Disk(env, GAMMA_PARAMETERS, cpu, seed=1)
        with pytest.raises(ValueError):
            disk.submit(cylinder=0, num_pages=0)
        with pytest.raises(ValueError):
            disk.submit(cylinder=10_000_000, num_pages=1)

    def test_wait_times_recorded(self, env, cpu):
        disk = Disk(env, GAMMA_PARAMETERS, cpu, seed=1)

        def proc(env):
            a = disk.submit(cylinder=10, num_pages=1)
            b = disk.submit(cylinder=20, num_pages=1)
            yield a
            yield b

        env.process(proc(env))
        env.run()
        assert disk.wait_times.count == 2
        assert disk.requests_served == 2
        # The second request waited for the first's service.
        assert disk.wait_times.maximum > 0
