"""Unit tests for run metrics, including confidence intervals."""

import math

import pytest

from repro.core import RangeStrategy
from repro.des import Environment
from repro.gamma import GammaMachine
from repro.gamma.metrics import RunMetrics, RunResult
from repro.storage import make_wisconsin
from repro.workload import make_mix


@pytest.fixture
def env():
    return Environment()


class TestRunMetrics:
    def test_completion_counting(self, env):
        metrics = RunMetrics(env)
        metrics.record_completion("QA", 0.1)
        metrics.record_completion("QB", 0.2)
        assert metrics.completed_total == 2
        assert metrics.mean_response_time() == pytest.approx(0.15)
        assert metrics.mean_response_time("QA") == pytest.approx(0.1)
        assert metrics.mean_response_time("QZ") == 0.0

    def test_completion_watcher(self, env):
        metrics = RunMetrics(env)
        event = metrics.on_completion_count(2)
        metrics.record_completion("QA", 0.1)
        assert not event.triggered
        metrics.record_completion("QA", 0.1)
        assert event.triggered

    def test_watcher_already_satisfied(self, env):
        metrics = RunMetrics(env)
        metrics.record_completion("QA", 0.1)
        event = metrics.on_completion_count(1)
        assert event.triggered

    def test_window_reset(self, env):
        metrics = RunMetrics(env)
        metrics.record_completion("QA", 0.1)
        env.run(until=10)
        metrics.reset_window()
        assert metrics.completed_window == 0
        assert metrics.throughput() == 0.0
        metrics.record_completion("QA", 0.1)
        env.run(until=20)
        assert metrics.throughput() == pytest.approx(0.1)

    def test_throughput_zero_elapsed(self, env):
        metrics = RunMetrics(env)
        assert metrics.throughput() == 0.0


class TestConfidenceIntervals:
    def test_steady_stream_has_tight_ci(self, env):
        metrics = RunMetrics(env)

        def stream(env):
            for _ in range(200):
                yield env.timeout(1.0)
                metrics.record_completion("QA", 0.1)

        env.process(stream(env))
        env.run()
        ci = metrics.throughput_confidence()
        # Perfectly regular completions: tiny CI relative to 1 q/s.
        assert ci < 0.1

    def test_too_few_completions_nan_ci(self, env):
        # A too-short window must NOT report 0.0 (indistinguishable from
        # a perfectly tight interval): it reports NaN.
        metrics = RunMetrics(env)
        for _ in range(3):
            metrics.record_completion("QA", 0.1)
        env.run(until=10)
        assert math.isnan(metrics.throughput_confidence(batches=10))

    def test_empty_window_nan_ci(self, env):
        metrics = RunMetrics(env)
        assert math.isnan(metrics.throughput_confidence())

    def test_enough_completions_finite_ci(self, env):
        metrics = RunMetrics(env)

        def stream(env):
            for _ in range(20):
                yield env.timeout(1.0)
                metrics.record_completion("QA", 0.1)

        env.process(stream(env))
        env.run()
        ci = metrics.throughput_confidence(batches=10)
        assert math.isfinite(ci)
        assert ci >= 0.0

    def test_invalid_batches(self, env):
        metrics = RunMetrics(env)
        with pytest.raises(ValueError):
            metrics.throughput_confidence(batches=1)

    def test_machine_reports_ci(self):
        relation = make_wisconsin(10_000, correlation="low", seed=70)
        placement = RangeStrategy("unique1").partition(relation, 4)
        machine = GammaMachine(placement,
                               indexes={"unique1": False, "unique2": True},
                               seed=3)
        result = machine.run(make_mix("low-low", domain=10_000),
                             multiprogramming_level=4,
                             measured_queries=150)
        assert result.throughput_ci > 0
        # The CI must be a sane fraction of the estimate.
        assert result.throughput_ci < result.throughput


class TestRunResult:
    def test_str_contains_key_numbers(self):
        result = RunResult(multiprogramming_level=8, throughput=123.4,
                           completed=100, elapsed_seconds=1.0,
                           response_time_mean=0.05,
                           response_time_by_type={"QA": 0.04})
        text = str(result)
        assert "MPL=  8" in text
        assert "123.4" in text
        assert "QA" in text


class TestRunResultRoundTrip:
    """Results cross process (pickle) and artifact (JSON) boundaries."""

    def _result(self, **overrides):
        import math
        fields = dict(multiprogramming_level=8, throughput=123.456789,
                      completed=100, elapsed_seconds=1.25,
                      response_time_mean=0.0521,
                      response_time_by_type={"QA": 0.04, "QB": 0.065},
                      cpu_utilization=0.61, disk_utilization=0.44,
                      scheduler_cpu_utilization=0.08, messages_sent=4200,
                      throughput_ci=3.21)
        fields.update(overrides)
        return RunResult(**fields)

    def test_pickle_lossless(self):
        import pickle
        result = self._result()
        assert pickle.loads(pickle.dumps(result)) == result

    def test_json_dict_lossless(self):
        import json
        result = self._result()
        payload = json.loads(json.dumps(result.to_json_dict()))
        assert RunResult.from_json_dict(payload) == result

    def test_nan_confidence_interval_survives_json(self):
        # Short windows report NaN CIs; NaN != NaN, so check explicitly.
        import json
        import math
        result = self._result(throughput_ci=float("nan"))
        payload = json.loads(json.dumps(result.to_json_dict()))
        restored = RunResult.from_json_dict(payload)
        assert math.isnan(restored.throughput_ci)
        assert restored.throughput == result.throughput

    def test_pickle_preserves_dataclass_type(self):
        import pickle
        restored = pickle.loads(pickle.dumps(self._result()))
        assert isinstance(restored, RunResult)
        assert restored.response_time_by_type == {"QA": 0.04, "QB": 0.065}
