"""Tests for multi-relation machines and composite workloads."""

import pytest

from repro.core import MagicStrategy, MagicTuning, RangePredicate, RangeStrategy
from repro.gamma import GammaMachine
from repro.storage import make_wisconsin
from repro.workload import CompositeSource, make_mix

INDEXES = {"unique1": False, "unique2": True}
P = 8


@pytest.fixture(scope="module")
def machine():
    r = make_wisconsin(10_000, seed=1, name="R")
    s = make_wisconsin(5_000, seed=2, name="S")
    machine = GammaMachine(
        RangeStrategy("unique1").partition(r, P), indexes=INDEXES, seed=1)
    magic = MagicStrategy(
        ["unique1", "unique2"],
        tuning=MagicTuning(shape={"unique1": 8, "unique2": 8},
                           mi={"unique1": 2.0, "unique2": 4.0}))
    machine.add_relation(magic.partition(s, P), INDEXES)
    return machine


class TestMultiRelation:
    def test_both_relations_registered(self, machine):
        assert machine.catalog.entry("R").placement.relation.name == "R"
        assert machine.catalog.entry("S").placement.relation.name == "S"

    def test_extents_do_not_overlap(self, machine):
        r_extent = machine.catalog.entry("R").sites[0].base_extent
        s_extent = machine.catalog.entry("S").sites[0].base_extent
        assert (r_extent.end_page <= s_extent.start_page
                or s_extent.end_page <= r_extent.start_page)

    def test_queries_against_each_relation(self, machine):
        for relation, domain in (("R", 10_000), ("S", 5_000)):
            handle = machine.scheduler.submit(
                relation, "q", RangePredicate("unique1", 0, 99))
            machine.env.run(until=handle.completion)
            assert handle.tuples_returned == 100

    def test_site_count_mismatch_rejected(self, machine):
        other = make_wisconsin(1_000, seed=3, name="T")
        placement = RangeStrategy("unique1").partition(other, P + 1)
        with pytest.raises(ValueError):
            machine.add_relation(placement, INDEXES)

    def test_duplicate_name_rejected(self, machine):
        dup = make_wisconsin(1_000, seed=4, name="R")
        placement = RangeStrategy("unique1").partition(dup, P)
        with pytest.raises(ValueError):
            machine.add_relation(placement, INDEXES)


class TestCompositeSource:
    def test_mixes_relations(self):
        import random
        source = CompositeSource(
            (make_mix("low-low", relation="R", domain=10_000),
             make_mix("low-low", relation="S", domain=5_000)),
            (0.5, 0.5))
        rng = random.Random(0)
        relations = {source(rng)[1] for _ in range(200)}
        assert relations == {"R", "S"}

    def test_weights_respected(self):
        import random
        source = CompositeSource(
            (make_mix("low-low", relation="R"),
             make_mix("low-low", relation="S")),
            (0.9, 0.1))
        rng = random.Random(1)
        r_share = sum(1 for _ in range(2000) if source(rng)[1] == "R") / 2000
        assert 0.85 < r_share < 0.95

    def test_validation(self):
        mix = make_mix("low-low")
        with pytest.raises(ValueError):
            CompositeSource((mix,), (0.5, 0.5))
        with pytest.raises(ValueError):
            CompositeSource((), ())
        with pytest.raises(ValueError):
            CompositeSource((mix,), (0.0,))

    def test_end_to_end_run(self, machine):
        source = CompositeSource(
            (make_mix("low-low", relation="R", domain=10_000),
             make_mix("low-low", relation="S", domain=5_000)),
            (0.6, 0.4))
        result = machine.run(source, multiprogramming_level=4,
                             measured_queries=100)
        assert result.completed == 100
