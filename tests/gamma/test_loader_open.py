"""Tests for the declustering loader and the open-arrival driver."""

import pytest

from repro.core import BerdStrategy, MagicStrategy, MagicTuning, RangeStrategy
from repro.gamma import GammaMachine, OpenArrivalSource, simulate_declustering
from repro.gamma.metrics import RunMetrics
from repro.storage import make_wisconsin
from repro.workload import make_mix

P = 8
INDEXES = {"unique1": False, "unique2": True}


@pytest.fixture(scope="module")
def relation():
    return make_wisconsin(cardinality=10_000, correlation="low", seed=31)


def magic_strategy():
    return MagicStrategy(
        ["unique1", "unique2"],
        tuning=MagicTuning(shape={"unique1": 16, "unique2": 16},
                           mi={"unique1": 2.0, "unique2": 4.0}))


class TestDeclusteringLoader:
    def test_all_strategies_load(self, relation):
        for strategy in (RangeStrategy("unique1"),
                         BerdStrategy("unique1", ["unique2"]),
                         magic_strategy()):
            placement = strategy.partition(relation, P)
            result = simulate_declustering(placement, INDEXES, seed=1)
            assert result.elapsed_seconds > 0
            assert result.pages_written > 0

    def test_magic_pays_two_scans(self, relation):
        range_load = simulate_declustering(
            RangeStrategy("unique1").partition(relation, P), INDEXES, seed=1)
        magic_load = simulate_declustering(
            magic_strategy().partition(relation, P), INDEXES, seed=1)
        assert magic_load.pages_read == 2 * range_load.pages_read
        assert magic_load.elapsed_seconds > 1.3 * range_load.elapsed_seconds

    def test_berd_pays_auxiliary_pass(self, relation):
        range_load = simulate_declustering(
            RangeStrategy("unique1").partition(relation, P), INDEXES, seed=1)
        berd_load = simulate_declustering(
            BerdStrategy("unique1", ["unique2"]).partition(relation, P),
            INDEXES, seed=1)
        assert berd_load.pages_written > range_load.pages_written
        assert berd_load.elapsed_seconds > range_load.elapsed_seconds

    def test_str_rendering(self, relation):
        result = simulate_declustering(
            RangeStrategy("unique1").partition(relation, P), INDEXES, seed=1)
        assert "load" in str(result)
        assert "reads" in str(result)


class TestOpenArrivals:
    def _machine(self, relation):
        placement = RangeStrategy("unique1").partition(relation, P)
        return GammaMachine(placement, indexes=INDEXES, seed=2)

    def test_open_driver_completes_queries(self, relation):
        machine = self._machine(relation)
        mix = make_mix("low-low", domain=10_000)
        driver = OpenArrivalSource(machine.env, machine.scheduler, mix,
                                   machine.metrics,
                                   arrivals_per_second=20.0, seed=3)
        driver.start()
        machine.env.run(until=machine.metrics.on_completion_count(50))
        assert machine.metrics.completed_total >= 50

    def test_underloaded_system_keeps_up(self, relation):
        """At an arrival rate far below capacity, completion rate tracks
        the arrival rate."""
        machine = self._machine(relation)
        mix = make_mix("low-low", domain=10_000)
        driver = OpenArrivalSource(machine.env, machine.scheduler, mix,
                                   machine.metrics,
                                   arrivals_per_second=10.0, seed=4)
        driver.start()
        machine.env.run(until=60.0)
        rate = machine.metrics.completed_total / 60.0
        assert rate == pytest.approx(10.0, rel=0.25)

    def test_invalid_rate_rejected(self, relation):
        machine = self._machine(relation)
        mix = make_mix("low-low", domain=10_000)
        with pytest.raises(ValueError):
            OpenArrivalSource(machine.env, machine.scheduler, mix,
                              machine.metrics, arrivals_per_second=0.0)

    def test_double_start_rejected(self, relation):
        machine = self._machine(relation)
        mix = make_mix("low-low", domain=10_000)
        driver = OpenArrivalSource(machine.env, machine.scheduler, mix,
                                   machine.metrics,
                                   arrivals_per_second=5.0)
        driver.start()
        with pytest.raises(RuntimeError):
            driver.start()
