"""Tests for the LRU buffer pool and the explicit-buffer machine mode."""

import pytest

from repro.core import BerdStrategy, RangeStrategy
from repro.gamma import GAMMA_PARAMETERS, BufferPool, GammaMachine
from repro.storage import make_wisconsin
from repro.workload import make_mix

INDEXES = {"unique1": False, "unique2": True}


class TestBufferPoolUnit:
    def test_miss_then_hit(self):
        pool = BufferPool(4)
        assert not pool.access("p1")
        assert pool.access("p1")
        assert pool.hits == 1
        assert pool.misses == 1

    def test_lru_eviction_order(self):
        pool = BufferPool(2)
        pool.access("a")
        pool.access("b")
        pool.access("a")      # refresh a
        pool.access("c")      # evicts b (least recent)
        assert pool.contains("a")
        assert not pool.contains("b")
        assert pool.contains("c")
        assert pool.evictions == 1

    def test_capacity_respected(self):
        pool = BufferPool(3)
        for i in range(10):
            pool.access(i)
        assert len(pool) == 3

    def test_capacity_one_thrashes_but_never_overfills(self):
        """The degenerate single-frame pool: every distinct access
        evicts the previous page, and re-access of the same page hits."""
        pool = BufferPool(1)
        assert not pool.access("a")
        assert pool.access("a")          # still resident
        assert not pool.access("b")      # evicts a
        assert not pool.contains("a")
        assert len(pool) == 1
        assert pool.evictions == 1
        assert pool.access("b")
        assert pool.hits == 2 and pool.misses == 2

    def test_capacity_one_rejected_below_one(self):
        with pytest.raises(ValueError):
            BufferPool(0)
        with pytest.raises(ValueError):
            BufferPool(-3)

    def test_admit_while_full_evicts_exactly_one(self):
        """Admission into a full pool is an atomic swap: one eviction
        per admission, residency never exceeds capacity."""
        pool = BufferPool(3)
        for page in ("a", "b", "c"):
            pool.access(page)
        assert len(pool) == 3 and pool.evictions == 0
        for i, page in enumerate(("d", "e", "f", "g"), start=1):
            pool.access(page)
            assert len(pool) == 3
            assert pool.evictions == i
        # Lifetime ledger stays conserved through the churn.
        assert pool.admitted_total - pool.evicted_total == len(pool)

    def test_admit_while_full_evicts_the_lru_not_the_mru(self):
        pool = BufferPool(2)
        pool.access("old")
        pool.access("new")
        pool.access("incoming")          # full: must evict "old"
        assert pool.contains("new")
        assert pool.contains("incoming")
        assert not pool.contains("old")

    def test_hit_on_full_pool_does_not_evict(self):
        pool = BufferPool(2)
        pool.access("a")
        pool.access("b")
        assert pool.access("a")          # hit while full
        assert pool.evictions == 0
        assert len(pool) == 2

    def test_contains_does_not_touch(self):
        pool = BufferPool(2)
        pool.access("a")
        pool.access("b")
        pool.contains("a")     # must NOT refresh recency
        pool.access("c")       # evicts a
        assert not pool.contains("a")

    def test_hit_ratio(self):
        pool = BufferPool(10)
        pool.access("x")
        pool.access("x")
        pool.access("x")
        pool.access("y")
        assert pool.hit_ratio == pytest.approx(0.5)

    def test_hit_ratio_empty(self):
        assert BufferPool(1).hit_ratio == 0.0

    def test_pin_range(self):
        pool = BufferPool(10)
        admitted = pool.pin_range(["a", "b", "c"])
        assert admitted == 3
        assert pool.hits == 0  # warm-up does not skew stats
        assert pool.access("a")

    def test_reset_stats_keeps_contents(self):
        pool = BufferPool(4)
        pool.access("a")
        pool.reset_stats()
        assert pool.misses == 0
        assert pool.contains("a")

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BufferPool(0)


class TestBufferedMachine:
    @pytest.fixture(scope="class")
    def relation(self):
        return make_wisconsin(20_000, correlation="low", seed=50)

    def _run(self, relation, pool_pages, strategy=None):
        strategy = strategy or RangeStrategy("unique1")
        placement = strategy.partition(relation, 8)
        params = GAMMA_PARAMETERS.with_overrides(
            buffer_pool_pages=pool_pages)
        machine = GammaMachine(placement, indexes=INDEXES, params=params,
                               seed=6)
        result = machine.run(make_mix("low-low", domain=20_000),
                             multiprogramming_level=4,
                             measured_queries=120)
        return machine, result

    def test_pools_created_per_node(self, relation):
        machine, _ = self._run(relation, pool_pages=64)
        assert all(n.buffer_pool is not None for n in machine.nodes)

    def test_no_pool_by_default(self, relation):
        placement = RangeStrategy("unique1").partition(relation, 8)
        machine = GammaMachine(placement, indexes=INDEXES, seed=6)
        assert all(n.buffer_pool is None for n in machine.nodes)

    def test_hot_index_pages_get_cached(self, relation):
        machine, _ = self._run(relation, pool_pages=128)
        ratios = [n.buffer_pool.hit_ratio for n in machine.nodes]
        assert sum(ratios) / len(ratios) > 0.3

    def test_bigger_pool_higher_throughput(self, relation):
        _, small = self._run(relation, pool_pages=8)
        _, large = self._run(relation, pool_pages=512)
        assert large.throughput > small.throughput

    def test_berd_probes_work_buffered(self, relation):
        machine, result = self._run(
            relation, pool_pages=128,
            strategy=BerdStrategy("unique1", ["unique2"]))
        assert result.completed == 120
        probes = sum(n.operator_manager.probes_executed
                     for n in machine.nodes)
        assert probes > 0

    def test_results_still_exact(self, relation):
        """The buffer pool changes timing, never answers."""
        from repro.core import RangePredicate
        placement = RangeStrategy("unique1").partition(relation, 8)
        params = GAMMA_PARAMETERS.with_overrides(buffer_pool_pages=64)
        machine = GammaMachine(placement, indexes=INDEXES, params=params,
                               seed=6)
        handle = machine.scheduler.submit(
            "R", "Q", RangePredicate("unique1", 100, 299))
        machine.env.run(until=handle.completion)
        assert handle.tuples_returned == 200
