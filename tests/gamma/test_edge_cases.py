"""Edge-case tests across the machine: empty results, domain edges,
hash broadcasting, tiny machines."""

import pytest

from repro.core import (
    HashStrategy,
    MagicStrategy,
    MagicTuning,
    RangePredicate,
    RangeStrategy,
)
from repro.gamma import GammaMachine
from repro.storage import make_wisconsin
from repro.workload import make_mix

INDEXES = {"unique1": False, "unique2": True}


class TestEmptyAndEdgePredicates:
    @pytest.fixture(scope="class")
    def machine(self):
        relation = make_wisconsin(5_000, correlation="identical", seed=110)
        strategy = MagicStrategy(
            ["unique1", "unique2"],
            tuning=MagicTuning(shape={"unique1": 10, "unique2": 10},
                               mi={"unique1": 2.0, "unique2": 2.0}))
        placement = strategy.partition(relation, 4)
        return GammaMachine(placement, indexes=INDEXES, seed=2)

    def test_magic_empty_target_sites_complete(self, machine):
        """With identical attributes, off-diagonal regions are empty;
        a query whose covered entries hold no tuples completes without
        running any select."""
        placement = machine.catalog.entry("R").placement
        # Find a predicate routed to zero sites, if pruning allows one.
        decision = placement.route(RangePredicate("unique1", 0, 0))
        handle = machine.scheduler.submit(
            "R", "edge", RangePredicate("unique1", 0, 0))
        machine.env.run(until=handle.completion)
        assert handle.tuples_returned == 1
        assert machine.scheduler.in_flight == 0

    def test_full_domain_predicate(self, machine):
        handle = machine.scheduler.submit(
            "R", "all", RangePredicate("unique2", 0, 4_999))
        machine.env.run(until=handle.completion)
        assert handle.tuples_returned == 5_000

    def test_predicate_beyond_domain(self, machine):
        handle = machine.scheduler.submit(
            "R", "none", RangePredicate("unique2", 1_000_000, 2_000_000))
        machine.env.run(until=handle.completion)
        assert handle.tuples_returned == 0

    def test_boundary_values(self, machine):
        for value in (0, 4_999):
            handle = machine.scheduler.submit(
                "R", "pt", RangePredicate.equals("unique1", value))
            machine.env.run(until=handle.completion)
            assert handle.tuples_returned == 1


class TestHashOnTheMachine:
    def test_hash_equality_single_site(self):
        relation = make_wisconsin(5_000, correlation="low", seed=111)
        placement = HashStrategy("unique1").partition(relation, 4)
        machine = GammaMachine(placement, indexes=INDEXES, seed=2)
        handle = machine.scheduler.submit(
            "R", "eq", RangePredicate.equals("unique1", 42))
        machine.env.run(until=handle.completion)
        assert handle.tuples_returned == 1
        assert handle.sites_used == 1

    def test_hash_range_broadcasts_and_answers(self):
        relation = make_wisconsin(5_000, correlation="low", seed=111)
        placement = HashStrategy("unique1").partition(relation, 4)
        machine = GammaMachine(placement, indexes=INDEXES, seed=2)
        handle = machine.scheduler.submit(
            "R", "rng", RangePredicate("unique1", 100, 199))
        machine.env.run(until=handle.completion)
        assert handle.tuples_returned == 100
        assert handle.sites_used == 4


class TestTinyMachines:
    def test_single_processor_machine(self):
        relation = make_wisconsin(2_000, correlation="low", seed=112)
        placement = RangeStrategy("unique1").partition(relation, 1)
        machine = GammaMachine(placement, indexes=INDEXES, seed=2)
        result = machine.run(make_mix("low-low", domain=2_000),
                             multiprogramming_level=2,
                             measured_queries=40)
        assert result.completed == 40

    def test_mpl_larger_than_machine(self):
        relation = make_wisconsin(2_000, correlation="low", seed=112)
        placement = RangeStrategy("unique1").partition(relation, 2)
        machine = GammaMachine(placement, indexes=INDEXES, seed=2)
        result = machine.run(make_mix("low-low", domain=2_000),
                             multiprogramming_level=16,
                             measured_queries=40)
        assert result.completed == 40
        assert result.throughput > 0
