"""Check / CheckGroup primitives and the markdown report renderer."""

from repro.validation import Check, CheckGroup, render_report


class TestCheck:
    def test_status_strings(self):
        assert Check("a", True).status == "PASS"
        assert Check("a", False).status == "FAIL"

    def test_frozen(self):
        import dataclasses
        import pytest
        with pytest.raises(dataclasses.FrozenInstanceError):
            Check("a", True).passed = False


class TestCheckGroup:
    def test_add_coerces_truthiness(self):
        group = CheckGroup("g")
        check = group.add("x", 1, "detail")
        assert check.passed is True
        assert group.checks == [check]

    def test_passed_and_failures(self):
        group = CheckGroup("g")
        group.add("ok", True)
        assert group.passed
        bad = group.add("bad", False)
        assert not group.passed
        assert group.failures == [bad]

    def test_empty_group_passes(self):
        assert CheckGroup("g").passed


class TestRenderReport:
    def test_all_pass_verdict(self):
        group = CheckGroup("Trends", note="context line")
        group.add("winner", True, "magic tops")
        report = render_report([group])
        assert "# Conformance report" in report
        assert "**PASS** -- 1/1 checks passed across 1 sections." in report
        assert "## [x] Trends" in report
        assert "context line" in report
        assert "| winner | PASS | magic tops |" in report

    def test_failure_verdict_and_marker(self):
        group = CheckGroup("Oracle")
        group.add("a", True)
        group.add("b", False, "off by 10x")
        report = render_report([group], title="Nightly")
        assert "# Nightly" in report
        assert "**FAIL** -- 1/2 checks passed" in report
        assert "## [ ] Oracle" in report

    def test_pipes_escaped_in_detail(self):
        group = CheckGroup("g")
        group.add("c", True, "a|b")
        assert "a\\|b" in render_report([group])
