"""InvariantChecker: unit conservation laws, zero perturbation, and
detection of a deliberately broken machine."""

import pytest

from repro.core import RangeStrategy
from repro.experiments.config import FIGURES
from repro.experiments.plan import compile_point, execute_run
from repro.gamma import GammaMachine
from repro.validation import InvariantChecker, InvariantViolation

INDEXES = {"unique1": False, "unique2": True}


class _FakePool:
    def __init__(self, admitted, evicted, resident, capacity=8):
        self.admitted_total = admitted
        self.evicted_total = evicted
        self._resident = resident
        self.capacity = capacity

    def __len__(self):
        return self._resident


class TestUnitInvariants:
    def test_clock_never_steps_backwards(self):
        checker = InvariantChecker()
        checker.on_event(when=2.0, now=1.0)  # forward: fine
        with pytest.raises(InvariantViolation) as err:
            checker.on_event(when=0.5, now=1.0)
        assert err.value.invariant == "clock.monotone"
        assert err.value.context["event_time"] == 0.5

    def test_double_issue_raises(self):
        checker = InvariantChecker()
        checker.on_query_issued(1, "QA", 0.0)
        with pytest.raises(InvariantViolation):
            checker.on_query_issued(1, "QA", 1.0)

    def test_termination_without_issue_raises(self):
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation) as err:
            checker.on_query_terminated(7, 1.0)
        assert "never issued" in str(err.value)

    def test_double_termination_raises(self):
        checker = InvariantChecker()
        checker.on_query_issued(1, "QA", 0.0)
        checker.on_query_terminated(1, 1.0)
        with pytest.raises(InvariantViolation) as err:
            checker.on_query_terminated(1, 2.0)
        assert "terminated twice" in str(err.value)

    def test_delivery_without_send_raises(self):
        checker = InvariantChecker()
        checker.on_message_sent(0, 1)
        checker.on_message_delivered(1)  # balanced
        with pytest.raises(InvariantViolation):
            checker.on_message_delivered(1)

    def test_unbalanced_queries_fail_finalize(self):
        checker = InvariantChecker()
        checker.on_query_issued(1, "QA", 0.0)
        checker.on_query_issued(2, "QA", 0.0)
        checker.on_query_terminated(1, 1.0)
        with pytest.raises(InvariantViolation) as err:
            checker.finalize()
        assert err.value.context == {"issued": 2, "terminated": 1,
                                     "in_flight": 0, "time": 0.0}

    def test_in_flight_queries_balance(self):
        checker = InvariantChecker()
        checker.on_query_issued(1, "QA", 0.0)
        checker.on_query_issued(2, "QA", 0.0)
        checker.on_query_terminated(1, 1.0)
        checker.watch_in_flight(lambda: 1)
        checker.finalize()  # 2 issued == 1 terminated + 1 in flight

    def test_overbusy_resource_fails_finalize(self):
        checker = InvariantChecker()
        checker.begin_window(0.0)
        checker.watch_resource("cpu", lambda: 1.0)  # busy 1s in a 0s window
        with pytest.raises(InvariantViolation) as err:
            checker.finalize()
        assert err.value.invariant == "resource.busy_time"
        assert err.value.context["resource"] == "cpu"

    def test_buffer_ledger_must_balance(self):
        checker = InvariantChecker()
        checker.watch_buffer("b", _FakePool(admitted=5, evicted=1,
                                            resident=3))
        with pytest.raises(InvariantViolation) as err:
            checker.finalize()
        assert err.value.invariant == "buffer.conservation"

    def test_buffer_over_capacity(self):
        checker = InvariantChecker()
        checker.watch_buffer("b", _FakePool(admitted=9, evicted=0,
                                            resident=9, capacity=8))
        with pytest.raises(InvariantViolation) as err:
            checker.finalize()
        assert err.value.invariant == "buffer.capacity"

    def test_healthy_finalize_passes(self):
        checker = InvariantChecker()
        checker.begin_window(0.0)
        checker.on_query_issued(1, "QA", 0.0)
        checker.on_query_terminated(1, 1.0)
        checker.on_message_sent(0, 1)
        checker.on_message_delivered(1)
        checker.watch_resource("cpu", lambda: 0.0)
        checker.watch_buffer("b", _FakePool(admitted=4, evicted=1,
                                            resident=3))
        checker.finalize()
        assert checker.violations == []
        assert checker.total_checks > 0

    def test_collect_mode_accumulates(self):
        checker = InvariantChecker(raise_on_violation=False)
        checker.on_query_terminated(1, 0.0)
        checker.on_query_terminated(1, 1.0)
        assert len(checker.violations) == 2
        summary = checker.summary()
        assert summary["total_checks"] == checker.total_checks
        assert [v["invariant"] for v in summary["violations"]] == \
            ["query.termination", "query.termination"]
        assert summary["queries_terminated"] == 1

    def test_violation_message_carries_context(self):
        err = InvariantViolation("a.b", "broken", {"x": 1, "time": 2.5})
        assert str(err) == "[a.b] broken (time=2.5, x=1)"
        assert err.invariant == "a.b"


class TestZeroPerturbation:
    """A checked run must be bit-identical to an unchecked one."""

    @pytest.mark.parametrize("figure", sorted(FIGURES))
    def test_every_figure_config(self, figure):
        config = FIGURES[figure]
        planned = compile_point(config, config.strategies[0], 4,
                                cardinality=1200, num_sites=4,
                                measured_queries=12, seed=13)
        plain = execute_run(planned.spec, planned.params, config=config)
        checked = execute_run(planned.spec, planned.params, config=config,
                              check_invariants=True)
        assert plain == checked


class TestBrokenMachineDetected:
    """A machine that loses a completion must fail its run."""

    def test_dropped_termination_raises(self, tiny_relation, tiny_mix):
        placement = RangeStrategy("unique1").partition(tiny_relation, 4)
        machine = GammaMachine(placement, indexes=INDEXES, seed=5,
                               invariants=InvariantChecker())
        scheduler = machine.scheduler
        original = scheduler._finish
        state = {"dropped": False}

        def lossy_finish(handle):
            if not state["dropped"]:
                # Complete the query back to its terminal but "forget"
                # the termination bookkeeping -- the bug class the
                # checker exists to catch.
                state["dropped"] = True
                del scheduler._queries[handle.query_id]
                handle.completion.succeed(handle)
                return
            original(handle)

        scheduler._finish = lossy_finish
        with pytest.raises(InvariantViolation) as err:
            machine.run(tiny_mix, multiprogramming_level=2,
                        measured_queries=20)
        assert err.value.invariant == "query.termination"
        assert state["dropped"]

    def test_healthy_machine_run_is_clean(self, tiny_relation, tiny_mix):
        import dataclasses

        from repro.gamma import GAMMA_PARAMETERS
        placement = RangeStrategy("unique1").partition(tiny_relation, 4)
        checker = InvariantChecker()
        # Buffer pools are off by default; enable them so the buffer
        # ledger laws are exercised too.
        params = dataclasses.replace(GAMMA_PARAMETERS,
                                     buffer_pool_pages=64)
        machine = GammaMachine(placement, indexes=INDEXES, seed=5,
                               params=params, invariants=checker)
        result = machine.run(tiny_mix, multiprogramming_level=2,
                             measured_queries=20)
        assert result.completed == 20
        assert checker.violations == []
        # Every law was actually exercised, not vacuously skipped.
        for law in ("clock.monotone", "query.termination",
                    "messages.conservation", "resource.busy_time",
                    "buffer.conservation"):
            assert checker.checks.get(law, 0) > 0, law
