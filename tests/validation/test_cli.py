"""repro-validate CLI: argument handling and the offline path.

Live-mode coverage (which simulates a whole tiny figure) lives in the
tier-2 conformance suite (``pytest -m conformance``).
"""

import pytest

from repro.experiments.config import FIGURES
from repro.experiments.results_io import save_figure_json
from repro.experiments.runner import FigureResult
from repro.gamma import RunResult
from repro.validation.cli import build_parser, main


def _run(mpl, throughput):
    return RunResult(multiprogramming_level=mpl, throughput=throughput,
                     completed=100, elapsed_seconds=100.0 / throughput,
                     response_time_mean=mpl / throughput)


def _saved_figure(tmp_path, series, num_sites=4):
    result = FigureResult(config=FIGURES["8a"], cardinality=5000,
                          num_sites=num_sites, measured_queries=100,
                          series={s: [_run(m, t) for m, t in pts]
                                  for s, pts in series.items()})
    path = tmp_path / "fig8a.json"
    save_figure_json(result, str(path))
    return str(path)


CONFORMING = {
    "magic": [(1, 30.0), (8, 200.0), (24, 470.0)],
    "berd": [(1, 28.0), (8, 170.0), (24, 320.0)],
    "range": [(1, 29.0), (8, 150.0), (24, 230.0)],
}


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["--figure", "8a"])
        assert args.figure == "8a"
        assert args.cardinality == 8000
        assert args.num_sites == 16
        assert args.jobs == 1
        assert not args.oracles

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--figure", "99z"])

    def test_no_inputs_is_usage_error(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()


class TestOfflineValidation:
    def test_conforming_results_pass(self, tmp_path, capsys):
        path = _saved_figure(tmp_path, CONFORMING)
        report_path = tmp_path / "report.md"
        code = main([path, "--no-cost-model", "--out", str(report_path)])
        assert code == 0
        report = report_path.read_text()
        assert report.startswith("# Conformance report")
        assert "**PASS**" in report
        assert f"offline {path}" in report
        # The same report was printed to stdout.
        assert "**PASS**" in capsys.readouterr().out

    def test_nonconforming_results_fail(self, tmp_path, capsys):
        # Range partitioning wins: the paper's figure-8a claim is broken.
        series = dict(CONFORMING,
                      range=[(1, 29.0), (8, 300.0), (24, 600.0)])
        code = main([_saved_figure(tmp_path, series), "--no-cost-model"])
        assert code == 1
        assert "**FAIL**" in capsys.readouterr().out

    def test_cost_model_requires_mpl1(self, tmp_path, capsys):
        # Without an MPL=1 point the oracle reports, and fails, the
        # missing series rather than passing vacuously.
        series = {s: pts[1:] for s, pts in CONFORMING.items()}
        code = main([_saved_figure(tmp_path, series)])
        assert code == 1
        assert "mpl1-series" in capsys.readouterr().out
