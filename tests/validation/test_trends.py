"""TrendSpec evaluation against synthetic figure series."""

from repro.experiments.config import FIGURES
from repro.experiments.runner import FigureResult
from repro.gamma import RunResult
from repro.validation import TREND_SPECS, TrendSpec, evaluate_trends


def _run(mpl, throughput):
    return RunResult(multiprogramming_level=mpl, throughput=throughput,
                     completed=100, elapsed_seconds=100.0 / throughput,
                     response_time_mean=mpl / throughput)


def _figure(series, num_sites=32, figure="8a"):
    return FigureResult(config=FIGURES[figure], cardinality=10_000,
                        num_sites=num_sites, measured_queries=100,
                        series={s: [_run(m, t) for m, t in pts]
                                for s, pts in series.items()})


GOOD_8A = {
    "magic": [(1, 30.0), (8, 200.0), (24, 470.0)],
    "berd": [(1, 28.0), (8, 170.0), (24, 320.0)],
    "range": [(1, 29.0), (8, 150.0), (24, 230.0)],
}


class TestSpecRegistry:
    def test_every_figure_has_a_spec(self):
        assert set(TREND_SPECS) == set(FIGURES)

    def test_specs_derive_from_expectations(self):
        spec = TREND_SPECS["8a"]
        expected = FIGURES["8a"].expected
        assert spec.order == expected.order
        assert spec.min_final_ratio == expected.min_ratio


class TestEvaluateTrends:
    def test_conforming_series_passes(self):
        group = evaluate_trends(_figure(GOOD_8A))
        assert group.passed, [str(c) for c in group.failures]
        names = [c.name for c in group.checks]
        assert "winner=magic" in names
        assert "ordering" in names
        assert "gap" in names
        assert "monotone[magic]" in names

    def test_wrong_winner_fails(self):
        series = dict(GOOD_8A, magic=[(1, 30.0), (8, 140.0), (24, 200.0)])
        group = evaluate_trends(_figure(series))
        failed = {c.name for c in group.failures}
        assert "winner=magic" in failed

    def test_ordering_relaxed_on_small_machines(self):
        # BERD below range: wrong complete order, but at 4 sites only
        # the winner and gap are asserted.
        series = dict(GOOD_8A, berd=[(1, 20.0), (8, 100.0), (24, 180.0)])
        group = evaluate_trends(_figure(series, num_sites=4))
        ordering = next(c for c in group.checks if c.name == "ordering")
        assert ordering.passed
        assert "not asserted at 4 sites" in ordering.detail
        # The same series on a paper-size machine fails the ordering.
        group = evaluate_trends(_figure(series, num_sites=32))
        assert not next(c for c in group.checks
                        if c.name == "ordering").passed

    def test_gap_bounds(self):
        spec = TrendSpec(figure="8a", order=("magic", "berd", "range"),
                         min_final_ratio=2.0)
        group = evaluate_trends(_figure(GOOD_8A), spec)  # ratio ~1.47
        assert not next(c for c in group.checks if c.name == "gap").passed

    def test_pre_saturation_drop_fails_monotonicity(self):
        series = dict(GOOD_8A,
                      range=[(1, 29.0), (8, 100.0), (16, 60.0),
                             (24, 230.0)])
        group = evaluate_trends(_figure(series))
        mono = next(c for c in group.checks if c.name == "monotone[range]")
        assert not mono.passed
        assert "drop before saturation" in mono.detail

    def test_post_peak_decline_allowed(self):
        # Thrashing past saturation is expected; only the climb must be
        # monotone.
        series = dict(GOOD_8A,
                      magic=[(1, 30.0), (8, 200.0), (24, 470.0),
                             (32, 380.0)])
        group = evaluate_trends(_figure(series))
        assert next(c for c in group.checks
                    if c.name == "monotone[magic]").passed

    def test_winner_asserted_at_every_high_mpl(self):
        # The winner dips below a rival at MPL 16 even though it tops
        # the final point: the series-wide check catches it.
        series = {
            "magic": [(1, 30.0), (8, 200.0), (16, 100.0), (24, 470.0)],
            "berd": [(1, 28.0), (8, 170.0), (16, 250.0), (24, 320.0)],
            "range": [(1, 29.0), (8, 150.0), (16, 180.0), (24, 230.0)],
        }
        group = evaluate_trends(_figure(series))
        assert not next(c for c in group.checks
                        if c.name == "winner=magic").passed

    def test_missing_strategies_fail_fast(self):
        group = evaluate_trends(_figure({"magic": [(1, 30.0)]}))
        assert not group.passed
        assert group.checks[0].name == "series"
