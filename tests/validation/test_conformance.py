"""Tier-2 paper-conformance suite (``pytest -m conformance``).

These tests simulate whole tiny figures and run the differential
oracles, so they take tens of seconds; tier-1 excludes them via the
default ``-m "not conformance"`` addopts.  The configuration mirrors
the CI ``conformance-smoke`` job and the ``repro-validate`` defaults:
8000 tuples on 16 processors is the smallest machine on which the
paper's figure-8a ordering emerges.
"""

import pytest

from repro.experiments.config import FIGURES
from repro.experiments.results_io import load_figure_json, save_figure_json
from repro.experiments.runner import run_experiment
from repro.validation import (
    cost_model_oracle,
    degenerate_single_site_oracle,
    evaluate_trends,
    one_dimensional_magic_oracle,
    scaling_oracle,
)
from repro.validation.cli import main

pytestmark = pytest.mark.conformance


@pytest.fixture(scope="module")
def tiny_8a():
    """Figure 8a at the smallest paper-conforming scale, fully checked."""
    return run_experiment(FIGURES["8a"], cardinality=8000, num_sites=16,
                          measured_queries=60, mpls=(1, 8, 24), seed=13,
                          check_invariants=True)


class TestFigureConformance:
    def test_trends_match_paper(self, tiny_8a):
        group = evaluate_trends(tiny_8a)
        assert group.passed, [str(c.name) for c in group.failures]

    def test_cost_model_agrees_at_mpl1(self, tiny_8a):
        group = cost_model_oracle(tiny_8a)
        assert group.passed, [c.detail for c in group.failures]
        # All six (strategy, query type) pairs were compared.
        assert len(group.checks) == 6

    def test_offline_revalidation_round_trip(self, tiny_8a, tmp_path):
        """A saved artifact validates identically long after the run."""
        path = tmp_path / "fig8a.json"
        save_figure_json(tiny_8a, str(path))
        reloaded = load_figure_json(str(path))
        assert evaluate_trends(reloaded).passed
        assert cost_model_oracle(reloaded).passed

    def test_cli_end_to_end_offline(self, tiny_8a, tmp_path, capsys):
        path = tmp_path / "fig8a.json"
        save_figure_json(tiny_8a, str(path))
        report = tmp_path / "report.md"
        assert main([str(path), "--out", str(report)]) == 0
        assert "**PASS**" in report.read_text()
        capsys.readouterr()


class TestDifferentialOracles:
    def test_single_processor_degeneracy(self):
        group = degenerate_single_site_oracle()
        assert group.passed, [c.detail for c in group.failures]

    def test_one_dimensional_magic_is_range(self):
        group = one_dimensional_magic_oracle()
        assert group.passed, [c.detail for c in group.failures]

    def test_cardinality_scaling(self):
        group = scaling_oracle()
        assert group.passed, [c.detail for c in group.failures]
