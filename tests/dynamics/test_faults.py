"""Fault plans, the fault controller, and machine runs under failure."""

import pytest

from repro.core import RangeStrategy
from repro.des import Environment
from repro.dynamics import FaultController, FaultPlan, SiteFailure
from repro.gamma import GAMMA_PARAMETERS, GammaMachine
from repro.gamma.messages import OperatorAbort, SelectRequest
from repro.storage import make_wisconsin
from repro.validation.invariants import InvariantChecker
from repro.workload import make_mix

INDEXES = {"unique1": False, "unique2": True}


class TestFaultPlan:
    def test_seeded_is_deterministic(self):
        a = FaultPlan.seeded(7, 32, failures=3, fail_at=1.0, spread=0.5)
        b = FaultPlan.seeded(7, 32, failures=3, fail_at=1.0, spread=0.5)
        assert a == b
        c = FaultPlan.seeded(8, 32, failures=3, fail_at=1.0, spread=0.5)
        assert a != c

    def test_seeded_victims_are_distinct_and_in_range(self):
        plan = FaultPlan.seeded(3, 16, failures=5)
        sites = [f.site for f in plan.failures]
        assert len(set(sites)) == 5
        assert all(0 <= s < 16 for s in sites)

    def test_recovery_must_follow_failure(self):
        with pytest.raises(ValueError):
            SiteFailure(site=0, at=1.0, recover_at=1.0)
        with pytest.raises(ValueError):
            SiteFailure(site=0, at=1.0, recover_at=0.5)

    def test_json_round_trip(self):
        plan = FaultPlan.seeded(11, 32, failures=2, fail_at=2.0,
                                recovery_seconds=0.5)
        assert FaultPlan.from_json_dict(plan.to_json_dict()) == plan

    def test_round_trip_without_recovery(self):
        plan = FaultPlan.seeded(11, 32, fail_at=2.0)
        assert plan.failures[0].recover_at is None
        assert FaultPlan.from_json_dict(plan.to_json_dict()) == plan


class TestFaultController:
    def test_timeline_flips_sites_down_and_up(self):
        env = Environment()
        plan = FaultPlan(failures=(SiteFailure(site=3, at=1.0,
                                               recover_at=2.0),))
        controller = FaultController(env, plan)
        controller.start()
        observed = []

        def sampler(env):
            yield env.timeout(1.5)
            observed.append(controller.is_down(3))
            yield env.timeout(1.0)
            observed.append(controller.is_down(3))

        env.process(sampler(env))
        env.run()
        assert observed == [True, False]
        assert controller.stats()["failures_injected"] == 1
        assert controller.stats()["recoveries"] == 1

    def test_abort_notice_reaches_scheduler_after_detection(self):
        env = Environment()
        plan = FaultPlan(failures=(SiteFailure(site=1, at=0.0),),
                         detection_seconds=0.25)
        controller = FaultController(env, plan)
        inbox = []
        controller.bind_scheduler(inbox.append)
        controller.start()
        request = SelectRequest(query_id=42, site=1, relation="R",
                                attribute="unique1", clustered_index=True,
                                matches=1, reply_to=0)
        controller.abort_request(request, 1)
        env.run()
        assert env.now == pytest.approx(0.25)
        assert inbox == [OperatorAbort(query_id=42, site=1, kind="select")]
        assert controller.aborts_sent == 1


class TestMachineUnderFailure:
    def _machine(self, plan, num_sites=8, cardinality=2000):
        relation = make_wisconsin(cardinality, seed=5)
        placement = RangeStrategy("unique1").partition(relation, num_sites)
        return GammaMachine(placement, indexes=INDEXES,
                            params=GAMMA_PARAMETERS, seed=5,
                            fault_plan=plan,
                            invariants=InvariantChecker())

    def test_permanent_failure_degrades_but_completes(self):
        plan = FaultPlan(failures=(SiteFailure(site=2, at=0.05),))
        machine = self._machine(plan)
        mix = make_mix("low-low", domain=2000)
        result = machine.run(mix, 4, measured_queries=40)
        assert result.completed >= 40
        stats = machine.faults.stats()
        assert stats["failures_injected"] == 1
        assert stats["aborts_sent"] > 0
        assert stats["degraded_queries"] > 0
        assert stats["retries"] == 0  # nothing to retry: never recovers

    def test_recovery_enables_retries(self):
        # Detection is slower than the outage, so every abort settles
        # after the site is back up: the retry path must fire.
        plan = FaultPlan(failures=(SiteFailure(site=2, at=0.05,
                                               recover_at=0.15),),
                         detection_seconds=0.2)
        machine = self._machine(plan)
        mix = make_mix("low-low", domain=2000)
        result = machine.run(mix, 4, measured_queries=40)
        assert result.completed >= 40
        assert machine.faults.retries > 0

    def test_static_run_has_no_fault_controller(self):
        relation = make_wisconsin(500, seed=5)
        placement = RangeStrategy("unique1").partition(relation, 4)
        machine = GammaMachine(placement, indexes=INDEXES,
                               params=GAMMA_PARAMETERS, seed=5)
        assert machine.faults is None
