"""The results-v2 ``dynamics`` key: presence, replayability, and
backward compatibility with older files."""

import pytest

from repro.dynamics import FaultPlan, run_dynamics
from repro.experiments.results_io import figure_from_dict, figure_to_dict


@pytest.fixture(scope="module")
def tiny_result():
    return run_dynamics("8a", strategies=("range",),
                        scenarios=("failure",), cardinality=2000,
                        num_sites=8, multiprogramming_level=4,
                        measured_queries=25)


def test_dynamics_key_round_trips(tiny_result):
    payload = figure_to_dict(tiny_result)
    assert "dynamics" in payload
    loaded = figure_from_dict(payload)
    assert loaded.dynamics == tiny_result.dynamics


def test_fault_seed_and_plan_are_replayable(tiny_result):
    payload = figure_to_dict(tiny_result)
    failure = payload["dynamics"]["per_strategy"]["range"]["failure"]
    assert failure["fault_seed"] == payload["dynamics"]["fault_seed"]
    plan = FaultPlan.from_json_dict(failure["fault_plan"])
    assert plan.seed == failure["fault_seed"]
    assert len(plan.failures) == 1
    assert 0 <= plan.failures[0].site < 8


def test_older_files_without_dynamics_still_load(tiny_result):
    payload = figure_to_dict(tiny_result)
    del payload["dynamics"]
    loaded = figure_from_dict(payload)
    assert loaded.dynamics is None
    assert loaded.series["range"][0].throughput == \
        tiny_result.series["range"][0].throughput


def test_latency_payload_rides_along(tiny_result):
    """The fault run's sketches land next to the baseline's."""
    assert tiny_result.latency is not None
    assert set(tiny_result.latency["points"]) == {"range", "range+fault"}
