"""Online inserts and live grid-directory maintenance."""

import random

import numpy as np
import pytest

from repro.core import MagicStrategy, MagicTuning
from repro.dynamics import MutationSource, OnlineGridMaintainer
from repro.storage import make_wisconsin
from repro.workload import make_mix

ATTRS = ("unique1", "unique2")


def magic_placement(cardinality=2000, num_sites=8, shape=8, seed=3):
    relation = make_wisconsin(cardinality, seed=seed)
    strategy = MagicStrategy(
        ATTRS, tuning=MagicTuning(shape={a: shape for a in ATTRS},
                                  mi={a: 4.0 for a in ATTRS}))
    return strategy.partition(relation, num_sites)


class TestMutationSource:
    def test_rejects_bad_parameters(self):
        mix = make_mix("low-low", domain=100)
        with pytest.raises(ValueError):
            MutationSource(mix, -0.1, attributes=ATTRS, domain=100)
        with pytest.raises(ValueError):
            MutationSource(mix, 1.5, attributes=ATTRS, domain=100)
        with pytest.raises(ValueError):
            MutationSource(mix, 0.5, attributes=ATTRS, domain=0)
        with pytest.raises(ValueError):
            MutationSource(mix, 0.5, attributes=(), domain=100)
        with pytest.raises(ValueError):
            MutationSource(mix, 0.5, attributes=ATTRS, domain=100,
                           hot_span=0.0)

    def test_fraction_zero_is_the_base_mix(self):
        mix = make_mix("low-low", domain=100)
        source = MutationSource(mix, 0.0, attributes=ATTRS, domain=100)
        rng = random.Random(1)
        for _ in range(50):
            query_type, relation, predicate = source(rng)
            assert query_type in ("QA", "QB")
        assert source.inserts_issued == 0

    def test_fraction_one_is_all_inserts(self):
        mix = make_mix("low-low", domain=100)
        source = MutationSource(mix, 1.0, attributes=ATTRS, domain=100)
        rng = random.Random(1)
        for _ in range(50):
            query_type, relation, values = source(rng)
            assert query_type == "INSERT"
            assert relation == "R"
            assert set(values) == set(ATTRS)
            assert all(0 <= v < 100 for v in values.values())
        assert source.inserts_issued == 50

    def test_hot_span_concentrates_inserts(self):
        mix = make_mix("low-low", domain=10_000)
        source = MutationSource(mix, 1.0, attributes=ATTRS, domain=10_000,
                                hot_span=0.01)
        rng = random.Random(2)
        for _ in range(100):
            _, _, values = source(rng)
            assert all(v < 100 for v in values.values())

    def test_notifies_the_maintainer(self):
        placement = magic_placement()
        maintainer = OnlineGridMaintainer(placement, capacity=10**9)
        mix = make_mix("low-low", domain=2000)
        source = MutationSource(mix, 1.0, attributes=ATTRS, domain=2000,
                                maintainer=maintainer)
        rng = random.Random(3)
        for _ in range(20):
            source(rng)
        assert maintainer.inserts_seen == 20


class TestOnlineGridMaintainer:
    def test_initial_counts_match_the_directory(self):
        placement = magic_placement()
        maintainer = OnlineGridMaintainer(placement)
        assert int(maintainer._counts.sum()) == placement.relation.cardinality

    def test_overflow_triggers_a_split(self):
        placement = magic_placement()
        old_shape = tuple(placement.directory.shape)
        old_directory = placement.directory
        maintainer = OnlineGridMaintainer(
            placement, capacity=int(old_directory.counts.max()) + 2)
        # Hammer one grid cell until it overflows.
        for _ in range(200):
            maintainer.note_insert({"unique1": 1, "unique2": 1})
            if maintainer.splits_performed:
                break
        assert maintainer.splits_performed >= 1
        new_directory = placement.directory
        assert new_directory is not old_directory
        assert sum(new_directory.shape) == sum(old_shape) + \
            maintainer.splits_performed

    def test_split_preserves_total_population(self):
        placement = magic_placement()
        maintainer = OnlineGridMaintainer(
            placement, capacity=int(placement.directory.counts.max()) + 2)
        inserts = 0
        while maintainer.splits_performed < 2:
            maintainer.note_insert({"unique1": 2, "unique2": 2})
            inserts += 1
            assert inserts < 1000, "splits never triggered"
        expected = placement.relation.cardinality + inserts
        assert int(maintainer._counts.sum()) == expected
        assert int(placement.directory.counts.sum()) == expected

    def test_split_moves_no_tuples(self):
        """A directory split refines routing only; assignments persist."""
        placement = magic_placement()
        before = {s.site: len(s.rows) for s in placement.fragments}
        maintainer = OnlineGridMaintainer(
            placement, capacity=int(placement.directory.counts.max()) + 2)
        while maintainer.splits_performed < 1:
            maintainer.note_insert({"unique1": 3, "unique2": 3})
        after = {s.site: len(s.rows) for s in placement.fragments}
        assert before == after

    def test_routing_still_resolves_after_splits(self):
        placement = magic_placement()
        maintainer = OnlineGridMaintainer(
            placement, capacity=int(placement.directory.counts.max()) + 2)
        while maintainer.splits_performed < 2:
            maintainer.note_insert({"unique1": 4, "unique2": 4})
        for value in (0, 500, 1999):
            site = placement.site_for_tuple({"unique1": value,
                                             "unique2": value})
            assert 0 <= site < placement.num_sites

    def test_new_slice_inherits_parent_assignment(self):
        placement = magic_placement()
        old_assignment = placement.directory.assignment.copy()
        maintainer = OnlineGridMaintainer(
            placement, capacity=int(placement.directory.counts.max()) + 2)
        while maintainer.splits_performed < 1:
            maintainer.note_insert({"unique1": 5, "unique2": 5})
        new_assignment = placement.directory.assignment
        # The split duplicated one row or column of the assignment, so
        # the set of (site, count-of-entries-mod-duplication) is intact:
        # every site owning entries before still owns entries after.
        assert set(np.unique(new_assignment)) == set(
            np.unique(old_assignment))

    def test_missing_attribute_raises(self):
        placement = magic_placement()
        maintainer = OnlineGridMaintainer(placement)
        with pytest.raises(KeyError):
            maintainer.note_insert({"unique1": 1})

    def test_capacity_validation(self):
        placement = magic_placement()
        with pytest.raises(ValueError):
            OnlineGridMaintainer(placement, capacity=1)
