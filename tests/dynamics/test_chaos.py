"""Chaos harness: every figure config survives a mid-run site failure
under the invariant checker -- and a deliberately leaky retry path is
caught by it.

The full figure sweep is in the slow conformance tier; tier-1 keeps a
representative single-figure run so the fault machinery is exercised on
every test run.
"""

import pytest

from repro.core import RangeStrategy
from repro.dynamics import FaultPlan, SiteFailure, run_dynamics
from repro.experiments.config import FIGURES
from repro.gamma import GAMMA_PARAMETERS, GammaMachine
from repro.gamma.scheduler import QueryScheduler
from repro.storage import make_wisconsin
from repro.validation.invariants import InvariantChecker, InvariantViolation
from repro.workload import make_mix

INDEXES = {"unique1": False, "unique2": True}


def test_all_strategies_survive_failure_under_invariants():
    """The tier-1 acceptance run: all four strategies, one figure,
    failure plus recovery, conservation laws checked throughout."""
    result = run_dynamics("8a", scenarios=("failure",),
                          cardinality=3000, num_sites=16,
                          multiprogramming_level=4, measured_queries=30,
                          check_invariants=True)
    per_strategy = result.dynamics["per_strategy"]
    assert set(per_strategy) == {"range", "hash", "berd", "magic"}
    for name, payload in per_strategy.items():
        failure = payload["failure"]
        assert failure["stats"]["failures_injected"] == 1
        # The latency observatory reported a p99 for every query type.
        assert failure["p99_seconds"], name
        assert failure["p99_degradation"], name


@pytest.mark.conformance
@pytest.mark.parametrize("figure", sorted(FIGURES))
def test_every_figure_config_survives_failure(figure):
    result = run_dynamics(figure, scenarios=("failure",),
                          cardinality=3000, num_sites=16,
                          multiprogramming_level=4, measured_queries=25,
                          check_invariants=True)
    for name, payload in result.dynamics["per_strategy"].items():
        assert payload["failure"]["throughput"] > 0, (figure, name)


@pytest.mark.conformance
def test_rescale_and_churn_survive_invariants():
    result = run_dynamics("8a", scenarios=("rescale", "churn"),
                          cardinality=4000, num_sites=16, grow_to=32,
                          multiprogramming_level=4, measured_queries=25,
                          check_invariants=True)
    for name, payload in result.dynamics["per_strategy"].items():
        assert payload["rescale"]["throughput_after"] > 0, name
        assert payload["churn"]["throughput"] > 0, name


def _leaky_settle_failed(self, handle):
    """A plausible-looking but WRONG settle: it finishes the query for
    the caller *and* re-dispatches the retry, resurrecting the handle.
    When the retried work completes, the query terminates a second
    time -- the exactly-once termination invariant must catch it."""
    faults = self.faults
    recovered = [s for s in handle.failed_sites if not faults.is_down(s)]
    handle.degraded = True
    self._finish(handle)
    if recovered and handle.retry_ctx is not None and not handle.retried:
        handle.retried = True
        self._queries[handle.query_id] = handle  # the leak
        handle.failed_sites = []
        handle.pending_done = len(recovered)
        self.env.process(self._retry_selects(handle, recovered))


def test_invariant_checker_catches_leaky_retry(monkeypatch):
    monkeypatch.setattr(QueryScheduler, "_settle_failed",
                        _leaky_settle_failed)
    # Detection outlasts the outage, so every abort settles against a
    # recovered site and the (buggy) retry path always fires.
    plan = FaultPlan(failures=(SiteFailure(site=2, at=0.05,
                                           recover_at=0.15),),
                     detection_seconds=0.2)
    relation = make_wisconsin(2000, seed=5)
    placement = RangeStrategy("unique1").partition(relation, 8)
    machine = GammaMachine(placement, indexes=INDEXES,
                           params=GAMMA_PARAMETERS, seed=5,
                           fault_plan=plan, invariants=InvariantChecker())
    mix = make_mix("low-low", domain=2000)
    with pytest.raises(InvariantViolation, match="terminated twice"):
        machine.run(mix, 4, measured_queries=60)
