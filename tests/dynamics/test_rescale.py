"""Unit tests for the elastic rescalers and their reports."""

import numpy as np
import pytest

from repro.core import (
    BerdStrategy,
    HashStrategy,
    MagicStrategy,
    MagicTuning,
    RangePredicate,
    RangeStrategy,
)
from repro.dynamics import RescaleReport, rescale_placement
from repro.dynamics.rescale import placement_sites
from repro.storage import make_wisconsin

ATTR_A = "unique1"
ATTR_B = "unique2"


def build(name: str):
    if name == "range":
        return RangeStrategy(ATTR_A)
    if name == "hash":
        return HashStrategy(ATTR_A)
    if name == "berd":
        return BerdStrategy(ATTR_A, [ATTR_B])
    return MagicStrategy(
        (ATTR_A, ATTR_B),
        tuning=MagicTuning(shape={ATTR_A: 62, ATTR_B: 61},
                           mi={ATTR_A: 8.0, ATTR_B: 8.0}))


class TestRescaleReport:
    def test_json_round_trip(self):
        report = RescaleReport(strategy="range", style="split",
                               old_sites=32, new_sites=64,
                               total_tuples=1000, tuples_moved=400,
                               movement_bound=500)
        assert RescaleReport.from_json_dict(report.to_json_dict()) == report

    def test_bound_violation_refused_at_construction(self):
        with pytest.raises(AssertionError):
            RescaleReport(strategy="range", style="split",
                          old_sites=32, new_sites=64,
                          total_tuples=1000, tuples_moved=600,
                          movement_bound=500)

    def test_fractions(self):
        report = RescaleReport(strategy="hash", style="linear-hash",
                               old_sites=4, new_sites=8,
                               total_tuples=100, tuples_moved=50,
                               movement_bound=100)
        assert report.moved_fraction == pytest.approx(0.5)
        assert report.naive_fraction == pytest.approx(1 - 1 / 8)


class TestRescaleErrors:
    def test_shrink_is_rejected(self):
        placement = build("range").partition(make_wisconsin(500, seed=1), 8)
        with pytest.raises(ValueError):
            rescale_placement(placement, 8)
        with pytest.raises(ValueError):
            rescale_placement(placement, 4)

    def test_hash_growth_capped_at_double(self):
        placement = build("hash").partition(make_wisconsin(500, seed=1), 8)
        with pytest.raises(ValueError):
            rescale_placement(placement, 17)

    def test_chained_hash_rescale_unsupported(self):
        placement = build("hash").partition(make_wisconsin(500, seed=1), 8)
        rescaled, _ = rescale_placement(placement, 16)
        with pytest.raises(NotImplementedError):
            rescale_placement(rescaled, 32)

    def test_chained_range_rescale_works(self):
        placement = build("range").partition(make_wisconsin(2000, seed=1), 8)
        once, _ = rescale_placement(placement, 12)
        twice, report = rescale_placement(once, 16)
        assert twice.num_sites == 16
        sites = placement_sites(twice)
        assert set(int(s) for s in np.unique(sites)) == set(range(16))
        assert report.tuples_moved <= report.movement_bound


@pytest.mark.parametrize("name", ["range", "hash", "berd", "magic"])
class TestDoublingAcceptance:
    """The ISSUE acceptance bar: 32 -> 64 moves at most 55% of tuples."""

    def test_doubling_moves_at_most_55_percent(self, name):
        relation = make_wisconsin(8000, seed=13)
        placement = build(name).partition(relation, 32)
        rescaled, report = rescale_placement(placement, 64)
        assert report.old_sites == 32 and report.new_sites == 64
        assert report.moved_fraction <= 0.55
        assert report.tuples_moved <= report.movement_bound
        # Every new site actually receives data.
        sites = placement_sites(rescaled)
        assert len(np.unique(sites)) == 64

    def test_point_routing_after_doubling(self, name):
        relation = make_wisconsin(4000, seed=13)
        placement = build(name).partition(relation, 32)
        rescaled, _ = rescale_placement(placement, 64)
        values = relation.column(ATTR_A)
        for row in range(0, 4000, 400):
            value = int(values[row])
            owner = rescaled.site_for_tuple({ATTR_A: value, ATTR_B: value})
            decision = rescaled.route(RangePredicate(ATTR_A, value, value))
            assert owner in decision.target_sites


class TestBerdSecondaryAfterRescale:
    def test_aux_routing_points_at_true_homes(self):
        relation = make_wisconsin(3000, seed=2)
        placement = build("berd").partition(relation, 8)
        rescaled, _ = rescale_placement(placement, 16)
        sites = placement_sites(rescaled)
        b_values = relation.column(ATTR_B)
        for row in range(0, 3000, 300):
            value = int(b_values[row])
            decision = rescaled.route(RangePredicate(ATTR_B, value, value))
            assert int(sites[row]) in decision.target_sites
