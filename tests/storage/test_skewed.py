"""Tests for the skewed-data generator (extension)."""

import numpy as np
import pytest

from repro.storage import make_skewed_wisconsin, measured_rank_correlation


class TestSkewedGenerator:
    def test_cardinality_and_domain(self):
        rel = make_skewed_wisconsin(5_000, skew=2.0, seed=1)
        assert rel.cardinality == 5_000
        u1 = rel.column("unique1")
        assert u1.min() >= 0
        assert u1.max() < 5_000

    def test_skew_one_is_roughly_uniform(self):
        rel = make_skewed_wisconsin(20_000, skew=1.0, seed=2)
        u1 = rel.column("unique1")
        below_half = float((u1 < 10_000).mean())
        assert below_half == pytest.approx(0.5, abs=0.03)

    def test_higher_skew_concentrates_low_values(self):
        fractions = []
        for skew in (1.0, 2.0, 4.0):
            rel = make_skewed_wisconsin(20_000, skew=skew, seed=3)
            u1 = rel.column("unique1")
            fractions.append(float((u1 < 4_000).mean()))
        assert fractions == sorted(fractions)
        assert fractions[-1] > 2 * fractions[0]

    def test_duplicates_allowed(self):
        rel = make_skewed_wisconsin(10_000, skew=3.0, seed=4)
        u1 = rel.column("unique1")
        assert len(np.unique(u1)) < len(u1)

    def test_marginals_match_between_attributes(self):
        rel = make_skewed_wisconsin(20_000, skew=2.5, seed=5)
        u1 = np.sort(rel.column("unique1"))
        u2 = np.sort(rel.column("unique2"))
        assert np.array_equal(u1, u2)  # same multiset by construction

    def test_correlation_control(self):
        low = make_skewed_wisconsin(20_000, skew=2.0, correlation="low",
                                    seed=6)
        high = make_skewed_wisconsin(20_000, skew=2.0, correlation="high",
                                     seed=6)
        rho_low = measured_rank_correlation(low.column("unique1"),
                                            low.column("unique2"))
        rho_high = measured_rank_correlation(high.column("unique1"),
                                             high.column("unique2"))
        assert abs(rho_low) < 0.1
        assert rho_high > 0.95

    def test_deterministic(self):
        a = make_skewed_wisconsin(1_000, skew=2.0, seed=7)
        b = make_skewed_wisconsin(1_000, skew=2.0, seed=7)
        assert np.array_equal(a.column("unique1"), b.column("unique1"))

    def test_validation(self):
        with pytest.raises(ValueError):
            make_skewed_wisconsin(0)
        with pytest.raises(ValueError):
            make_skewed_wisconsin(100, skew=0.5)

    def test_derived_columns_consistent(self):
        rel = make_skewed_wisconsin(1_000, skew=2.0, seed=8)
        assert np.array_equal(rel.column("two"), rel.column("unique1") % 2)
