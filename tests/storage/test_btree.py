"""Unit tests for the B+-tree cost model and Yao's formula."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage import BTreeIndex, yao_pages_touched


class TestYao:
    def test_zero_picks(self):
        assert yao_pages_touched(1000, 100, 0) == 0.0

    def test_one_page(self):
        assert yao_pages_touched(36, 1, 5) == 1.0

    def test_all_tuples_touch_all_pages(self):
        assert yao_pages_touched(360, 10, 360) == pytest.approx(10.0)

    def test_single_pick_touches_one_page(self):
        assert yao_pages_touched(3600, 100, 1) == pytest.approx(1.0)

    def test_sparse_picks_nearly_one_page_each(self):
        # 30 picks from 100k tuples on ~2778 pages: overlap is negligible.
        touched = yao_pages_touched(100_000, 2778, 30)
        assert 29.0 < touched <= 30.0

    def test_monotone_in_picks(self):
        prev = 0.0
        for picks in (1, 5, 10, 50, 100):
            cur = yao_pages_touched(1000, 50, picks)
            assert cur >= prev
            prev = cur

    @given(
        pages=st.integers(min_value=1, max_value=500),
        per_page=st.integers(min_value=1, max_value=100),
        picks=st.integers(min_value=0, max_value=1000),
    )
    def test_bounds_property(self, pages, per_page, picks):
        tuples = pages * per_page
        touched = yao_pages_touched(tuples, pages, picks)
        assert 0.0 <= touched <= pages + 1e-9
        if picks > 0:
            assert touched <= picks + 1e-9 or touched <= pages + 1e-9


class TestBTreeShape:
    def test_empty_index(self):
        idx = BTreeIndex(0)
        assert idx.height == 0
        assert idx.data_pages == 0
        assert idx.index_pages_total == 0

    def test_clustered_leaves_are_data_pages(self):
        idx = BTreeIndex(3600, tuples_per_page=36, clustered=True)
        assert idx.data_pages == 100
        assert idx.leaf_pages == 100

    def test_nonclustered_leaf_count(self):
        idx = BTreeIndex(3600, clustered=False, fanout=455)
        assert idx.leaf_pages == math.ceil(3600 / 455)

    def test_internal_levels_growth(self):
        # One leaf -> no internal levels.
        assert BTreeIndex(30, clustered=True).internal_levels == 0
        # 100 leaves with fanout 10 -> 2 internal levels.
        idx = BTreeIndex(1000, tuples_per_page=10, clustered=True, fanout=10)
        assert idx.leaf_pages == 100
        assert idx.internal_levels == 2

    def test_index_pages_total_nonclustered(self):
        idx = BTreeIndex(1000, tuples_per_page=10, clustered=False, fanout=10)
        # 100 leaves + 10 + 1 internal pages.
        assert idx.index_pages_total == 111

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            BTreeIndex(-1)
        with pytest.raises(ValueError):
            BTreeIndex(10, fanout=1)
        with pytest.raises(ValueError):
            BTreeIndex(10, cached_levels=-1)


class TestAccessPlans:
    def test_empty_fragment_lookup_costs_one_read(self):
        plan = BTreeIndex(0).range_lookup(10)
        assert plan.total_reads == 1
        assert plan.tuples_examined == 0

    def test_zero_match_lookup_still_costs_descent(self):
        idx = BTreeIndex(3125, clustered=False)
        plan = idx.range_lookup(0)
        assert plan.total_reads >= 1
        assert plan.tuples_examined == 0

    def test_clustered_range_streams_sequentially(self):
        idx = BTreeIndex(3125, tuples_per_page=36, clustered=True)
        plan = idx.range_lookup(300)
        assert plan.sequential_reads == math.ceil(300 / 36)
        assert plan.tuples_examined == 300

    def test_nonclustered_fetches_random_pages(self):
        idx = BTreeIndex(3125, tuples_per_page=36, clustered=False)
        plan = idx.range_lookup(30)
        assert plan.sequential_reads == 0
        # ~30 scattered data pages + leaf + descent.
        assert 25 <= plan.random_reads <= 35

    def test_single_tuple_nonclustered(self):
        idx = BTreeIndex(3125, tuples_per_page=36, clustered=False)
        plan = idx.range_lookup(1)
        # leaf read + 1 data page (root cached, shallow tree).
        assert 2 <= plan.total_reads <= 4
        assert plan.tuples_examined == 1

    def test_matches_clamped_to_keys(self):
        idx = BTreeIndex(10, clustered=True)
        plan = idx.range_lookup(1000)
        assert plan.tuples_examined == 10

    def test_negative_matches_rejected(self):
        with pytest.raises(ValueError):
            BTreeIndex(10).range_lookup(-1)

    def test_paper_workload_costs_comparable(self):
        """§6: the 'low' pair (and the 'moderate' pair) were chosen to have
        nearly identical costs.  Check the I/O counts are in the same
        ballpark for one 32-way fragment of the 100k relation."""
        frag_keys = 100_000 // 32
        nonclustered = BTreeIndex(frag_keys, clustered=False)
        clustered = BTreeIndex(frag_keys, clustered=True)
        low_a = nonclustered.range_lookup(1).total_reads
        low_b = clustered.range_lookup(10).total_reads
        assert abs(low_a - low_b) <= 3
