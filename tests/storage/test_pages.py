"""Unit tests for disk geometry, extents and the layout allocator."""

import pytest

from repro.storage import DiskGeometry, DiskLayout, Extent, pages_for_tuples


class TestDiskGeometry:
    def test_total_pages(self):
        geo = DiskGeometry(cylinders=10, pages_per_cylinder=5)
        assert geo.total_pages == 50

    def test_cylinder_of(self):
        geo = DiskGeometry(cylinders=10, pages_per_cylinder=5)
        assert geo.cylinder_of(0) == 0
        assert geo.cylinder_of(4) == 0
        assert geo.cylinder_of(5) == 1
        assert geo.cylinder_of(49) == 9

    def test_cylinder_of_out_of_range(self):
        geo = DiskGeometry(cylinders=10, pages_per_cylinder=5)
        with pytest.raises(ValueError):
            geo.cylinder_of(50)
        with pytest.raises(ValueError):
            geo.cylinder_of(-1)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            DiskGeometry(cylinders=0)


class TestExtent:
    def test_physical_page_mapping(self):
        ext = Extent(start_page=100, num_pages=10)
        assert ext.physical_page(0) == 100
        assert ext.physical_page(9) == 109
        assert ext.end_page == 110

    def test_logical_out_of_range(self):
        ext = Extent(0, 3)
        with pytest.raises(IndexError):
            ext.physical_page(3)

    def test_negative_fields_rejected(self):
        with pytest.raises(ValueError):
            Extent(-1, 5)


class TestDiskLayout:
    def test_sequential_allocation(self):
        layout = DiskLayout(DiskGeometry(cylinders=10, pages_per_cylinder=10))
        e1 = layout.allocate(30)
        e2 = layout.allocate(20)
        assert e1.start_page == 0
        assert e2.start_page == 30
        assert layout.allocated_pages == 50
        assert layout.free_pages == 50

    def test_overflow_rejected(self):
        layout = DiskLayout(DiskGeometry(cylinders=1, pages_per_cylinder=10))
        layout.allocate(8)
        with pytest.raises(RuntimeError):
            layout.allocate(3)

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            DiskLayout().allocate(-1)

    def test_cylinder_of_logical(self):
        layout = DiskLayout(DiskGeometry(cylinders=10, pages_per_cylinder=10))
        layout.allocate(15)               # pages 0..14
        ext = layout.allocate(20)         # pages 15..34
        assert layout.cylinder_of_logical(ext, 0) == 1   # page 15
        assert layout.cylinder_of_logical(ext, 10) == 2  # page 25

    def test_extents_snapshot(self):
        layout = DiskLayout()
        layout.allocate(5)
        layout.allocate(7)
        assert [e.num_pages for e in layout.extents] == [5, 7]


class TestPagesForTuples:
    def test_exact_fit(self):
        assert pages_for_tuples(72, 36) == 2

    def test_round_up(self):
        assert pages_for_tuples(73, 36) == 3
        assert pages_for_tuples(1, 36) == 1

    def test_zero_tuples(self):
        assert pages_for_tuples(0, 36) == 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            pages_for_tuples(-1, 36)
        with pytest.raises(ValueError):
            pages_for_tuples(10, 0)
