"""Unit tests for the Wisconsin benchmark generator and correlation control."""

import numpy as np
import pytest

from repro.storage import (
    HIGH_CORRELATION_WINDOW,
    WISCONSIN_TUPLE_BYTES,
    correlated_permutation,
    make_wisconsin,
    measured_rank_correlation,
    wisconsin_schema,
)


class TestSchema:
    def test_tuple_is_208_bytes(self):
        assert wisconsin_schema().tuple_size_bytes == WISCONSIN_TUPLE_BYTES

    def test_thirteen_integer_attributes(self):
        ints = [a for a in wisconsin_schema() if a.kind == "int"]
        assert len(ints) == 13


class TestGenerator:
    def test_default_cardinality(self):
        r = make_wisconsin(cardinality=1000)
        assert r.cardinality == 1000

    def test_unique1_unique2_are_permutations(self):
        r = make_wisconsin(cardinality=500, correlation="low", seed=1)
        for col in ("unique1", "unique2"):
            assert sorted(r.column(col)) == list(range(500))

    def test_deterministic_given_seed(self):
        a = make_wisconsin(cardinality=200, seed=9)
        b = make_wisconsin(cardinality=200, seed=9)
        assert np.array_equal(a.column("unique1"), b.column("unique1"))
        assert np.array_equal(a.column("unique2"), b.column("unique2"))

    def test_different_seeds_differ(self):
        a = make_wisconsin(cardinality=200, seed=1)
        b = make_wisconsin(cardinality=200, seed=2)
        assert not np.array_equal(a.column("unique1"), b.column("unique1"))

    def test_derived_columns_consistent(self):
        r = make_wisconsin(cardinality=300)
        u1 = r.column("unique1")
        assert np.array_equal(r.column("two"), u1 % 2)
        assert np.array_equal(r.column("one_percent"), u1 % 100)
        assert np.array_equal(r.column("unique3"), u1)

    def test_strings_optional(self):
        r = make_wisconsin(cardinality=10, with_strings=True)
        assert r.column("stringu1")[0] == "A" * 52
        bare = make_wisconsin(cardinality=10)
        with pytest.raises(KeyError):
            bare.column("stringu1")

    def test_bad_cardinality_rejected(self):
        with pytest.raises(ValueError):
            make_wisconsin(cardinality=0)


class TestCorrelation:
    def test_low_correlation_near_zero(self):
        r = make_wisconsin(cardinality=20_000, correlation="low", seed=3)
        rho = measured_rank_correlation(r.column("unique1"), r.column("unique2"))
        assert abs(rho) < 0.05

    def test_high_correlation_near_one(self):
        r = make_wisconsin(cardinality=20_000, correlation="high", seed=3)
        rho = measured_rank_correlation(r.column("unique1"), r.column("unique2"))
        assert rho > 0.999

    def test_high_correlation_bounded_displacement(self):
        r = make_wisconsin(cardinality=10_000, correlation="high", seed=5)
        delta = np.abs(r.column("unique1") - r.column("unique2"))
        assert delta.max() < HIGH_CORRELATION_WINDOW

    def test_identical_correlation(self):
        r = make_wisconsin(cardinality=1000, correlation="identical")
        assert np.array_equal(r.column("unique1"), r.column("unique2"))

    def test_float_rho_monotone(self):
        rng_card = 20_000
        measured = []
        for rho in (0.0, 0.5, 0.9, 1.0):
            r = make_wisconsin(cardinality=rng_card, correlation=rho, seed=11)
            measured.append(measured_rank_correlation(
                r.column("unique1"), r.column("unique2")))
        assert measured == sorted(measured)
        assert measured[-1] == pytest.approx(1.0)

    def test_float_rho_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            make_wisconsin(cardinality=10, correlation=1.5)

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            make_wisconsin(cardinality=10, correlation="medium")

    def test_correlated_permutation_is_permutation(self):
        rng = np.random.default_rng(0)
        base = rng.permutation(5000)
        for spec in ("low", "high", "identical", 0.7):
            perm = correlated_permutation(base, spec, rng)
            assert sorted(perm) == list(range(5000))

    def test_measured_correlation_edge_cases(self):
        assert measured_rank_correlation(np.array([1]), np.array([2])) == 1.0
        with pytest.raises(ValueError):
            measured_rank_correlation(np.arange(3), np.arange(4))
