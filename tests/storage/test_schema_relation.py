"""Unit tests for schemas, relations and fragments."""

import numpy as np
import pytest

from repro.storage import Attribute, Fragment, Relation, Schema, union_fragments
from repro.storage.schema import INT, STRING


def small_schema():
    return Schema([
        Attribute("a", INT, 4),
        Attribute("b", INT, 4),
        Attribute("pad", STRING, 200),
    ])


def small_relation(n=100):
    schema = small_schema()
    return Relation("r", schema, {
        "a": np.arange(n, dtype=np.int64),
        "b": np.arange(n, dtype=np.int64)[::-1].copy(),
    })


class TestSchema:
    def test_tuple_size_is_sum_of_widths(self):
        assert small_schema().tuple_size_bytes == 208

    def test_index_of(self):
        s = small_schema()
        assert s.index_of("b") == 1
        with pytest.raises(KeyError):
            s.index_of("missing")

    def test_getitem_by_name_and_position(self):
        s = small_schema()
        assert s["a"].name == "a"
        assert s[2].name == "pad"

    def test_contains_and_names(self):
        s = small_schema()
        assert "a" in s and "zz" not in s
        assert s.names == ("a", "b", "pad")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema([Attribute("x"), Attribute("x")])

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError):
            Schema([])

    def test_bad_attribute_kind_rejected(self):
        with pytest.raises(ValueError):
            Attribute("x", "float", 8)

    def test_nonpositive_width_rejected(self):
        with pytest.raises(ValueError):
            Attribute("x", INT, 0)


class TestRelation:
    def test_cardinality(self):
        assert small_relation(50).cardinality == 50
        assert len(small_relation(50)) == 50

    def test_column_access(self):
        r = small_relation(10)
        assert r.column("a")[3] == 3
        with pytest.raises(KeyError):
            r.column("pad")  # declared but not materialized

    def test_unknown_column_rejected_at_build(self):
        with pytest.raises(KeyError):
            Relation("r", small_schema(), {"zzz": np.arange(3)})

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError):
            Relation("r", small_schema(),
                     {"a": np.arange(3), "b": np.arange(4)})

    def test_rows_in_range_inclusive(self):
        r = small_relation(100)
        rows = r.rows_in_range("a", 10, 19)
        assert sorted(r.column("a")[rows]) == list(range(10, 20))

    def test_tuple_size_from_schema(self):
        assert small_relation().tuple_size_bytes == 208


class TestFragment:
    def test_cardinality_and_values(self):
        r = small_relation(100)
        frag = r.fragment(np.array([5, 6, 7]), site=3)
        assert frag.cardinality == 3
        assert frag.site == 3
        assert sorted(frag.values("a")) == [5, 6, 7]

    def test_count_in_range(self):
        r = small_relation(100)
        frag = r.fragment(np.arange(0, 100, 2))  # even a-values
        assert frag.count_in_range("a", 0, 9) == 5
        assert frag.count_in_range("a", 98, 200) == 1
        assert frag.count_in_range("a", 1000, 2000) == 0

    def test_count_in_range_empty_fragment(self):
        r = small_relation(10)
        frag = r.fragment(np.array([], dtype=np.int64))
        assert frag.count_in_range("a", 0, 100) == 0
        assert frag.min_max("a") is None

    def test_min_max(self):
        r = small_relation(100)
        frag = r.fragment(np.array([10, 50, 90]))
        assert frag.min_max("a") == (10, 90)

    def test_union_fragments(self):
        r = small_relation(100)
        f1 = r.fragment(np.array([1, 2]))
        f2 = r.fragment(np.array([3]))
        merged = union_fragments(r, [f1, f2], site=0)
        assert merged.cardinality == 3
        assert merged.site == 0

    def test_union_of_nothing_is_empty(self):
        r = small_relation(10)
        assert union_fragments(r, []).cardinality == 0

    def test_counts_match_brute_force(self):
        rng = np.random.default_rng(7)
        r = small_relation(1000)
        rows = rng.choice(1000, size=400, replace=False)
        frag = r.fragment(rows)
        values = r.column("b")[rows]
        for lo, hi in [(0, 100), (250, 260), (999, 999), (500, 499)]:
            expected = int(((values >= lo) & (values <= hi)).sum())
            assert frag.count_in_range("b", lo, hi) == expected
