"""Property-based tests (hypothesis) for the DES kernel invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment, Resource, Store, TimeWeightedMonitor


@given(delays=st.lists(st.floats(min_value=0, max_value=1e6,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=50))
def test_events_processed_in_nondecreasing_time_order(delays):
    """The clock never runs backwards, whatever the timeout pattern."""
    env = Environment()
    observed = []

    def proc(env, delay):
        yield env.timeout(delay)
        observed.append(env.now)

    for d in delays:
        env.process(proc(env, d))
    env.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@given(delays=st.lists(st.floats(min_value=0, max_value=100,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=30))
def test_final_clock_equals_max_delay(delays):
    env = Environment()

    def proc(env, delay):
        yield env.timeout(delay)

    for d in delays:
        env.process(proc(env, d))
    env.run()
    assert env.now == max(delays)


@given(
    service_times=st.lists(st.floats(min_value=0.01, max_value=10,
                                     allow_nan=False, allow_infinity=False),
                           min_size=1, max_size=20),
    capacity=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=50)
def test_resource_work_conservation(service_times, capacity):
    """Total makespan >= total work / capacity, and every job completes."""
    env = Environment()
    res = Resource(env, capacity=capacity)
    completed = []

    def job(env, service):
        with res.request() as req:
            yield req
            yield env.timeout(service)
        completed.append(service)

    for s in service_times:
        env.process(job(env, s))
    env.run()
    assert sorted(completed) == sorted(service_times)
    assert env.now >= sum(service_times) / capacity - 1e-9
    # With everything arriving at t=0 and FCFS, a single server's makespan
    # is exactly the sum of service times.
    if capacity == 1:
        assert env.now == sum(service_times)


@given(
    n_jobs=st.integers(min_value=1, max_value=25),
    capacity=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=50)
def test_resource_never_exceeds_capacity(n_jobs, capacity):
    env = Environment()
    res = Resource(env, capacity=capacity)
    max_seen = 0

    def job(env):
        nonlocal max_seen
        with res.request() as req:
            yield req
            max_seen = max(max_seen, res.count)
            yield env.timeout(1)

    for _ in range(n_jobs):
        env.process(job(env))
    env.run()
    assert max_seen <= capacity


@given(items=st.lists(st.integers(), min_size=0, max_size=40))
def test_store_preserves_fifo_order(items):
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        for item in items:
            store.put(item)
            yield env.timeout(0.1)

    def consumer(env):
        for _ in items:
            received.append((yield store.get()))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == items


@given(
    steps=st.lists(
        st.tuples(st.floats(min_value=0.01, max_value=10, allow_nan=False),
                  st.floats(min_value=0, max_value=100, allow_nan=False)),
        min_size=1, max_size=30)
)
def test_time_weighted_average_bounded_by_extremes(steps):
    """The time average always lies between the min and max observed levels."""
    mon = TimeWeightedMonitor(initial=0.0, now=0.0)
    now = 0.0
    levels = [0.0]
    for dt, level in steps:
        now += dt
        mon.observe(now, level)
        levels.append(level)
    end = now + 1.0
    avg = mon.time_average(end)
    assert min(levels) - 1e-9 <= avg <= max(levels) + 1e-9
