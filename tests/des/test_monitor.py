"""Unit tests for the measurement instruments."""

import pytest

from repro.des import (
    Environment,
    Resource,
    TallyMonitor,
    TimeWeightedMonitor,
    UtilizationMonitor,
)


class TestTallyMonitor:
    def test_empty_stats_are_zero(self):
        m = TallyMonitor("empty")
        assert m.count == 0
        assert m.mean == 0.0
        assert m.stdev == 0.0
        assert m.minimum == 0.0
        assert m.maximum == 0.0

    def test_basic_stats(self):
        m = TallyMonitor()
        for v in [2.0, 4.0, 6.0]:
            m.record(v)
        assert m.count == 3
        assert m.mean == pytest.approx(4.0)
        assert m.total == pytest.approx(12.0)
        assert m.minimum == 2.0
        assert m.maximum == 6.0
        assert m.stdev == pytest.approx(1.632993, rel=1e-5)

    def test_reset_clears(self):
        m = TallyMonitor("rt")
        m.record(10)
        m.reset()
        assert m.count == 0
        assert m.name == "rt"

    def test_percentiles(self):
        m = TallyMonitor().keep_samples()
        for v in range(1, 101):
            m.record(float(v))
        assert m.percentile(50) == pytest.approx(50.0, abs=1.0)
        assert m.percentile(0) == 1.0
        assert m.percentile(100) == 100.0

    def test_percentile_without_samples_raises(self):
        m = TallyMonitor()
        m.record(1.0)
        with pytest.raises(RuntimeError):
            m.percentile(50)

    def test_single_observation(self):
        m = TallyMonitor()
        m.record(5.0)
        assert m.mean == 5.0
        assert m.stdev == 0.0  # undefined variance reported as 0, not NaN
        assert m.minimum == m.maximum == 5.0

    def test_identical_large_values_do_not_go_negative(self):
        # sum_sq/n - mean^2 can cancel to a tiny negative float; the
        # stdev must clamp to 0 instead of sqrt'ing it into a NaN.
        m = TallyMonitor()
        for _ in range(1000):
            m.record(1e8 + 0.1)
        assert m.stdev == 0.0

    def test_negative_values_supported(self):
        m = TallyMonitor()
        for v in (-2.0, -4.0):
            m.record(v)
        assert m.mean == -3.0
        assert m.minimum == -4.0
        assert m.maximum == -2.0

    def test_stats_usable_after_reset(self):
        m = TallyMonitor().keep_samples()
        m.record(1.0)
        m.reset()
        m.record(9.0)
        assert m.count == 1
        assert m.mean == 9.0
        # keep_samples state is intentionally dropped by the reset.
        with pytest.raises(RuntimeError):
            m.percentile(50)

    def test_empty_percentile_is_zero(self):
        assert TallyMonitor().keep_samples().percentile(50) == 0.0


class TestTimeWeightedMonitor:
    def test_constant_level(self):
        m = TimeWeightedMonitor(initial=3.0, now=0.0)
        assert m.time_average(10.0) == pytest.approx(3.0)

    def test_step_function(self):
        m = TimeWeightedMonitor(initial=0.0, now=0.0)
        m.observe(5.0, 2.0)   # level 0 for [0,5), 2 after
        assert m.time_average(10.0) == pytest.approx(1.0)

    def test_reset_restarts_window(self):
        m = TimeWeightedMonitor(initial=4.0, now=0.0)
        m.observe(10.0, 0.0)
        m.reset(10.0)
        assert m.time_average(20.0) == pytest.approx(0.0)

    def test_maximum_tracked(self):
        m = TimeWeightedMonitor(initial=1.0, now=0.0)
        m.observe(1.0, 5.0)
        m.observe(2.0, 2.0)
        assert m.maximum == 5.0

    def test_zero_span_returns_current(self):
        m = TimeWeightedMonitor(initial=7.0, now=0.0)
        assert m.time_average(0.0) == 7.0

    def test_simultaneous_observations_are_fine(self):
        m = TimeWeightedMonitor(initial=0.0, now=0.0)
        m.observe(5.0, 2.0)
        m.observe(5.0, 3.0)  # zero-width step contributes zero area
        assert m.time_average(10.0) == pytest.approx(1.5)

    def test_backwards_observation_rejected(self):
        m = TimeWeightedMonitor("queue", initial=0.0, now=0.0)
        m.observe(5.0, 2.0)
        with pytest.raises(ValueError, match="precedes"):
            m.observe(4.0, 3.0)
        # The failed observation must not have corrupted the average.
        assert m.time_average(10.0) == pytest.approx(1.0)

    def test_average_after_reset_mid_level(self):
        # Reset keeps the current level: a queue of 2 at reset time
        # averages 2 afterwards, not 0.
        m = TimeWeightedMonitor(initial=0.0, now=0.0)
        m.observe(5.0, 2.0)
        m.reset(10.0)
        assert m.current == 2.0
        assert m.time_average(20.0) == pytest.approx(2.0)
        assert m.maximum == 2.0  # pre-reset peak forgotten


class TestUtilizationMonitor:
    def test_measures_busy_fraction(self):
        env = Environment()
        res = Resource(env, capacity=1)
        mon = UtilizationMonitor.attach(res, "server")

        def job(env):
            with res.request() as req:
                yield req
                yield env.timeout(4)

        env.process(job(env))
        env.run()
        env.run(until=10)
        assert mon.utilization(env.now) == pytest.approx(0.4)

    def test_multi_server_utilization(self):
        env = Environment()
        res = Resource(env, capacity=2)
        mon = UtilizationMonitor.attach(res)

        def job(env):
            with res.request() as req:
                yield req
                yield env.timeout(10)

        env.process(job(env))
        env.process(job(env))
        env.run()
        # Both servers busy the whole [0, 10] window.
        assert mon.utilization(10.0) == pytest.approx(1.0)
