"""Failure-injection tests: the kernel under misbehaving processes.

A production simulation library must behave predictably when model code
fails: by default a crashing process surfaces immediately; with
``tolerate_process_failures`` the failure is contained in the Process
event so supervisors can observe and react.
"""

import pytest

from repro.des import Environment, Interrupted, Resource, SimulationError


class TestDefaultFailFast:
    def test_unhandled_exception_crashes_run(self):
        env = Environment()

        def bomb(env):
            yield env.timeout(1)
            raise RuntimeError("injected")

        env.process(bomb(env))
        with pytest.raises(RuntimeError, match="injected"):
            env.run()

    def test_other_processes_ran_until_crash(self):
        env = Environment()
        progress = []

        def worker(env):
            for i in range(10):
                yield env.timeout(1)
                progress.append(i)

        def bomb(env):
            yield env.timeout(3.5)
            raise ValueError("boom")

        env.process(worker(env))
        env.process(bomb(env))
        with pytest.raises(ValueError):
            env.run()
        assert progress == [0, 1, 2]


class TestToleratedFailures:
    def test_failure_contained_in_process_event(self):
        env = Environment(tolerate_process_failures=True)

        def bomb(env):
            yield env.timeout(1)
            raise RuntimeError("contained")

        p = env.process(bomb(env))
        env.run()
        assert p.triggered
        assert not p.ok
        with pytest.raises(RuntimeError, match="contained"):
            _ = p.value

    def test_supervisor_observes_and_restarts(self):
        env = Environment(tolerate_process_failures=True)
        attempts = []

        def flaky(env, attempt):
            yield env.timeout(1)
            attempts.append(attempt)
            if attempt < 3:
                raise RuntimeError(f"attempt {attempt}")
            return "ok"

        def supervisor(env):
            for attempt in range(1, 5):
                worker = env.process(flaky(env, attempt))
                try:
                    result = yield worker
                except RuntimeError:
                    continue
                return result

        s = env.process(supervisor(env))
        env.run()
        assert s.value == "ok"
        assert attempts == [1, 2, 3]

    def test_sibling_processes_unaffected(self):
        env = Environment(tolerate_process_failures=True)
        done = []

        def bomb(env):
            yield env.timeout(1)
            raise RuntimeError("die")

        def survivor(env):
            yield env.timeout(5)
            done.append(env.now)

        env.process(bomb(env))
        env.process(survivor(env))
        env.run()
        assert done == [5.0]


class TestResourceCleanupOnFailure:
    def test_context_manager_releases_on_crash(self):
        """A holder crashing inside `with` must release the resource."""
        env = Environment(tolerate_process_failures=True)
        res = Resource(env, capacity=1)
        acquired = []

        def crasher(env):
            with res.request() as req:
                yield req
                yield env.timeout(1)
                raise RuntimeError("mid-hold crash")

        def next_user(env):
            with res.request() as req:
                yield req
                acquired.append(env.now)

        env.process(crasher(env))
        env.process(next_user(env))
        env.run()
        assert acquired == [1.0]

    def test_interrupt_during_hold_releases_via_context(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def holder(env):
            with res.request() as req:
                yield req
                try:
                    yield env.timeout(100)
                except Interrupted:
                    order.append(("interrupted", env.now))

        def interrupter(env, victim):
            yield env.timeout(2)
            victim.interrupt()

        def waiter(env):
            with res.request() as req:
                yield req
                order.append(("acquired", env.now))

        victim = env.process(holder(env))
        env.process(interrupter(env, victim))
        env.process(waiter(env))
        env.run()
        assert order == [("interrupted", 2.0), ("acquired", 2.0)]
