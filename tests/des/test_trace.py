"""Unit tests for the event tracer."""

import pytest

from repro.des import Environment, Tracer


@pytest.fixture
def env():
    return Environment()


class TestRecording:
    def test_timestamps_follow_clock(self, env):
        tracer = Tracer(env)

        def proc(env):
            tracer.record("start")
            yield env.timeout(5)
            tracer.record("end")

        env.process(proc(env))
        env.run()
        entries = list(tracer)
        assert [e.time for e in entries] == [0.0, 5.0]
        assert [e.kind for e in entries] == ["start", "end"]

    def test_sequence_monotone(self, env):
        tracer = Tracer(env)
        for _ in range(5):
            tracer.record("x")
        seqs = [e.sequence for e in tracer]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 5

    def test_details_stored(self, env):
        tracer = Tracer(env)
        entry = tracer.record("disk.read", node=3, pages=2)
        assert entry.details == {"node": 3, "pages": 2}
        assert "node=3" in str(entry)

    def test_capacity_bound_and_eviction(self, env):
        tracer = Tracer(env, capacity=3)
        for i in range(5):
            tracer.record("e", i=i)
        assert len(tracer) == 3
        assert tracer.evicted == 2
        assert [e.details["i"] for e in tracer] == [2, 3, 4]
        # Counts include evicted entries.
        assert tracer.count("e") == 5

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Tracer(env, capacity=0)


class TestQuerying:
    def test_filter_by_kind(self, env):
        tracer = Tracer(env)
        tracer.record("a")
        tracer.record("b")
        tracer.record("a")
        assert len(list(tracer.query(kind="a"))) == 2

    def test_filter_by_time_window(self, env):
        tracer = Tracer(env)

        def proc(env):
            for t in range(4):
                tracer.record("tick")
                yield env.timeout(1)

        env.process(proc(env))
        env.run()
        assert len(list(tracer.query(since=1.0, until=2.0))) == 2

    def test_filter_by_details(self, env):
        tracer = Tracer(env)
        tracer.record("io", node=1)
        tracer.record("io", node=2)
        assert len(list(tracer.query(kind="io", node=2))) == 1

    def test_kinds_summary(self, env):
        tracer = Tracer(env)
        tracer.record("a")
        tracer.record("a")
        tracer.record("b")
        assert tracer.kinds() == {"a": 2, "b": 1}

    def test_clear(self, env):
        tracer = Tracer(env)
        tracer.record("a")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.kinds() == {}

    def test_render_limits_lines(self, env):
        tracer = Tracer(env)
        for i in range(10):
            tracer.record("line", i=i)
        text = tracer.render(limit=3)
        assert text.count("\n") == 2
        assert "i=9" in text


class TestEvictionAccounting:
    def test_per_kind_counts_survive_eviction(self, env):
        tracer = Tracer(env, capacity=4)
        for i in range(6):
            tracer.record("io", i=i)
        for i in range(4):
            tracer.record("net", i=i)
        # 10 recorded into capacity 4: the oldest 6 were evicted, but
        # per-kind totals still reflect everything recorded.
        assert len(tracer) == 4
        assert tracer.evicted == 6
        assert tracer.count("io") == 6
        assert tracer.count("net") == 4
        assert all(e.kind == "net" for e in tracer)

    def test_clear_resets_eviction_counter(self, env):
        tracer = Tracer(env, capacity=1)
        tracer.record("a")
        tracer.record("a")
        assert tracer.evicted == 1
        tracer.clear()
        assert tracer.evicted == 0
        assert tracer.count("a") == 0

    def test_query_sees_only_retained_entries(self, env):
        tracer = Tracer(env, capacity=2)
        for i in range(5):
            tracer.record("e", i=i)
        retained = [e.details["i"] for e in tracer.query(kind="e")]
        assert retained == [3, 4]


class TestQueryFiltering:
    def test_all_filters_combine(self, env):
        tracer = Tracer(env)

        def proc(env):
            for t in range(4):
                tracer.record("io", node=t % 2)
                tracer.record("cpu", node=t % 2)
                yield env.timeout(1)

        env.process(proc(env))
        env.run()
        hits = list(tracer.query(kind="io", since=1.0, until=3.0, node=1))
        assert [e.time for e in hits] == [1.0, 3.0]
        assert all(e.kind == "io" and e.details["node"] == 1 for e in hits)

    def test_detail_filter_skips_entries_without_key(self, env):
        tracer = Tracer(env)
        tracer.record("io", node=1)
        tracer.record("io")  # no node detail at all
        assert len(list(tracer.query(kind="io", node=1))) == 1

    def test_span_layer_records_through_tracer(self, env):
        # The obs span log stores its spans as plain tracer entries, so
        # the tracer's filtering works on spans like any other kind.
        from repro.obs import SPAN_KIND, SpanLog

        tracer = Tracer(env, capacity=3)
        log = SpanLog(env, tracer=tracer)
        trace = log.begin(1, "QA")
        for _ in range(4):
            trace.resource(trace.root, "node.cpu", wait=0.0, service=0.1)
        log.end(1)
        # 5 spans through capacity 3: bounded, eviction counted, and
        # kind/detail filtering applies.
        assert tracer.evicted == 2
        assert tracer.count(SPAN_KIND) == 5
        assert log.span_count() == 5
        assert len(list(tracer.query(kind=SPAN_KIND, qtype="QA"))) == 3
