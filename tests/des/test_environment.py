"""Unit tests for the simulation environment and its run loops."""

import pytest

from repro.des import AgendaEmptyError, Environment, SimulationError


@pytest.fixture
def env():
    return Environment()


class TestClock:
    def test_initial_time_default(self):
        assert Environment().now == 0.0

    def test_initial_time_custom(self):
        assert Environment(initial_time=10.0).now == 10.0

    def test_run_until_time_advances_clock(self, env):
        env.run(until=50)
        assert env.now == 50

    def test_run_until_past_raises(self, env):
        env.run(until=10)
        with pytest.raises(ValueError):
            env.run(until=5)


class TestRunLoops:
    def test_run_until_event_returns_value(self, env):
        def proc(env):
            yield env.timeout(2)
            return "result"

        p = env.process(proc(env))
        assert env.run(until=p) == "result"

    def test_run_until_event_stops_promptly(self, env):
        log = []

        def short(env):
            yield env.timeout(1)
            log.append("short")

        def long(env):
            yield env.timeout(100)
            log.append("long")

        s = env.process(short(env))
        env.process(long(env))
        env.run(until=s)
        assert log == ["short"]
        assert env.now == 1

    def test_run_until_unreachable_event_raises(self, env):
        never = env.event()
        with pytest.raises(AgendaEmptyError, match="ran dry"):
            env.run(until=never)

    def test_agenda_dry_error_is_simulation_error(self, env):
        # Kernel errors share one hierarchy: callers can catch
        # SimulationError for any kernel-originated failure.
        with pytest.raises(SimulationError):
            env.run(until=env.event())

    def test_run_until_time_leaves_future_events(self, env):
        fired = []

        def proc(env):
            yield env.timeout(10)
            fired.append(env.now)

        env.process(proc(env))
        env.run(until=5)
        assert fired == []
        env.run()
        assert fired == [10.0]

    def test_peek_empty_agenda(self, env):
        assert env.peek() == float("inf")

    def test_step_pops_one_event(self, env):
        order = []

        def proc(env, tag):
            yield env.timeout(tag)
            order.append(tag)

        env.process(proc(env, 1))
        env.process(proc(env, 2))
        while env.peek() != float("inf"):
            env.step()
        assert order == [1, 2]


class TestDeterminism:
    def test_interleaving_is_reproducible(self):
        def run_once():
            env = Environment()
            trace = []

            def worker(env, name, delays):
                for d in delays:
                    yield env.timeout(d)
                    trace.append((env.now, name))

            env.process(worker(env, "a", [1, 1, 1]))
            env.process(worker(env, "b", [1.5, 0.5, 1]))
            env.process(worker(env, "c", [2, 0, 1]))
            env.run()
            return trace

        assert run_once() == run_once()

    def test_schedule_urgent_twice_raises_simulation_error(self, env):
        # Aligned with Event.succeed: re-triggering is a SimulationError,
        # not a bare RuntimeError.
        ev = env.event()
        env.schedule_urgent(ev)
        with pytest.raises(SimulationError, match="already been triggered"):
            env.schedule_urgent(ev)

    def test_schedule_urgent_of_succeeded_event_raises(self, env):
        ev = env.event().succeed(1)
        with pytest.raises(SimulationError):
            env.schedule_urgent(ev)

    def test_urgent_beats_normal_at_same_time(self, env):
        order = []
        urgent = env.event()
        env.schedule_urgent(urgent, delay=5)
        urgent._add_callback(lambda e: order.append("urgent"))

        def normal(env):
            yield env.timeout(5)
            order.append("normal")

        env.process(normal(env))
        env.run()
        assert order == ["urgent", "normal"]
