"""Unit tests for Resource, PriorityResource and Store."""

import pytest

from repro.des import (
    Environment,
    PriorityResource,
    Resource,
    SimulationError,
    Store,
)


@pytest.fixture
def env():
    return Environment()


def hold(env, resource, duration, log, tag, priority=0):
    """A process that holds *resource* for *duration* and logs (tag, start)."""
    with resource.request(priority=priority) as req:
        yield req
        log.append((tag, env.now))
        yield env.timeout(duration)


class TestResource:
    def test_single_server_serializes(self, env):
        res = Resource(env, capacity=1)
        log = []
        for tag in "abc":
            env.process(hold(env, res, 10, log, tag))
        env.run()
        assert log == [("a", 0), ("b", 10), ("c", 20)]

    def test_capacity_two_parallel(self, env):
        res = Resource(env, capacity=2)
        log = []
        for tag in "abc":
            env.process(hold(env, res, 10, log, tag))
        env.run()
        assert log == [("a", 0), ("b", 0), ("c", 10)]

    def test_fcfs_order_preserved(self, env):
        res = Resource(env, capacity=1)
        log = []

        def staggered(env, tag, arrive):
            yield env.timeout(arrive)
            with res.request() as req:
                yield req
                log.append(tag)
                yield env.timeout(5)

        for tag, arrive in [("first", 0), ("second", 1), ("third", 2)]:
            env.process(staggered(env, tag, arrive))
        env.run()
        assert log == ["first", "second", "third"]

    def test_grant_value_is_wait_time(self, env):
        res = Resource(env, capacity=1)

        def first(env):
            with res.request() as req:
                yield req
                yield env.timeout(7)

        def second(env):
            with res.request() as req:
                wait = yield req
                return wait

        env.process(first(env))
        p = env.process(second(env))
        env.run()
        assert p.value == 7

    def test_release_ungranted_cancels(self, env):
        res = Resource(env, capacity=1)

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(10)

        def quitter(env):
            req = res.request()
            yield env.timeout(1)
            res.release(req)  # give up while still queued
            return res.queue_length

        env.process(holder(env))
        q = env.process(quitter(env))
        env.run()
        assert q.value == 0

    def test_double_release_raises(self, env):
        res = Resource(env, capacity=1)

        def proc(env):
            req = res.request()
            yield req
            res.release(req)
            res.release(req)

        env.process(proc(env))
        with pytest.raises(SimulationError):
            env.run()

    def test_zero_capacity_rejected(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_count_and_queue_length(self, env):
        res = Resource(env, capacity=1)
        log = []
        for tag in "ab":
            env.process(hold(env, res, 10, log, tag))
        env.run(until=5)
        assert res.count == 1
        assert res.queue_length == 1


class TestPriorityResource:
    def test_lower_priority_number_served_first(self, env):
        res = PriorityResource(env, capacity=1)
        log = []

        def submit(env):
            # Occupy the server, then queue low before high priority.
            with res.request(priority=1) as req:
                yield req
                env.process(hold(env, res, 1, log, "low", priority=5))
                env.process(hold(env, res, 1, log, "high", priority=0))
                yield env.timeout(10)

        env.process(submit(env))
        env.run()
        assert [t for t, _ in log] == ["high", "low"]

    def test_fcfs_within_same_priority(self, env):
        res = PriorityResource(env, capacity=1)
        log = []

        def submit(env):
            with res.request(priority=0) as req:
                yield req
                for tag in ["x", "y", "z"]:
                    env.process(hold(env, res, 1, log, tag, priority=3))
                yield env.timeout(10)

        env.process(submit(env))
        env.run()
        assert [t for t, _ in log] == ["x", "y", "z"]

    def test_non_preemptive(self, env):
        res = PriorityResource(env, capacity=1)
        log = []

        def low_then_high(env):
            with res.request(priority=5) as req:
                yield req
                log.append(("low-start", env.now))
                env.process(hold(env, res, 1, log, "high", priority=0))
                yield env.timeout(10)
                log.append(("low-end", env.now))

        env.process(low_then_high(env))
        env.run()
        assert log == [("low-start", 0), ("low-end", 10), ("high", 10)]

    def test_cancel_queued_priority_request(self, env):
        res = PriorityResource(env, capacity=1)

        def proc(env):
            with res.request(priority=0) as held:
                yield held
                queued = res.request(priority=1)
                res.release(queued)
                return res.queue_length

        p = env.process(proc(env))
        env.run()
        assert p.value == 0


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)
        store.put("msg")

        def proc(env):
            item = yield store.get()
            return item

        p = env.process(proc(env))
        env.run()
        assert p.value == "msg"

    def test_get_blocks_until_put(self, env):
        store = Store(env)

        def getter(env):
            item = yield store.get()
            return (item, env.now)

        def putter(env):
            yield env.timeout(5)
            store.put("late")

        g = env.process(getter(env))
        env.process(putter(env))
        env.run()
        assert g.value == ("late", 5)

    def test_fifo_item_order(self, env):
        store = Store(env)
        for i in range(5):
            store.put(i)

        def drain(env):
            items = []
            for _ in range(5):
                items.append((yield store.get()))
            return items

        p = env.process(drain(env))
        env.run()
        assert p.value == [0, 1, 2, 3, 4]

    def test_getters_served_in_order(self, env):
        store = Store(env)
        results = []

        def getter(env, tag):
            item = yield store.get()
            results.append((tag, item))

        env.process(getter(env, "first"))
        env.process(getter(env, "second"))

        def putter(env):
            yield env.timeout(1)
            store.put("a")
            store.put("b")

        env.process(putter(env))
        env.run()
        assert results == [("first", "a"), ("second", "b")]

    def test_len_and_peek(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.peek_all() == [1, 2]
