"""Regression tests for DES kernel message-loss and accounting bugs.

Each test here pins a behavior the original kernel got wrong (or never
exercised):

* an interrupted ``Store.get()`` left an orphaned getter that silently
  swallowed the next item put into the store -- message loss;
* ``Resource.release`` observed the monitor twice when a queued request
  was granted in the same instant -- inflated sample counts;
* interrupting a process waiting on a ``Resource`` grant, condition
  events over already-processed children, and ``PriorityResource``
  cancellation under mixed interleavings simply had no coverage.

The store test fails on the pre-fix kernel (the snapshot kept under
``benchmarks/_baseline_des``): its ``Store.put`` popped the orphaned
get event and delivered the item to a process that was no longer
listening.
"""

import pytest

from repro.des import (
    AllOf,
    AnyOf,
    Environment,
    Interrupted,
    PriorityResource,
    Resource,
    SimulationError,
    Store,
)


@pytest.fixture
def env():
    return Environment()


class TestStoreInterruptRegression:
    def test_interrupted_getter_does_not_swallow_item(self, env):
        """The message-loss bug: an orphaned getter must not eat a put.

        ``consumer`` blocks on an empty store and is interrupted before
        anything arrives.  When an item is finally put, it must go to
        the live second getter -- on the old kernel the orphaned get
        event was still first in the getter queue, the item was bound
        to it, and nobody ever received it.
        """
        store = Store(env)
        received = []

        def consumer(env):
            try:
                item = yield store.get()
                received.append(("interrupted-consumer", item))
            except Interrupted:
                pass  # walks away without the item

        def second_consumer(env):
            yield env.timeout(2)
            item = yield store.get()
            received.append(("second-consumer", item))

        def producer(env, victim):
            yield env.timeout(1)
            victim.interrupt("shutdown")
            yield env.timeout(2)
            store.put("the message")

        victim = env.process(consumer(env))
        env.process(second_consumer(env))
        env.process(producer(env, victim))
        env.run()
        assert received == [("second-consumer", "the message")]

    def test_interrupted_getter_then_fifo_order_kept(self, env):
        """Orphan removal must not disturb FIFO service of live getters."""
        store = Store(env)
        received = []

        def getter(env, tag, delay):
            yield env.timeout(delay)
            item = yield store.get()
            received.append((tag, item))

        def doomed(env):
            try:
                yield store.get()
            except Interrupted:
                pass

        def driver(env, victim):
            yield env.timeout(1)
            victim.interrupt()
            store.put("a")
            store.put("b")

        victim = env.process(doomed(env))
        env.process(getter(env, "first", 0.5))
        env.process(getter(env, "second", 0.75))
        env.process(driver(env, victim))
        env.run()
        assert received == [("first", "a"), ("second", "b")]


class _SampleCounter:
    """Quacks like ``TimeWeightedMonitor`` for the resource hot paths.

    The inlined observe in ``Resource.request``/``release`` writes
    ``_level`` exactly once per observation, and the out-of-line path
    calls :meth:`observe`; both funnel into ``samples`` so the test can
    count state transitions.
    """

    def __init__(self):
        self.samples = []
        self._area = 0.0
        self._last_change = 0.0
        self._max = 0
        self.__dict__["level"] = 0

    @property
    def _level(self):
        return self.__dict__["level"]

    @_level.setter
    def _level(self, value):
        self.__dict__["level"] = value
        self.samples.append(value)

    def observe(self, now, level):
        self._area += self.__dict__["level"] * (now - self._last_change)
        self._last_change = now
        self._level = level
        if level > self._max:
            self._max = level


class TestReleaseMonitorSampleCount:
    def test_release_with_regrant_samples_once(self, env):
        """A release that re-grants in the same instant is ONE sample.

        The original release observed the transient dip (holder gone)
        and then the re-grant separately, inflating sample counts; the
        fixed path records only the settled level.
        """
        res = Resource(env, capacity=1)
        res.monitor = _SampleCounter()

        def holder(env):
            req = res.request()
            yield req
            yield env.timeout(5)
            res.release(req)

        def waiter(env):
            yield env.timeout(1)
            req = res.request()
            yield req
            yield env.timeout(5)
            res.release(req)

        env.process(holder(env))
        env.process(waiter(env))
        env.run()
        # grant(1) at t=0, queued request adds nothing, release+regrant
        # at t=5 settles at level 1 (one sample), final release at t=10
        # settles at level 0 (one sample).
        assert res.monitor.samples == [1, 1, 0]

    def test_uncontended_cycle_samples(self, env):
        res = Resource(env, capacity=1)
        res.monitor = _SampleCounter()

        def once(env):
            req = res.request()
            yield req
            yield env.timeout(3)
            res.release(req)

        env.process(once(env))
        env.run()
        assert res.monitor.samples == [1, 0]


class TestInterruptDuringResourceWait:
    def test_interrupted_waiter_cancels_and_queue_moves_on(self, env):
        res = Resource(env, capacity=1)
        log = []

        def holder(env):
            req = res.request()
            yield req
            log.append(("holder", env.now))
            yield env.timeout(10)
            res.release(req)

        def impatient(env):
            req = res.request()
            try:
                yield req
                log.append(("impatient", env.now))
            except Interrupted:
                res.release(req)  # cancel the still-queued request
                log.append(("gave-up", env.now))

        def patient(env):
            yield env.timeout(1)
            req = res.request()
            yield req
            log.append(("patient", env.now))
            res.release(req)

        def driver(env, victim):
            yield env.timeout(5)
            victim.interrupt("bored")

        env.process(holder(env))
        victim = env.process(impatient(env))
        env.process(patient(env))
        env.process(driver(env, victim))
        env.run()
        assert log == [("holder", 0), ("gave-up", 5), ("patient", 10)]
        assert res.queue_length == 0
        assert res.count == 0

    def test_interrupted_priority_waiter_leaves_clean_queue(self, env):
        res = PriorityResource(env, capacity=1)
        log = []

        def holder(env):
            req = res.request(priority=0)
            yield req
            yield env.timeout(10)
            res.release(req)

        def doomed(env):
            req = res.request(priority=0)
            try:
                yield req
            except Interrupted:
                res.release(req)

        def survivor(env):
            yield env.timeout(1)
            req = res.request(priority=1)
            yield req
            log.append(("survivor", env.now))
            res.release(req)

        def driver(env, victim):
            yield env.timeout(2)
            victim.interrupt()

        env.process(holder(env))
        victim = env.process(doomed(env))
        env.process(survivor(env))
        env.process(driver(env, victim))
        env.run()
        assert log == [("survivor", 10)]
        assert res.queue_length == 0


class TestConditionsOverProcessedChildren:
    def test_allof_over_processed_events(self, env):
        first = env.timeout(1, value="one")
        second = env.timeout(2, value="two")
        env.run(until=5)
        assert first.processed and second.processed

        collected = []

        def waiter(env):
            values = yield AllOf(env, [first, second])
            collected.append((env.now, values))

        env.process(waiter(env))
        env.run()
        assert collected == [(5, ["one", "two"])]

    def test_anyof_over_processed_event_fires_immediately(self, env):
        done = env.timeout(1, value="early")
        late = env.timeout(50, value="late")
        env.run(until=2)
        assert done.processed and not late.processed

        collected = []

        def waiter(env):
            value = yield AnyOf(env, [done, late])
            collected.append((env.now, value))

        env.process(waiter(env))
        env.run(until=10)
        # The condition resolves through the agenda at the current time,
        # without waiting for the pending sibling.
        assert collected == [(2, "early")]

    def test_allof_mixed_processed_and_pending(self, env):
        done = env.timeout(1, value="done")
        env.run(until=2)
        pending = env.timeout(3, value="pending")

        collected = []

        def waiter(env):
            values = yield AllOf(env, [done, pending])
            collected.append((env.now, values))

        env.process(waiter(env))
        env.run()
        assert collected == [(5, ["done", "pending"])]


class TestPriorityTombstoneInterleavings:
    def _spawn(self, env, res, tag, priority, log, cancels):
        def proc(env):
            req = res.request(priority=priority)
            if tag in cancels:
                yield env.timeout(cancels[tag])
                res.release(req)  # cancel while queued -> tombstone
                return
            yield req
            log.append((tag, env.now))
            yield env.timeout(10)
            res.release(req)
        return env.process(proc(env))

    def test_cancel_head_of_queue(self, env):
        """Tombstone at the heap root is skipped, next live entry wins."""
        res = PriorityResource(env, capacity=1)
        log = []

        def holder(env):
            req = res.request(priority=0)
            yield req
            log.append(("holder", env.now))
            yield env.timeout(10)
            res.release(req)

        env.process(holder(env))
        self._spawn(env, res, "head", 0, log, cancels={"head": 1})
        self._spawn(env, res, "tail", 1, log, cancels={})
        env.run()
        assert log == [("holder", 0), ("tail", 10)]
        assert res.queue_length == 0

    def test_mixed_cancellations_respect_priority_then_fifo(self, env):
        res = PriorityResource(env, capacity=1)
        log = []

        def holder(env):
            req = res.request(priority=5)
            yield req
            log.append(("holder", env.now))
            yield env.timeout(10)
            res.release(req)

        env.process(holder(env))
        # Queued while the holder serves; cancellations at t=1 and t=2
        # punch holes at both ends of the priority range.
        self._spawn(env, res, "u0-cancelled", 0, log, {"u0-cancelled": 1})
        self._spawn(env, res, "u1", 1, log, {})
        self._spawn(env, res, "u1-cancelled", 1, log, {"u1-cancelled": 2})
        self._spawn(env, res, "u1-later", 1, log, {})
        self._spawn(env, res, "u9-cancelled", 9, log, {"u9-cancelled": 1})
        self._spawn(env, res, "u9", 9, log, {})
        env.run()
        assert log == [("holder", 0), ("u1", 10), ("u1-later", 20),
                       ("u9", 30)]
        assert res.queue_length == 0

    def test_queue_length_ignores_tombstones(self, env):
        res = PriorityResource(env, capacity=1)
        held = res.request(priority=0)
        queued = [res.request(priority=p) for p in (3, 1, 2)]
        env.run()
        assert res.queue_length == 3
        res.release(queued[0])  # cancel priority-3
        assert res.queue_length == 2
        res.release(queued[2])  # cancel priority-2
        assert res.queue_length == 1
        # Cancelling twice is an error, exactly like double release.
        with pytest.raises(SimulationError):
            res.release(queued[0])
        res.release(held)
        env.run()
        assert res.count == 1  # priority-1 got the grant
        assert res.queue_length == 0
