"""Unit tests for the DES event primitives."""

import pytest

from repro.des import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupted,
    SimulationError,
)


@pytest.fixture
def env():
    return Environment()


class TestEvent:
    def test_starts_untriggered(self, env):
        ev = env.event()
        assert not ev.triggered
        assert not ev.processed

    def test_succeed_sets_value(self, env):
        ev = env.event().succeed(42)
        assert ev.triggered
        env.run()
        assert ev.processed
        assert ev.value == 42

    def test_succeed_with_none_counts_as_triggered(self, env):
        ev = env.event().succeed(None)
        assert ev.triggered
        env.run()
        assert ev.value is None

    def test_double_succeed_raises(self, env):
        ev = env.event().succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_then_value_reraises(self, env):
        boom = RuntimeError("boom")
        ev = env.event().fail(boom)
        env.run()
        with pytest.raises(RuntimeError, match="boom"):
            _ = ev.value

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            _ = env.event().value

    def test_callback_registered_after_processing_still_fires(self, env):
        ev = env.event().succeed("x")
        env.run()
        seen = []
        ev._add_callback(lambda e: seen.append(e.value))
        env.run()
        assert seen == ["x"]


class TestTimeout:
    def test_fires_at_correct_time(self, env):
        times = []

        def proc(env):
            yield env.timeout(2.5)
            times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == [2.5]

    def test_zero_delay_allowed(self, env):
        def proc(env):
            yield env.timeout(0)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 0.0

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_timeout_carries_value(self, env):
        def proc(env):
            got = yield env.timeout(1, value="payload")
            return got

        p = env.process(proc(env))
        env.run()
        assert p.value == "payload"

    def test_same_time_timeouts_fifo(self, env):
        order = []

        def proc(env, tag):
            yield env.timeout(5)
            order.append(tag)

        for tag in "abc":
            env.process(proc(env, tag))
        env.run()
        assert order == ["a", "b", "c"]


class TestProcess:
    def test_process_return_value(self, env):
        def proc(env):
            yield env.timeout(1)
            return "done"

        p = env.process(proc(env))
        env.run()
        assert p.value == "done"

    def test_waiting_on_another_process(self, env):
        def child(env):
            yield env.timeout(3)
            return 7

        def parent(env):
            value = yield env.process(child(env))
            return value * 2

        p = env.process(parent(env))
        env.run()
        assert p.value == 14
        assert env.now == 3

    def test_is_alive_lifecycle(self, env):
        def proc(env):
            yield env.timeout(1)

        p = env.process(proc(env))
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_yield_non_event_raises(self, env):
        def proc(env):
            yield "not an event"

        env.process(proc(env))
        with pytest.raises(SimulationError, match="not an Event"):
            env.run()

    def test_yield_bare_float_sleeps(self, env):
        # Plain numbers are delays: equivalent to yielding
        # env.timeout(delay), minus the Timeout object.
        log = []

        def proc(env):
            got = yield 1.5
            log.append((env.now, got))
            got = yield 2  # integers take the slow lane, same semantics
            log.append((env.now, got))

        env.process(proc(env))
        env.run()
        assert log == [(1.5, None), (3.5, None)]

    def test_yield_bare_sleep_orders_like_timeout(self, env):
        # A bare sleep consumes one sequence number exactly as a
        # timeout would, so FIFO tie-breaking between the two styles
        # follows creation order.
        log = []

        def sleeper(env, tag):
            yield 1.0
            log.append(tag)

        def timeouter(env, tag):
            yield env.timeout(1.0)
            log.append(tag)

        env.process(sleeper(env, "a"))
        env.process(timeouter(env, "b"))
        env.process(sleeper(env, "c"))
        env.run()
        assert log == ["a", "b", "c"]

    def test_yield_negative_sleep_raises(self, env):
        def proc(env):
            yield -0.5

        env.process(proc(env))
        with pytest.raises(SimulationError, match="negative sleep"):
            env.run()

    def test_interrupt_during_bare_sleep_rejected(self, env):
        # There is no event to detach the waker from, so a sleeping
        # process cannot be interrupted; the error says to use
        # env.timeout() instead.
        def sleeper(env):
            yield 10.0

        def interrupter(env, victim):
            yield env.timeout(1.0)
            victim.interrupt("wake up")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        with pytest.raises(SimulationError, match="bare delay"):
            env.run()

    def test_exception_in_process_propagates(self, env):
        def proc(env):
            yield env.timeout(1)
            raise ValueError("inner")

        env.process(proc(env))
        with pytest.raises(ValueError, match="inner"):
            env.run()

    def test_failed_event_raises_in_waiter(self, env):
        ev = env.event()

        def failer(env, ev):
            yield env.timeout(1)
            ev.fail(KeyError("k"))

        def waiter(env, ev):
            try:
                yield ev
            except KeyError:
                return "caught"

        env.process(failer(env, ev))
        w = env.process(waiter(env, ev))
        env.run()
        assert w.value == "caught"

    def test_interrupt_delivers_cause(self, env):
        def victim(env):
            try:
                yield env.timeout(100)
            except Interrupted as exc:
                return ("interrupted", exc.cause, env.now)

        def attacker(env, target):
            yield env.timeout(4)
            target.interrupt(cause="why")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert v.value == ("interrupted", "why", 4)

    def test_interrupt_finished_process_raises(self, env):
        def quick(env):
            yield env.timeout(0)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_non_generator_rejected(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)


class TestConditions:
    def test_all_of_collects_values_in_order(self, env):
        def proc(env):
            t1 = env.timeout(3, value="slow")
            t2 = env.timeout(1, value="fast")
            values = yield env.all_of([t1, t2])
            return values

        p = env.process(proc(env))
        env.run()
        assert p.value == ["slow", "fast"]
        assert env.now == 3

    def test_any_of_returns_first(self, env):
        def proc(env):
            t1 = env.timeout(3, value="slow")
            t2 = env.timeout(1, value="fast")
            value = yield env.any_of([t1, t2])
            return (value, env.now)

        p = env.process(proc(env))
        env.run()
        assert p.value == ("fast", 1)

    def test_all_of_empty_fires_immediately(self, env):
        def proc(env):
            values = yield env.all_of([])
            return values

        p = env.process(proc(env))
        env.run()
        assert p.value == []

    def test_all_of_propagates_failure(self, env):
        ev = env.event()

        def failer(env, ev):
            yield env.timeout(1)
            ev.fail(RuntimeError("child failed"))

        def waiter(env, ev):
            try:
                yield env.all_of([ev, env.timeout(10)])
            except RuntimeError:
                return env.now

        env.process(failer(env, ev))
        w = env.process(waiter(env, ev))
        env.run()
        assert w.value == 1

    def test_cross_environment_event_rejected(self, env):
        other = Environment()
        foreign = other.event()
        with pytest.raises(SimulationError):
            AllOf(env, [foreign])

    def test_any_of_mixed_environments_rejected(self, env):
        other = Environment()
        with pytest.raises(SimulationError):
            AnyOf(env, [env.event(), other.event()])
