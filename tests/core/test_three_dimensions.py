"""MAGIC with three partitioning attributes (K = 3).

The paper evaluates K = 2 but defines MAGIC for arbitrary K; these tests
exercise the full pipeline -- directory construction, assignment,
rebalancing, routing -- on a three-dimensional grid.
"""

import numpy as np
import pytest

from repro.core import (
    MagicStrategy,
    MagicTuning,
    RangePredicate,
    build_from_shape,
    factor_slice_targets,
    pattern_moduli,
)
from repro.storage import make_wisconsin

P = 27
CARD = 27_000


@pytest.fixture(scope="module")
def relation():
    return make_wisconsin(CARD, correlation="low", seed=40)


@pytest.fixture(scope="module")
def placement(relation):
    strategy = MagicStrategy(
        ["unique1", "unique2", "unique3"],
        tuning=MagicTuning(
            shape={"unique1": 15, "unique2": 15, "unique3": 15},
            mi={"unique1": 3.0, "unique2": 3.0, "unique3": 3.0}))
    return strategy.partition(relation, P)


class TestThreeDimensionalDirectory:
    def test_shape(self, placement):
        assert placement.directory.shape == (15, 15, 15)
        assert placement.directory.ndim == 3

    def test_is_a_partition(self, relation, placement):
        assert sum(f.cardinality for f in placement.fragments) == CARD

    def test_targets_factor_p(self):
        targets = factor_slice_targets([3.0, 3.0, 3.0], 27)
        assert targets == (3, 3, 3)
        moduli = pattern_moduli(targets, 27)
        # Full-machine coverage takes priority over the exact targets
        # (the ideal per-dim modulus sqrt(3) is irrational): the bumped
        # moduli must multiply to at least P.
        assert int(np.prod(moduli)) >= 27

    def test_slice_diversity_all_dimensions(self, placement):
        for attr in ("unique1", "unique2", "unique3"):
            diversity = placement.directory.distinct_sites_per_slice(attr)
            assert 2 <= float(np.mean(diversity)) <= 9

    def test_routing_localizes_each_attribute(self, placement):
        for attr in ("unique1", "unique2", "unique3"):
            decision = placement.route(RangePredicate(attr, 1_000, 1_099))
            assert decision.used_partitioning
            assert len(decision.target_sites) < P

    def test_routing_soundness(self, relation, placement):
        for attr in ("unique1", "unique2", "unique3"):
            pred = RangePredicate(attr, 5_000, 5_499)
            counts = placement.qualifying_counts(pred)
            routed = set(placement.route(pred).target_sites)
            for site in np.nonzero(counts)[0]:
                assert int(site) in routed

    def test_three_way_conjunction_hits_one_entry(self, placement):
        preds = [RangePredicate("unique1", 10_000, 10_499),
                 RangePredicate("unique2", 20_000, 20_499),
                 RangePredicate("unique3", 10_000, 10_499)]
        decision = placement.route_conjunction(preds)
        # Three bands of ~1 slice each intersect in >= 1 entries; far
        # fewer processors than any single band.
        single = placement.route(preds[0])
        assert len(decision.target_sites) <= len(single.target_sites)

    def test_load_balanced(self, placement):
        cards = placement.cardinalities()
        assert cards.max() <= 1.5 * cards.mean()


class TestThreeDimensionalBuilders:
    def test_build_from_shape_3d(self, relation):
        directory = build_from_shape(
            relation, ["unique1", "unique2", "unique3"], (4, 5, 6))
        assert directory.shape == (4, 5, 6)
        assert directory.total_tuples == CARD

    def test_band_resolution_middle_dimension(self, relation):
        directory = build_from_shape(
            relation, ["unique1", "unique2", "unique3"], (4, 5, 6))
        first, last = directory.slice_band("unique2", 0, CARD // 5)
        assert first == 0
        assert last <= 1
