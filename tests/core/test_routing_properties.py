"""Property-based tests: invariants every declustering strategy must hold.

These are the correctness contracts of the whole study -- if any
strategy ever routed a query past a qualifying tuple, the throughput
comparison would be meaningless.

* **Soundness**: every site holding a qualifying tuple is routed to.
* **Partition**: fragments are disjoint and cover the relation.
* **Conservation**: per-site qualifying counts sum to the global count.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BerdStrategy,
    HashStrategy,
    MagicStrategy,
    MagicTuning,
    RangePredicate,
    RangeStrategy,
)
from repro.storage import make_wisconsin

CARDINALITY = 5_000
P = 8


def all_placements():
    """One placement per strategy, on low- and high-correlation data."""
    placements = []
    for corr in ("low", "high"):
        relation = make_wisconsin(CARDINALITY, correlation=corr, seed=33)
        placements.append(RangeStrategy("unique1").partition(relation, P))
        placements.append(HashStrategy("unique1").partition(relation, P))
        placements.append(
            BerdStrategy("unique1", ["unique2"]).partition(relation, P))
        placements.append(MagicStrategy(
            ["unique1", "unique2"],
            tuning=MagicTuning(shape={"unique1": 12, "unique2": 12},
                               mi={"unique1": 2.0, "unique2": 4.0}),
        ).partition(relation, P))
    return placements


PLACEMENTS = all_placements()


predicates = st.tuples(
    st.sampled_from(["unique1", "unique2"]),
    st.integers(min_value=0, max_value=CARDINALITY - 1),
    st.integers(min_value=0, max_value=500),
).map(lambda t: RangePredicate(t[0], t[1],
                               min(t[1] + t[2], CARDINALITY - 1)))


class TestPartitionInvariants:
    @pytest.mark.parametrize("placement", PLACEMENTS,
                             ids=lambda p: type(p).__name__)
    def test_fragments_disjoint_and_complete(self, placement):
        seen = np.concatenate(
            [placement.fragment(s).rows for s in range(P)])
        assert len(seen) == CARDINALITY
        assert len(np.unique(seen)) == CARDINALITY


class TestRoutingSoundness:
    @given(predicate=predicates)
    @settings(max_examples=60, deadline=None)
    def test_every_qualifying_site_routed(self, predicate):
        for placement in PLACEMENTS:
            counts = placement.qualifying_counts(predicate)
            routed = set(placement.route(predicate).target_sites)
            for site in np.nonzero(counts)[0]:
                assert int(site) in routed, (
                    f"{type(placement).__name__} missed site {site} "
                    f"for {predicate}")

    @given(predicate=predicates)
    @settings(max_examples=60, deadline=None)
    def test_counts_conserved(self, predicate):
        relation_column_cache = {}
        for placement in PLACEMENTS:
            counts = placement.qualifying_counts(predicate)
            key = (id(placement.relation), predicate.attribute)
            if key not in relation_column_cache:
                relation_column_cache[key] = placement.relation.column(
                    predicate.attribute)
            column = relation_column_cache[key]
            expected = int(((column >= predicate.low)
                            & (column <= predicate.high)).sum())
            assert counts.sum() == expected

    @given(predicate=predicates)
    @settings(max_examples=40, deadline=None)
    def test_sites_within_machine(self, predicate):
        for placement in PLACEMENTS:
            decision = placement.route(predicate)
            for site in decision.target_sites + decision.probe_sites:
                assert 0 <= site < P

    @given(predicate=predicates)
    @settings(max_examples=40, deadline=None)
    def test_berd_probe_matches_consistent(self, predicate):
        """BERD's probe match counts must sum to the global count when
        the predicate hits the secondary attribute."""
        for placement in PLACEMENTS:
            if not hasattr(placement, "auxiliaries"):
                continue
            if predicate.attribute != "unique2":
                continue
            decision = placement.route(predicate)
            column = placement.relation.column("unique2")
            expected = int(((column >= predicate.low)
                            & (column <= predicate.high)).sum())
            assert sum(decision.probe_matches) == expected


class TestPointRouting:
    """A point query on a unique attribute has exactly one home."""

    @given(value=st.integers(min_value=0, max_value=CARDINALITY - 1),
           attribute=st.sampled_from(["unique1", "unique2"]))
    @settings(max_examples=60, deadline=None)
    def test_point_owned_by_exactly_one_site(self, value, attribute):
        predicate = RangePredicate(attribute, value, value)
        for placement in PLACEMENTS:
            counts = placement.qualifying_counts(predicate)
            # unique1/unique2 are permutations of 0..N-1: exactly one
            # tuple qualifies, living on exactly one site...
            assert counts.sum() == 1
            owner = int(np.nonzero(counts)[0][0])
            # ...and the router must include that site.
            routed = placement.route(predicate).target_sites
            assert owner in routed, (
                f"{type(placement).__name__} sent {attribute}={value} "
                f"to {routed}, owner is {owner}")


class TestConjunctionSoundness:
    @given(
        a_low=st.integers(min_value=0, max_value=CARDINALITY - 600),
        b_low=st.integers(min_value=0, max_value=CARDINALITY - 600),
        width=st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=40, deadline=None)
    def test_conjunction_routes_all_qualifying_sites(self, a_low, b_low,
                                                     width):
        preds = [RangePredicate("unique1", a_low, a_low + width),
                 RangePredicate("unique2", b_low, b_low + width)]
        for placement in PLACEMENTS:
            counts = placement.qualifying_counts_all(preds)
            routed = set(placement.route_conjunction(preds).target_sites)
            for site in np.nonzero(counts)[0]:
                assert int(site) in routed, type(placement).__name__
