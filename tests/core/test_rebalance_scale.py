"""Large-machine rebalancer behavior: pool widening, caps, termination.

The hill climber widens its candidate pool (doubling from
``candidate_processors``) when an iteration finds no improving swap.
Before the ``max_pool`` cap, a local optimum at P = 1,024 widened the
pool to the full machine and evaluated ~P^2 candidate pairs per
dimension with a fresh delta matrix each -- these tests pin the new
behavior: widening terminates after a bounded number of doublings, the
evaluated-pair and delta-build counts stay bounded, and the cap changes
nothing at the machine sizes the paper's figures use (P <= 64, where
``pool_limit`` equals ``num_sites`` either way).
"""

import numpy as np

from repro.core import (
    GridDirectory,
    entry_exchange,
    load_spread,
    rebalance_assignment,
)
from repro.core.rebalance import last_rebalance_stats


def directory_with(counts, assignment):
    counts = np.asarray(counts)
    boundaries = [np.arange(1, n) * 10 for n in counts.shape]
    return GridDirectory(["a", "b"][:counts.ndim], boundaries, counts,
                         np.asarray(assignment))


def local_optimum(num_slices):
    """A 1 x N directory whose spread (1) no slice swap can improve.

    Site loads are a permutation-invariant multiset under slice swaps,
    so every candidate pair is rejected and the pool widens to its
    limit before the climber gives up.
    """
    counts = np.ones((1, num_slices), dtype=np.int64)
    counts[0, 0] = 2
    assignment = np.arange(num_slices).reshape(1, num_slices)
    return directory_with(counts, assignment)


class TestWideningTermination:
    def test_local_optimum_terminates_at_256(self):
        d = local_optimum(256)
        before = d.assignment.copy()
        swaps = rebalance_assignment(d, 256)
        assert swaps == 0
        assert np.array_equal(d.assignment, before)
        # Pool doubles 3 -> 6 -> 12 -> 24 -> 48 -> 64 (max_pool cap),
        # then the climber stops: bounded widenings, bounded work.
        assert last_rebalance_stats["widenings"] <= 6
        assert last_rebalance_stats["pairs_evaluated"] <= 64 * 64
        assert last_rebalance_stats["delta_builds"] <= 4 * 64 * 2

    def test_local_optimum_terminates_at_1024_with_capped_pool(self):
        # 64 occupied sites on a 1,024-site machine: the pool cap keeps
        # the search over the 64 heaviest/lightest, not all 1,024.
        d = local_optimum(64)
        swaps = rebalance_assignment(d, 1024)
        assert swaps == 0
        assert last_rebalance_stats["widenings"] <= 6
        assert last_rebalance_stats["pairs_evaluated"] <= 2 * 64 * 64

    def test_uncapped_widening_still_terminates(self):
        d = local_optimum(256)
        swaps = rebalance_assignment(d, 256, max_pool=None)
        assert swaps == 0
        # Doubling from 3 reaches 256 within 8 widenings; the rejected-
        # pair cache keeps total evaluations ~P^2, not widenings * P^2.
        assert last_rebalance_stats["widenings"] <= 8
        assert last_rebalance_stats["pairs_evaluated"] <= 2 * 256 * 256

    def test_perfectly_balanced_short_circuits(self):
        counts = np.ones((64, 32), dtype=np.int64)
        assignment = (np.arange(64 * 32) % 1024).reshape(64, 32)
        d = directory_with(counts, assignment)
        swaps = rebalance_assignment(d, 1024)
        assert swaps == 0
        assert last_rebalance_stats["iterations"] == 1
        assert last_rebalance_stats["widenings"] == 0
        assert entry_exchange(d, 1024) == 0


class TestPoolCapSemantics:
    def test_cap_is_inert_at_paper_machine_sizes(self):
        # P <= max_pool: pool_limit == num_sites with or without the
        # cap, so results (swap count AND final assignment) match.
        for seed in range(4):
            rng = np.random.default_rng(seed)
            shape = tuple(rng.integers(5, 25, 2))
            counts = rng.integers(0, 60, shape)
            assignment = rng.integers(0, 32, shape)
            capped = directory_with(counts, assignment.copy())
            uncapped = directory_with(counts, assignment.copy())
            s_capped = rebalance_assignment(capped, 32)
            s_uncapped = rebalance_assignment(uncapped, 32, max_pool=None)
            assert s_capped == s_uncapped
            assert np.array_equal(capped.assignment, uncapped.assignment)

    def test_stats_dict_is_stable_identity(self):
        before = last_rebalance_stats
        rebalance_assignment(local_optimum(16), 16)
        assert last_rebalance_stats is before


class TestLargeMachineInvariants:
    def test_spread_never_increases_at_512(self):
        rng = np.random.default_rng(21)
        counts = rng.integers(0, 50, size=(40, 40))
        assignment = rng.integers(0, 512, size=(40, 40))
        d = directory_with(counts, assignment)
        before = load_spread(d.tuples_per_site(512))
        total_before = d.tuples_per_site(512).sum()
        rebalance_assignment(d, 512)
        entry_exchange(d, 512)
        assert load_spread(d.tuples_per_site(512)) <= before
        assert d.tuples_per_site(512).sum() == total_before
