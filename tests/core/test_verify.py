"""Tests for the placement verification diagnostics."""

import numpy as np
import pytest

from repro.core import (
    BerdStrategy,
    MagicStrategy,
    MagicTuning,
    RangeStrategy,
    verify_placement,
)
from repro.core.strategy import Placement, RangePredicate, RoutingDecision
from repro.storage import make_wisconsin


@pytest.fixture(scope="module")
def relation():
    return make_wisconsin(10_000, correlation="low", seed=100)


class TestHealthyPlacements:
    def test_range_placement_ok(self, relation):
        placement = RangeStrategy("unique1").partition(relation, 8)
        report = verify_placement(placement, samples=20)
        assert report.ok
        assert report.load_factor == pytest.approx(1.0, abs=0.05)
        assert report.empty_site_fraction == 0.0
        # Routing on the partitioning attribute localizes, the other
        # broadcasts.
        assert report.avg_processors["unique1"] < 3
        assert report.avg_processors["unique2"] == 8.0

    def test_berd_placement_ok(self, relation):
        placement = BerdStrategy("unique1", ["unique2"]).partition(
            relation, 8)
        report = verify_placement(placement, samples=20)
        assert report.ok
        assert report.avg_processors["unique2"] < 8.0

    def test_magic_reports_slice_diversity(self, relation):
        placement = MagicStrategy(
            ["unique1", "unique2"],
            tuning=MagicTuning(shape={"unique1": 16, "unique2": 16},
                               mi={"unique1": 2.0, "unique2": 4.0}),
        ).partition(relation, 8)
        report = verify_placement(placement, samples=20)
        assert report.ok
        assert report.slice_diversity["unique1"] == pytest.approx(2.0,
                                                                  abs=0.6)
        assert report.slice_diversity["unique2"] == pytest.approx(4.0,
                                                                  abs=0.6)
        assert "OK" in report.summary()

    def test_sample_count_recorded(self, relation):
        placement = RangeStrategy("unique1").partition(relation, 4)
        report = verify_placement(placement, samples=15)
        assert report.sampled_predicates == 2 * 15  # two attributes


class _BrokenPlacement(Placement):
    """A placement that deliberately misroutes (for negative testing)."""

    def route(self, predicate):
        return RoutingDecision(target_sites=(0,))  # always site 0 only


class TestBrokenPlacements:
    def test_misrouting_detected(self, relation):
        fragments = RangeStrategy("unique1").partition(relation, 4).fragments
        broken = _BrokenPlacement(relation, fragments)
        report = verify_placement(broken, attributes=["unique1"],
                                  samples=20)
        assert not report.ok
        assert any("missed sites" in p for p in report.problems)
        assert "BROKEN" in report.summary()

    def test_overlapping_fragments_detected(self, relation):
        good = RangeStrategy("unique1").partition(relation, 4)
        rows = [f.rows for f in good.fragments]
        # Duplicate some tuples into two fragments -- bypass the
        # constructor's own check by mutating afterwards.
        placement = RangeStrategy("unique1").partition(relation, 4)
        placement._fragments[0] = relation.fragment(
            np.concatenate([rows[0], rows[1][:5]]), site=0)
        report = verify_placement(placement, attributes=["unique1"],
                                  samples=5)
        assert not report.ok
        assert any("fragments" in p for p in report.problems)

    def test_invalid_samples(self, relation):
        placement = RangeStrategy("unique1").partition(relation, 4)
        with pytest.raises(ValueError):
            verify_placement(placement, samples=0)
