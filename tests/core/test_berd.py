"""Unit tests for BERD declustering (paper §2)."""

import numpy as np
import pytest

from repro.core import BerdStrategy, RangePredicate
from repro.storage import make_wisconsin

P = 8


@pytest.fixture(scope="module")
def low_corr_relation():
    return make_wisconsin(cardinality=10_000, correlation="low", seed=2)


@pytest.fixture(scope="module")
def high_corr_relation():
    return make_wisconsin(cardinality=10_000, correlation="high", seed=2)


@pytest.fixture(scope="module")
def placement(low_corr_relation):
    return BerdStrategy("unique1", ["unique2"]).partition(low_corr_relation, P)


class TestConstruction:
    def test_is_a_partition(self, low_corr_relation, placement):
        assert sum(f.cardinality for f in placement.fragments) == \
            low_corr_relation.cardinality

    def test_primary_fragments_are_ranges(self, placement):
        last_hi = None
        for site in range(P):
            mn, mx = placement.fragment(site).min_max("unique1")
            if last_hi is not None:
                assert mn > last_hi
            last_hi = mx

    def test_aux_cardinalities_cover_relation(self, low_corr_relation,
                                              placement):
        total = sum(placement.aux_cardinality("unique2", s) for s in range(P))
        assert total == low_corr_relation.cardinality

    def test_aux_cardinalities_balanced(self, placement):
        cards = [placement.aux_cardinality("unique2", s) for s in range(P)]
        assert max(cards) - min(cards) <= 2

    def test_primary_as_secondary_rejected(self):
        with pytest.raises(ValueError):
            BerdStrategy("a", ["a", "b"])

    def test_requires_secondary(self):
        with pytest.raises(ValueError):
            BerdStrategy("a", [])


class TestRouting:
    def test_primary_query_single_phase(self, placement):
        decision = placement.route(RangePredicate("unique1", 0, 50))
        assert not decision.is_two_phase
        assert decision.target_sites == (0,)

    def test_secondary_query_is_two_phase(self, placement):
        decision = placement.route(RangePredicate("unique2", 100, 109))
        assert decision.is_two_phase
        # A 10-value range lives in one aux fragment almost surely.
        assert len(decision.probe_sites) == 1
        assert sum(decision.probe_matches) == 10

    def test_secondary_query_targets_are_exact(self, low_corr_relation,
                                               placement):
        pred = RangePredicate("unique2", 5_000, 5_019)
        decision = placement.route(pred)
        counts = placement.qualifying_counts(pred)
        expected = {s for s in range(P) if counts[s] > 0}
        assert set(decision.target_sites) == expected

    def test_low_correlation_scatters_targets(self, placement):
        """§2: 10 qualifying tuples land on ~10 distinct processors
        (bounded by P here)."""
        widths = []
        for lo in range(0, 5000, 500):
            decision = placement.route(RangePredicate("unique2", lo, lo + 9))
            widths.append(len(decision.target_sites))
        assert np.mean(widths) > 0.6 * P

    def test_high_correlation_localizes(self, high_corr_relation):
        """§4: under high correlation the qualifying tuples co-locate with
        the aux fragment, localizing execution."""
        placement = BerdStrategy("unique1", ["unique2"]).partition(
            high_corr_relation, P)
        widths = []
        for lo in range(100, 9000, 1000):
            decision = placement.route(RangePredicate("unique2", lo, lo + 9))
            widths.append(decision.site_count)
        assert np.mean(widths) <= 2.5

    def test_unindexed_attribute_broadcasts(self, placement):
        decision = placement.route(RangePredicate("ten", 1, 1))
        assert decision.target_sites == tuple(range(P))
        assert not decision.used_partitioning

    def test_no_qualifying_tuples_empty_targets(self, placement):
        decision = placement.route(RangePredicate("unique2", 100_000, 200_000))
        assert decision.target_sites == ()
        assert decision.is_two_phase  # the probe still happens

    def test_probe_matches_split_across_probe_sites(self, placement):
        # A range spanning an aux boundary probes two sites; the per-site
        # match counts must sum to the total matches.
        bound = int(placement.auxiliaries["unique2"].boundaries[0])
        decision = placement.route(
            RangePredicate("unique2", bound - 5, bound + 5))
        assert len(decision.probe_sites) == 2
        assert sum(decision.probe_matches) == 11
