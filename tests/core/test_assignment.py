"""Unit tests for the entry-to-processor assignment heuristics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    assign_entries,
    block_assignment,
    factor_slice_targets,
    optimal_assignment,
    pattern_moduli,
    round_robin_assignment,
    scale_slice_targets,
)


class TestFactorSliceTargets:
    def test_low_moderate_case_from_paper(self):
        """§7.2: (M_A, M_B) = (1, 9) on 32 processors -> (2, 16)."""
        assert factor_slice_targets([1.0, 9.0], 32) == (2, 16)

    def test_symmetric_mixes_give_4_8(self):
        """§7.1/§7.4: equal M_i on 32 processors -> (4, 8), averaging
        ~6.4 processors per query, the larger count on the later dim."""
        assert factor_slice_targets([5.0, 5.0], 32) == (4, 8)
        assert factor_slice_targets([9.0, 9.0], 32) == (4, 8)

    def test_moderate_low_transposed(self):
        assert factor_slice_targets([9.0, 1.0], 32) == (16, 2)

    def test_product_always_p(self):
        for mi in ([1, 1], [2, 5], [0.5, 12], [3, 3]):
            targets = factor_slice_targets(mi, 32)
            assert np.prod(targets) == 32

    def test_three_dimensions(self):
        targets = factor_slice_targets([3.0, 3.0, 3.0], 27)
        assert targets == (3, 3, 3)

    def test_prime_processor_count(self):
        targets = factor_slice_targets([2.0, 2.0], 7)
        assert np.prod(targets) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            factor_slice_targets([], 4)
        with pytest.raises(ValueError):
            factor_slice_targets([1.0], 0)


class TestScaleSliceTargets:
    def test_low_moderate_case_from_paper(self):
        """§7.2: (M_A, M_B) = (1, 9) on 32 processors becomes ~(2, 16)."""
        ta, tb = scale_slice_targets([1.0, 9.0], 32)
        assert ta in (2, 3)
        assert 14 <= tb <= 18
        assert ta * tb >= 32

    def test_moderate_moderate_case_from_paper(self):
        """§7.4: (9, 9) on 32 processors -> about (6, 6)."""
        ta, tb = scale_slice_targets([9.0, 9.0], 32)
        assert 5 <= ta <= 7
        assert 5 <= tb <= 7

    def test_large_mi_on_small_machine_shrinks_to_cover(self):
        # (9, 9) on 4 processors: the pattern only needs product >= P.
        targets = scale_slice_targets([9.0, 9.0], 4)
        assert targets == (2, 2)

    def test_product_covers_machine(self):
        for mi in ([1, 1], [2, 5], [3, 3, 3], [0.5, 12]):
            targets = scale_slice_targets(mi, 32)
            assert np.prod(targets) >= 32

    def test_validation(self):
        with pytest.raises(ValueError):
            scale_slice_targets([], 4)
        with pytest.raises(ValueError):
            scale_slice_targets([1.0], 0)


class TestPatternModuli:
    def test_two_dims_swap(self):
        assert pattern_moduli((2, 16)) == (16, 2)

    def test_one_dim_identity(self):
        assert pattern_moduli((5,)) == (5,)

    def test_three_dims_product_constraint(self):
        targets = (4, 4, 4)
        moduli = pattern_moduli(targets)
        for d in range(3):
            others = int(np.prod([m for e, m in enumerate(moduli) if e != d]))
            assert others == pytest.approx(targets[d], abs=1)


class TestBlockAssignment:
    def test_slice_diversity_two_dims(self):
        # targets: 4 procs per a-slice, 8 per b-slice -> moduli (8, 4).
        assign = block_assignment((40, 40), (8, 4), 32)
        for ia in range(40):
            assert len(np.unique(assign[ia, :])) == 4
        for ib in range(40):
            assert len(np.unique(assign[:, ib])) == 8

    def test_uses_whole_machine(self):
        assign = block_assignment((40, 40), (8, 4), 32)
        assert len(np.unique(assign)) == 32

    def test_entry_balance_reasonable(self):
        assign = block_assignment((62, 61), (8, 4), 32)
        counts = np.bincount(assign.ravel(), minlength=32)
        assert counts.min() > 0
        assert counts.max() <= 1.4 * counts.mean()

    def test_paper_low_moderate_pattern(self):
        """23x193 grid, targets (2, 16) -> moduli (16, 2): each a-slice
        ~2 procs, each b-slice ~16 procs."""
        assign = block_assignment((23, 193), (16, 2), 32)
        a_slice_procs = [len(np.unique(assign[i, :])) for i in range(23)]
        b_slice_procs = [len(np.unique(assign[:, j])) for j in range(193)]
        assert max(a_slice_procs) == 2
        assert 14 <= np.mean(b_slice_procs) <= 16

    def test_shape_moduli_mismatch_rejected(self):
        with pytest.raises(ValueError):
            block_assignment((4, 4), (2,), 8)


class TestRoundRobin:
    def test_cyclic(self):
        assert round_robin_assignment(7, 3).tolist() == [0, 1, 2, 0, 1, 2, 0]

    def test_balanced(self):
        counts = np.bincount(round_robin_assignment(100, 8), minlength=8)
        assert counts.max() - counts.min() <= 1


class TestAssignEntries:
    def test_one_dimension_round_robin(self):
        assign = assign_entries((10,), [3.0], 4)
        assert assign.tolist() == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]

    def test_moduli_clamped_to_shape(self):
        # 3 slices cannot host a modulus of 16.
        assign = assign_entries((3, 100), [1.0, 9.0], 32)
        assert assign.shape == (3, 100)

    @given(
        na=st.integers(min_value=2, max_value=40),
        nb=st.integers(min_value=2, max_value=40),
        mi_a=st.floats(min_value=0.5, max_value=10),
        mi_b=st.floats(min_value=0.5, max_value=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_assignment_properties(self, na, nb, mi_a, mi_b):
        p = 16
        assign = assign_entries((na, nb), [mi_a, mi_b], p)
        assert assign.shape == (na, nb)
        assert assign.min() >= 0
        assert assign.max() < p
        # Slice diversity never exceeds the machine or the slice width.
        for ia in range(na):
            assert len(np.unique(assign[ia, :])) <= min(p, nb)


class TestOptimalAssignment:
    def test_uniform_grid_perfectly_balanced(self):
        counts = np.ones((2, 2), dtype=np.int64)
        assign = optimal_assignment(counts, 4)
        weights = np.bincount(assign.ravel(), minlength=4)
        assert weights.max() - weights.min() == 0

    def test_skewed_grid(self):
        counts = np.array([[10, 0], [0, 10]])
        assign = optimal_assignment(counts, 2)
        weights = np.bincount(assign.ravel(),
                              weights=counts.ravel(), minlength=2)
        assert weights.max() - weights.min() == 0

    def test_heuristic_plus_rebalance_close_to_optimal(self):
        from repro.core import GridDirectory, rebalance_assignment

        counts = np.full((3, 3), 7, dtype=np.int64)
        optimal = optimal_assignment(counts, 3)
        opt_weights = np.bincount(optimal.ravel(),
                                  weights=counts.ravel(), minlength=3)
        heur = assign_entries((3, 3), [2.0, 2.0], 3)
        d = GridDirectory(["a", "b"],
                          [np.array([10, 20]), np.array([10, 20])],
                          counts, heur)
        rebalance_assignment(d, 3)
        heur_weights = d.tuples_per_site(3)
        spread_opt = opt_weights.max() - opt_weights.min()
        spread_heur = heur_weights.max() - heur_weights.min()
        assert spread_heur <= spread_opt + 7  # within one entry's weight

    def test_search_space_limit(self):
        with pytest.raises(ValueError):
            optimal_assignment(np.ones((4, 4)), 8)
