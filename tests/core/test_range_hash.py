"""Unit tests for range and hash declustering."""

import numpy as np
import pytest

from repro.core import HashStrategy, RangePredicate, RangeStrategy
from repro.storage import make_wisconsin


@pytest.fixture(scope="module")
def relation():
    return make_wisconsin(cardinality=10_000, correlation="low", seed=1)


@pytest.fixture(scope="module")
def range_placement(relation):
    return RangeStrategy("unique1").partition(relation, 8)


class TestRangePartitioning:
    def test_is_a_partition(self, relation, range_placement):
        total = sum(f.cardinality for f in range_placement.fragments)
        assert total == relation.cardinality

    def test_balanced_fragments(self, range_placement):
        cards = range_placement.cardinalities()
        assert cards.max() - cards.min() <= 2

    def test_fragments_are_contiguous_ranges(self, range_placement):
        highs = []
        for site in range(range_placement.num_sites):
            mn, mx = range_placement.fragment(site).min_max("unique1")
            if highs:
                assert mn > highs[-1]
            highs.append(mx)

    def test_route_on_partitioning_attribute_localizes(self, range_placement):
        decision = range_placement.route(RangePredicate("unique1", 0, 10))
        assert decision.target_sites == (0,)
        assert decision.used_partitioning

    def test_route_spanning_predicate(self, range_placement):
        # Half the domain -> about half the sites.
        decision = range_placement.route(RangePredicate("unique1", 0, 4999))
        assert 3 <= len(decision.target_sites) <= 5

    def test_route_other_attribute_broadcasts(self, range_placement):
        decision = range_placement.route(RangePredicate("unique2", 0, 10))
        assert decision.target_sites == tuple(range(8))
        assert not decision.used_partitioning

    def test_routing_is_sound(self, relation, range_placement):
        """Every qualifying tuple lives on a routed site."""
        pred = RangePredicate("unique1", 2_000, 2_500)
        counts = range_placement.qualifying_counts(pred)
        routed = set(range_placement.route(pred).target_sites)
        for site, count in enumerate(counts):
            if count > 0:
                assert site in routed
        assert counts.sum() == 501

    def test_explicit_boundaries(self, relation):
        strategy = RangeStrategy(
            "unique1", boundaries=np.array([4999]))
        placement = strategy.partition(relation, 2)
        assert placement.fragment(0).min_max("unique1")[1] <= 4999

    def test_wrong_boundary_count_rejected(self, relation):
        strategy = RangeStrategy("unique1", boundaries=np.array([1, 2]))
        with pytest.raises(ValueError):
            strategy.partition(relation, 2)

    def test_bad_site_count_rejected(self, relation):
        with pytest.raises(ValueError):
            RangeStrategy("unique1").partition(relation, 0)


class TestHashPartitioning:
    @pytest.fixture(scope="class")
    def placement(self, relation):
        return HashStrategy("unique1").partition(relation, 8)

    def test_is_a_partition(self, relation, placement):
        assert sum(f.cardinality for f in placement.fragments) == \
            relation.cardinality

    def test_roughly_balanced(self, placement):
        cards = placement.cardinalities()
        assert cards.min() > 0.8 * cards.mean()
        assert cards.max() < 1.2 * cards.mean()

    def test_equality_routes_to_single_site(self, relation, placement):
        decision = placement.route(RangePredicate.equals("unique1", 1234))
        assert len(decision.target_sites) == 1
        # ... and it is the right site.
        site = decision.target_sites[0]
        assert placement.fragment(site).count_in_range(
            "unique1", 1234, 1234) == 1

    def test_range_predicate_broadcasts(self, placement):
        decision = placement.route(RangePredicate("unique1", 0, 10))
        assert decision.target_sites == tuple(range(8))

    def test_other_attribute_broadcasts(self, placement):
        decision = placement.route(RangePredicate.equals("unique2", 5))
        assert len(decision.target_sites) == 8
        assert not decision.used_partitioning
