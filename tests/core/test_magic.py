"""Unit and integration tests for the MAGIC strategy end-to-end."""

import numpy as np
import pytest

from repro.core import (
    MagicCostModel,
    MagicStrategy,
    MagicTuning,
    QueryProfile,
    RangePredicate,
)
from repro.storage import make_wisconsin

P = 32


@pytest.fixture(scope="module")
def relation():
    return make_wisconsin(cardinality=100_000, correlation="low", seed=13)


@pytest.fixture(scope="module")
def high_corr_relation():
    return make_wisconsin(cardinality=100_000, correlation="high", seed=13)


def pinned_strategy(shape=(62, 61), mi=(5.0, 5.0)):
    return MagicStrategy(
        ["unique1", "unique2"],
        tuning=MagicTuning(
            shape={"unique1": shape[0], "unique2": shape[1]},
            mi={"unique1": mi[0], "unique2": mi[1]}))


@pytest.fixture(scope="module")
def placement(relation):
    return pinned_strategy().partition(relation, P)


class TestConstruction:
    def test_is_a_partition(self, relation, placement):
        assert sum(f.cardinality for f in placement.fragments) == \
            relation.cardinality

    def test_directory_shape(self, placement):
        assert placement.directory.shape == (62, 61)

    def test_tuple_loads_balanced(self, placement):
        cards = placement.cardinalities()
        assert cards.max() <= 1.3 * cards.mean()
        assert cards.min() >= 0.7 * cards.mean()

    def test_fragments_match_directory_weights(self, placement):
        weights = placement.directory.tuples_per_site(P)
        assert np.array_equal(weights, placement.cardinalities())

    def test_small_directory_one_entry_per_site(self, relation):
        strategy = pinned_strategy(shape=(4, 4), mi=(2.0, 2.0))
        small = strategy.partition(relation, P)
        assert small.directory.num_entries == 16
        assignment = small.directory.assignment
        assert len(np.unique(assignment)) == 16

    def test_requires_cost_model_or_full_tuning(self):
        with pytest.raises(ValueError):
            MagicStrategy(["a", "b"])
        with pytest.raises(ValueError):
            MagicStrategy(["a"], tuning=MagicTuning(shape={"a": 4}))

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ValueError):
            MagicStrategy(["a", "a"],
                          tuning=MagicTuning(shape={"a": 2}, mi={"a": 1}))


class TestRouting:
    def test_query_on_a_uses_column_sites(self, placement):
        decision = placement.route(RangePredicate.equals("unique1", 41_017))
        assert 1 <= len(decision.target_sites) <= 10
        assert decision.used_partitioning

    def test_query_on_b_uses_row_sites(self, placement):
        decision = placement.route(RangePredicate("unique2", 500, 509))
        assert 1 <= len(decision.target_sites) <= 10

    def test_unpartitioned_attribute_broadcasts(self, placement):
        decision = placement.route(RangePredicate("ten", 3, 3))
        assert decision.target_sites == tuple(range(P))
        assert not decision.used_partitioning

    def test_routing_is_sound(self, relation, placement):
        for pred in [RangePredicate("unique1", 10_000, 10_029),
                     RangePredicate("unique2", 77_000, 77_299),
                     RangePredicate.equals("unique1", 5)]:
            counts = placement.qualifying_counts(pred)
            routed = set(placement.route(pred).target_sites)
            for site, count in enumerate(counts):
                if count > 0:
                    assert site in routed, (pred, site)

    def test_average_processor_counts_sensible(self, placement):
        """Low-low tuning on low correlation: both query types should use a
        handful of processors, far below range partitioning's 16.5."""
        rng = np.random.default_rng(0)
        widths_a, widths_b = [], []
        for _ in range(50):
            v = int(rng.integers(0, 100_000))
            widths_a.append(len(placement.route(
                RangePredicate.equals("unique1", v)).target_sites))
            lo = int(rng.integers(0, 99_990))
            widths_b.append(len(placement.route(
                RangePredicate("unique2", lo, lo + 9)).target_sites))
        avg = (np.mean(widths_a) + np.mean(widths_b)) / 2
        assert 3 <= avg <= 10

    def test_high_correlation_localizes_queries(self, high_corr_relation):
        """§4: correlated attributes + empty-entry pruning localize both
        query types to very few processors."""
        placement = pinned_strategy().partition(high_corr_relation, P)
        rng = np.random.default_rng(1)
        widths = []
        for _ in range(50):
            lo = int(rng.integers(0, 99_990))
            widths.append(len(placement.route(
                RangePredicate("unique2", lo, lo + 9)).target_sites))
        assert np.mean(widths) <= 2.5


class TestCostModelDriven:
    def test_partition_from_cost_model(self, relation):
        profiles = [
            QueryProfile("qa", "unique1", tuples=1, cpu_seconds=0.003,
                         disk_seconds=0.03, net_seconds=0.002, frequency=0.5),
            QueryProfile("qb", "unique2", tuples=10, cpu_seconds=0.01,
                         disk_seconds=0.03, net_seconds=0.002, frequency=0.5),
        ]
        model = MagicCostModel(profiles, cost_of_participation=0.005,
                               directory_search_cost=2e-7,
                               relation_cardinality=relation.cardinality)
        strategy = MagicStrategy(["unique1", "unique2"], cost_model=model)
        placement = strategy.partition(relation, P)
        assert sum(f.cardinality for f in placement.fragments) == \
            relation.cardinality
        # Derived directory should have a few thousand entries at most.
        assert P <= placement.directory.num_entries <= 50_000

    def test_dynamic_gridfile_build(self):
        rel = make_wisconsin(cardinality=5_000, correlation="low", seed=14)
        profiles = [
            QueryProfile("qa", "unique1", tuples=5, cpu_seconds=0.01,
                         disk_seconds=0.05, net_seconds=0.0, frequency=1.0),
            QueryProfile("qb", "unique2", tuples=5, cpu_seconds=0.01,
                         disk_seconds=0.05, net_seconds=0.0, frequency=1.0),
        ]
        model = MagicCostModel(profiles, 0.005, 1e-7, rel.cardinality)
        strategy = MagicStrategy(
            ["unique1", "unique2"], cost_model=model,
            tuning=MagicTuning(dynamic_gridfile=True))
        placement = strategy.partition(rel, 8)
        assert sum(f.cardinality for f in placement.fragments) == \
            rel.cardinality
