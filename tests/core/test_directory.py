"""Unit tests for the grid directory."""

import numpy as np
import pytest

from repro.core import GridDirectory, RangePredicate


def small_directory(with_assignment=True):
    """3x4 directory over attributes a (rows) and b (columns).

    a-boundaries [10, 20]: slices (-inf,10], (10,20], (20,inf)
    b-boundaries [5, 10, 15].
    """
    counts = np.array([
        [5, 0, 3, 2],
        [1, 4, 0, 0],
        [0, 0, 7, 8],
    ])
    assignment = np.array([
        [0, 1, 2, 3],
        [1, 2, 3, 0],
        [2, 3, 0, 1],
    ])
    return GridDirectory(
        ["a", "b"],
        [np.array([10, 20]), np.array([5, 10, 15])],
        counts,
        assignment if with_assignment else None)


class TestConstruction:
    def test_shape_and_totals(self):
        d = small_directory()
        assert d.shape == (3, 4)
        assert d.num_entries == 12
        assert d.total_tuples == 30
        assert d.ndim == 2

    def test_dimension_of(self):
        d = small_directory()
        assert d.dimension_of("a") == 0
        assert d.dimension_of("b") == 1
        with pytest.raises(KeyError):
            d.dimension_of("c")

    def test_boundary_slice_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GridDirectory(["a"], [np.array([1, 2])], np.zeros(2))

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(ValueError):
            GridDirectory(["a"], [np.array([5, 1, 9])], np.zeros(4))

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ValueError):
            GridDirectory(["a", "a"],
                          [np.array([1]), np.array([1])],
                          np.zeros((2, 2)))

    def test_assignment_shape_checked(self):
        d = small_directory(with_assignment=False)
        with pytest.raises(ValueError):
            d.set_assignment(np.zeros((2, 2)))


class TestPredicateResolution:
    def test_slice_band_on_rows(self):
        d = small_directory()
        assert d.slice_band("a", 0, 9) == (0, 0)
        assert d.slice_band("a", 15, 15) == (1, 1)
        assert d.slice_band("a", 5, 25) == (0, 2)
        # boundary value belongs to the left slice
        assert d.slice_band("a", 10, 10) == (0, 0)

    def test_entries_covered(self):
        d = small_directory()
        assert d.entries_covered(RangePredicate("a", 15, 15)) == 4
        assert d.entries_covered(RangePredicate("b", 0, 100)) == 12

    def test_sites_for_prunes_empty_entries(self):
        d = small_directory()
        # Row a=1 has counts [1, 4, 0, 0] on sites [1, 2, 3, 0]:
        # pruning empties leaves sites {1, 2}.
        sites = d.sites_for(RangePredicate("a", 15, 15))
        assert sites == (1, 2)

    def test_sites_for_without_pruning(self):
        d = small_directory()
        sites = d.sites_for(RangePredicate("a", 15, 15), prune_empty=False)
        assert sites == (0, 1, 2, 3)

    def test_sites_for_column_band(self):
        d = small_directory()
        # b in (10, 15] -> column 2: counts [3, 0, 7], sites [2, 3, 0].
        sites = d.sites_for(RangePredicate("b", 11, 15))
        assert sites == (0, 2)

    def test_sites_requires_assignment(self):
        d = small_directory(with_assignment=False)
        with pytest.raises(RuntimeError):
            d.sites_for(RangePredicate("a", 0, 1))


class TestStatistics:
    def test_entries_per_site(self):
        d = small_directory()
        assert d.entries_per_site(4).tolist() == [3, 3, 3, 3]

    def test_tuples_per_site(self):
        d = small_directory()
        weights = d.tuples_per_site(4)
        assert weights.sum() == 30
        # site 0: entries (0,0)=5, (1,3)=0, (2,2)=7 -> 12
        assert weights[0] == 12

    def test_distinct_sites_per_slice(self):
        d = small_directory()
        assert d.distinct_sites_per_slice("a") == [4, 4, 4]
        assert d.distinct_sites_per_slice("b") == [3, 3, 3, 3]

    def test_describe_mentions_shape(self):
        assert "3x4" in small_directory().describe()


def random_directory(seed, num_sites=8, ndim=2):
    rng = np.random.default_rng(seed)
    shape = tuple(rng.integers(2, 9, ndim))
    counts = rng.integers(0, 20, shape)
    assignment = rng.integers(0, num_sites, shape)
    names = ["a", "b", "c"][:ndim]
    boundaries = [np.arange(1, n) * 10 for n in shape]
    return GridDirectory(names, boundaries, counts, assignment)


def naive_distinct(assignment, dim):
    moved = np.moveaxis(assignment, dim, 0)
    return [len(np.unique(moved[i])) for i in range(moved.shape[0])]


class TestDistinctSitesVectorized:
    """The sort-based distinct count must match the np.unique loop."""

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_unique_loop_2d(self, seed):
        d = random_directory(seed)
        for dim, attr in enumerate(d.attributes):
            assert (d.distinct_sites_per_slice(attr)
                    == naive_distinct(d.assignment, dim))

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_unique_loop_3d(self, seed):
        d = random_directory(seed, ndim=3)
        for dim, attr in enumerate(d.attributes):
            assert (d.distinct_sites_per_slice(attr)
                    == naive_distinct(d.assignment, dim))

    def test_degenerate_single_slice(self):
        d = GridDirectory(["a", "b"], [np.array([]), np.array([])],
                          np.array([[3]]), np.array([[2]]))
        assert d.distinct_sites_per_slice("a") == [1]
        assert d.distinct_sites_per_slice("b") == [1]


class TestSliceOwnerTracker:
    def test_initial_counts_match_directory(self):
        d = small_directory()
        for attr, dim in (("a", 0), ("b", 1)):
            tracker = d.owner_tracker(attr, 4)
            assert (tracker.distinct_counts().tolist()
                    == d.distinct_sites_per_slice(attr))

    @pytest.mark.parametrize("seed", range(6))
    def test_distinct_with_matches_naive(self, seed):
        d = random_directory(seed)
        tracker = d.owner_tracker("a", 8)
        moved = d.assignment
        n = moved.shape[0]
        for site in range(8):
            got = tracker.distinct_with(np.arange(n), site)
            want = [len(np.unique(np.append(moved[i].ravel(), site)))
                    for i in range(n)]
            assert got.tolist() == want

    @pytest.mark.parametrize("seed", range(6))
    def test_moves_match_rebuild(self, seed):
        rng = np.random.default_rng(seed + 100)
        d = random_directory(seed)
        tracker = d.owner_tracker("b", 8)
        assignment = d.assignment
        for _ in range(25):
            i = rng.integers(0, assignment.shape[0])
            j = rng.integers(0, assignment.shape[1])
            new_site = int(rng.integers(0, 8))
            old_site = int(assignment[i, j])
            assignment[i, j] = new_site
            tracker.move(j, old_site, new_site)
        fresh = d.owner_tracker("b", 8)
        assert np.array_equal(tracker.counts, fresh.counts)
        assert np.array_equal(tracker.distinct_counts(),
                              fresh.distinct_counts())
