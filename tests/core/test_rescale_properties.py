"""Property-based tests (hypothesis) for elastic rescaling.

Three invariants hold for every strategy, relation and growth step:

* ownership stays a partition -- after a rescale every tuple lives on
  exactly one site, and every site id is within the new machine;
* point queries route to the owner -- an equality predicate on the
  partitioning attribute always targets the site that
  ``site_for_tuple`` reports for a matching tuple;
* movement respects the style's a-priori bound (and is always better
  than the naive full re-partition).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BerdStrategy,
    HashStrategy,
    MagicStrategy,
    MagicTuning,
    RangePredicate,
    RangeStrategy,
)
from repro.dynamics import rescale_placement
from repro.dynamics.rescale import placement_sites
from repro.storage import make_wisconsin

ATTR_A = "unique1"
ATTR_B = "unique2"


def _build(strategy_name: str):
    if strategy_name == "range":
        return RangeStrategy(ATTR_A)
    if strategy_name == "hash":
        return HashStrategy(ATTR_A)
    if strategy_name == "berd":
        return BerdStrategy(ATTR_A, [ATTR_B])
    return MagicStrategy(
        (ATTR_A, ATTR_B),
        tuning=MagicTuning(shape={ATTR_A: 10, ATTR_B: 10},
                           mi={ATTR_A: 4.0, ATTR_B: 4.0}))


grown_cases = st.tuples(
    st.sampled_from(["range", "hash", "berd", "magic"]),
    st.integers(min_value=400, max_value=1200),   # cardinality
    st.sampled_from([4, 8, 16]),                  # old sites
    st.integers(min_value=1, max_value=16),       # growth delta
    st.integers(min_value=0, max_value=3),        # seed
).filter(lambda c: c[2] + c[3] <= 2 * c[2])       # hash: P' <= 2P


@given(case=grown_cases)
@settings(max_examples=25, deadline=None)
def test_rescale_keeps_ownership_a_partition(case):
    name, cardinality, old_sites, delta, seed = case
    relation = make_wisconsin(cardinality, seed=seed)
    placement = _build(name).partition(relation, old_sites)
    rescaled, report = rescale_placement(placement, old_sites + delta)

    assert rescaled.num_sites == old_sites + delta
    covered = np.concatenate([f.rows for f in rescaled.fragments])
    assert len(covered) == cardinality
    assert len(np.unique(covered)) == cardinality  # no tuple twice
    sites = placement_sites(rescaled)
    assert sites.min() >= 0 and sites.max() < old_sites + delta


@given(case=grown_cases, probe=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_point_queries_route_to_the_owner(case, probe):
    name, cardinality, old_sites, delta, seed = case
    relation = make_wisconsin(cardinality, seed=seed)
    placement = _build(name).partition(relation, old_sites)
    rescaled, _ = rescale_placement(placement, old_sites + delta)

    value = int(relation.column(ATTR_A)[probe % cardinality])
    owner = rescaled.site_for_tuple({ATTR_A: value, ATTR_B: value})
    decision = rescaled.route(RangePredicate(ATTR_A, value, value))
    assert owner in decision.target_sites


@given(case=grown_cases)
@settings(max_examples=25, deadline=None)
def test_movement_respects_the_style_bound(case):
    name, cardinality, old_sites, delta, seed = case
    relation = make_wisconsin(cardinality, seed=seed)
    placement = _build(name).partition(relation, old_sites)
    before = placement_sites(placement)
    rescaled, report = rescale_placement(placement, old_sites + delta)

    measured = int(np.count_nonzero(before != placement_sites(rescaled)))
    assert report.tuples_moved == measured
    assert report.tuples_moved <= report.movement_bound
    # Strictly better than the naive full re-partition.
    assert report.moved_fraction < report.naive_fraction


def test_unique_owner_per_interval_after_rescale():
    """Every rescaled range interval has exactly one owning site."""
    relation = make_wisconsin(2000, seed=1)
    placement = RangeStrategy(ATTR_A).partition(relation, 8)
    rescaled, _ = rescale_placement(placement, 14)
    owners = rescaled.interval_owners
    assert len(owners) == len(rescaled.boundaries) + 1
    # All 14 sites own at least one interval; each interval one owner.
    assert set(int(o) for o in owners) == set(range(14))
