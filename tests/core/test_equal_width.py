"""Tests for the equal-width directory baseline and its MAGIC ablation."""

import numpy as np
import pytest

from repro.core import (
    MagicStrategy,
    MagicTuning,
    build_equal_width,
    build_from_shape,
)
from repro.storage import make_skewed_wisconsin, make_wisconsin


class TestEqualWidthBuilder:
    def test_uniform_data_equal_width_equals_equal_depth(self):
        rel = make_wisconsin(10_000, correlation="low", seed=90)
        width = build_equal_width(rel, ["unique1"], (10,))
        depth = build_from_shape(rel, ["unique1"], (10,))
        # On uniform permutations, the two splittings nearly coincide.
        assert width.counts.max() <= 1.2 * depth.counts.max()

    def test_skewed_data_overloads_equal_width(self):
        rel = make_skewed_wisconsin(20_000, skew=3.0, seed=91)
        width = build_equal_width(rel, ["unique1", "unique2"], (15, 15))
        depth = build_from_shape(rel, ["unique1", "unique2"], (15, 15))
        assert width.total_tuples == depth.total_tuples == 20_000
        # The grid file's defining advantage.
        assert width.counts.max() > 5 * depth.counts.max()

    def test_shape_and_coverage(self):
        rel = make_skewed_wisconsin(5_000, skew=2.0, seed=92)
        d = build_equal_width(rel, ["unique1", "unique2"], (6, 7))
        assert d.shape == (6, 7)
        assert d.total_tuples == 5_000

    def test_single_slice(self):
        rel = make_wisconsin(1_000, seed=93)
        d = build_equal_width(rel, ["unique1"], (1,))
        assert d.counts[0] == 1_000

    def test_validation(self):
        rel = make_wisconsin(1_000, seed=94)
        with pytest.raises(ValueError):
            build_equal_width(rel, ["unique1"], (2, 2))
        with pytest.raises(ValueError):
            build_equal_width(rel, ["unique1"], (0,))


class TestMagicEqualWidthAblation:
    def test_equal_width_placement_skews_under_data_skew(self):
        rel = make_skewed_wisconsin(20_000, skew=3.0, seed=95)

        def tuning(equal_width):
            return MagicTuning(shape={"unique1": 16, "unique2": 16},
                               mi={"unique1": 2.0, "unique2": 4.0},
                               equal_width=equal_width,
                               rebalance_iterations=0)

        depth = MagicStrategy(["unique1", "unique2"],
                              tuning=tuning(False)).partition(rel, 8)
        width = MagicStrategy(["unique1", "unique2"],
                              tuning=tuning(True)).partition(rel, 8)
        spread_depth = int(depth.cardinalities().max()
                           - depth.cardinalities().min())
        spread_width = int(width.cardinalities().max()
                           - width.cardinalities().min())
        assert spread_width > 2 * spread_depth

    def test_rebalancer_partially_repairs_equal_width(self):
        rel = make_skewed_wisconsin(20_000, skew=3.0, seed=95)
        raw = MagicStrategy(
            ["unique1", "unique2"],
            tuning=MagicTuning(shape={"unique1": 16, "unique2": 16},
                               mi={"unique1": 2.0, "unique2": 4.0},
                               equal_width=True,
                               rebalance_iterations=0,
                               entry_exchange_slack=None)).partition(rel, 8)
        fixed = MagicStrategy(
            ["unique1", "unique2"],
            tuning=MagicTuning(shape={"unique1": 16, "unique2": 16},
                               mi={"unique1": 2.0, "unique2": 4.0},
                               equal_width=True,
                               rebalance_iterations=300)).partition(rel, 8)
        assert fixed.cardinalities().max() < raw.cardinalities().max()
