"""Tests for conjunctive (multi-attribute) predicate routing."""

import numpy as np
import pytest

from repro.core import (
    BerdStrategy,
    MagicStrategy,
    MagicTuning,
    RangePredicate,
    RangeStrategy,
)
from repro.storage import make_wisconsin

P = 16


@pytest.fixture(scope="module")
def relation():
    return make_wisconsin(cardinality=40_000, correlation="low", seed=30)


@pytest.fixture(scope="module")
def magic(relation):
    strategy = MagicStrategy(
        ["unique1", "unique2"],
        tuning=MagicTuning(shape={"unique1": 30, "unique2": 30},
                           mi={"unique1": 4.0, "unique2": 4.0}))
    return strategy.partition(relation, P)


class TestMagicConjunction:
    def test_two_dimensional_band_intersection(self, magic):
        pred_a = RangePredicate("unique1", 10_000, 10_999)
        pred_b = RangePredicate("unique2", 20_000, 20_999)
        single_a = magic.route(pred_a).target_sites
        single_b = magic.route(pred_b).target_sites
        both = magic.route_conjunction([pred_a, pred_b]).target_sites
        assert set(both) <= set(single_a)
        assert len(both) <= min(len(single_a), len(single_b))

    def test_conjunction_usually_one_entry(self, magic):
        """A narrow predicate per dimension lands in ~1 grid entry."""
        import random
        rng = random.Random(0)
        widths = []
        for _ in range(50):
            a = rng.randrange(39_000)
            b = rng.randrange(39_000)
            decision = magic.route_conjunction([
                RangePredicate("unique1", a, a + 99),
                RangePredicate("unique2", b, b + 99)])
            widths.append(len(decision.target_sites))
        assert float(np.mean(widths)) <= 2.5

    def test_soundness(self, relation, magic):
        preds = [RangePredicate("unique1", 5_000, 14_999),
                 RangePredicate("unique2", 0, 19_999)]
        counts = magic.qualifying_counts_all(preds)
        routed = set(magic.route_conjunction(preds).target_sites)
        for site, count in enumerate(counts):
            if count > 0:
                assert site in routed

    def test_same_dimension_predicates_intersect(self, magic):
        wide = RangePredicate("unique1", 0, 30_000)
        narrow = RangePredicate("unique1", 10_000, 10_100)
        both = magic.route_conjunction([wide, narrow]).target_sites
        only_narrow = magic.route(narrow).target_sites
        assert set(both) <= set(only_narrow)

    def test_unpartitioned_conjunction_broadcasts(self, magic):
        decision = magic.route_conjunction(
            [RangePredicate("ten", 1, 1), RangePredicate("two", 0, 0)])
        assert decision.target_sites == tuple(range(P))
        assert not decision.used_partitioning

    def test_mixed_partitioned_and_not(self, magic):
        decision = magic.route_conjunction(
            [RangePredicate("ten", 1, 1),
             RangePredicate("unique1", 100, 199)])
        assert decision.used_partitioning
        assert len(decision.target_sites) < P

    def test_empty_conjunction_rejected(self, magic):
        with pytest.raises(ValueError):
            magic.route_conjunction([])


class TestGenericConjunction:
    def test_range_uses_best_single_predicate(self, relation):
        placement = RangeStrategy("unique1").partition(relation, P)
        decision = placement.route_conjunction(
            [RangePredicate("unique1", 0, 99),
             RangePredicate("unique2", 0, 99)])
        # Only the unique1 predicate is routable.
        assert decision.target_sites == \
            placement.route(RangePredicate("unique1", 0, 99)).target_sites

    def test_range_broadcast_when_nothing_routable(self, relation):
        placement = RangeStrategy("unique1").partition(relation, P)
        decision = placement.route_conjunction(
            [RangePredicate("ten", 0, 1)])
        assert not decision.used_partitioning

    def test_berd_picks_cheaper_side(self, relation):
        placement = BerdStrategy("unique1", ["unique2"]).partition(
            relation, P)
        decision = placement.route_conjunction(
            [RangePredicate("unique1", 0, 50),     # 1 site, no probe
             RangePredicate("unique2", 0, 5_000)])  # many sites + probe
        assert len(decision.target_sites) == 1
        assert not decision.is_two_phase

    def test_qualifying_counts_all_matches_brute_force(self, relation):
        placement = RangeStrategy("unique1").partition(relation, P)
        preds = [RangePredicate("unique1", 1_000, 9_999),
                 RangePredicate("unique2", 0, 19_999)]
        counts = placement.qualifying_counts_all(preds)
        u1 = relation.column("unique1")
        u2 = relation.column("unique2")
        expected_total = int(((u1 >= 1_000) & (u1 <= 9_999)
                              & (u2 <= 19_999)).sum())
        assert counts.sum() == expected_total

    def test_magic_beats_generic_on_conjunctions(self, relation, magic):
        """The headline: only the grid directory exploits both bands."""
        range_placement = RangeStrategy("unique1").partition(relation, P)
        preds = [RangePredicate("unique1", 7_000, 7_999),
                 RangePredicate("unique2", 12_000, 12_999)]
        assert len(magic.route_conjunction(preds).target_sites) <= \
            len(range_placement.route_conjunction(preds).target_sites)
