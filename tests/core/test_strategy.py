"""Unit tests for predicates, routing decisions and shared helpers."""

import numpy as np
import pytest

from repro.core import (
    RangePredicate,
    RoutingDecision,
    equal_depth_boundaries,
    sites_for_interval,
)


class TestRangePredicate:
    def test_range(self):
        p = RangePredicate("a", 10, 20)
        assert not p.is_equality
        assert str(p) == "10 <= a <= 20"

    def test_equality(self):
        p = RangePredicate.equals("a", 5)
        assert p.is_equality
        assert (p.low, p.high) == (5, 5)
        assert str(p) == "a = 5"

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            RangePredicate("a", 10, 9)


class TestRoutingDecision:
    def test_single_phase(self):
        d = RoutingDecision(target_sites=(1, 2, 3))
        assert not d.is_two_phase
        assert d.site_count == 3

    def test_two_phase_site_count_dedupes(self):
        d = RoutingDecision(target_sites=(1, 2), probe_sites=(2,),
                            probe_matches=(5,))
        assert d.is_two_phase
        assert d.site_count == 2

    def test_probe_matches_must_parallel_probe_sites(self):
        with pytest.raises(ValueError):
            RoutingDecision(target_sites=(0,), probe_sites=(1, 2),
                            probe_matches=(1,))


class TestEqualDepthBoundaries:
    def test_uniform_values(self):
        b = equal_depth_boundaries(np.arange(100), 4)
        assert len(b) == 3
        # Splits near 25/50/75.
        assert all(abs(x - y) <= 1 for x, y in zip(b, [25, 50, 75]))

    def test_single_part_no_boundaries(self):
        assert len(equal_depth_boundaries(np.arange(10), 1)) == 0

    def test_balanced_partition_sizes(self):
        values = np.random.default_rng(0).permutation(1000)
        b = equal_depth_boundaries(values, 8)
        sites = np.searchsorted(b, values, side="left")
        counts = np.bincount(sites, minlength=8)
        assert counts.max() - counts.min() <= 2

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            equal_depth_boundaries(np.arange(10), 0)


class TestSitesForInterval:
    def test_point_in_middle(self):
        b = np.array([10, 20, 30])
        assert sites_for_interval(b, 15, 15) == (1,)

    def test_spanning_range(self):
        b = np.array([10, 20, 30])
        assert sites_for_interval(b, 5, 25) == (0, 1, 2)

    def test_entire_domain(self):
        b = np.array([10, 20, 30])
        assert sites_for_interval(b, -100, 100) == (0, 1, 2, 3)

    def test_boundary_value_goes_left(self):
        b = np.array([10, 20, 30])
        assert sites_for_interval(b, 10, 10) == (0,)
        assert sites_for_interval(b, 11, 11) == (1,)
