"""Unit tests for grid directory construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_from_shape, build_gridfile
from repro.storage import make_wisconsin


@pytest.fixture(scope="module")
def relation():
    return make_wisconsin(cardinality=5_000, correlation="low", seed=3)


class TestBuildFromShape:
    def test_shape_respected(self, relation):
        d = build_from_shape(relation, ["unique1", "unique2"], (8, 5))
        assert d.shape == (8, 5)

    def test_counts_cover_relation(self, relation):
        d = build_from_shape(relation, ["unique1", "unique2"], (8, 5))
        assert d.total_tuples == relation.cardinality

    def test_equal_depth_slices(self, relation):
        d = build_from_shape(relation, ["unique1"], (10,))
        counts = d.counts
        assert counts.max() - counts.min() <= 2

    def test_single_slice(self, relation):
        d = build_from_shape(relation, ["unique1"], (1,))
        assert d.shape == (1,)
        assert d.counts[0] == relation.cardinality

    def test_validation(self, relation):
        with pytest.raises(ValueError):
            build_from_shape(relation, ["unique1"], (2, 2))
        with pytest.raises(ValueError):
            build_from_shape(relation, ["unique1"], (0,))


class TestBuildGridfile:
    def test_capacity_respected_for_uniform_data(self, relation):
        d = build_gridfile(relation, ["unique1", "unique2"],
                           fragment_capacity=200)
        # Equal-capacity split of uniform data: no entry wildly overflows.
        assert d.counts.max() <= 2 * 200
        assert d.total_tuples == relation.cardinality

    def test_split_weights_shape_bias(self, relation):
        d = build_gridfile(relation, ["unique1", "unique2"],
                           fragment_capacity=150,
                           split_weights={"unique1": 9.0, "unique2": 1.0})
        n1, n2 = d.shape
        assert n1 > n2 * 3  # unique1 split much more often

    def test_correlated_data_produces_sparse_grid(self):
        rel = make_wisconsin(cardinality=5_000, correlation="identical",
                             seed=4)
        d = build_gridfile(rel, ["unique1", "unique2"],
                           fragment_capacity=200)
        # Identical attributes put all tuples on the diagonal: most
        # entries empty.
        empty_fraction = (d.counts == 0).mean()
        assert empty_fraction > 0.5
        assert d.total_tuples == rel.cardinality

    def test_max_entries_bound(self, relation):
        d = build_gridfile(relation, ["unique1", "unique2"],
                           fragment_capacity=1, max_entries=64)
        assert d.num_entries <= 64

    def test_validation(self, relation):
        with pytest.raises(ValueError):
            build_gridfile(relation, ["unique1"], fragment_capacity=0)
        with pytest.raises(KeyError):
            build_gridfile(relation, ["unique1"], 10,
                           split_weights={"other": 1.0})
        with pytest.raises(ValueError):
            build_gridfile(relation, ["unique1"], 10,
                           split_weights={"unique1": 0.0})

    def test_one_dimensional_build(self, relation):
        d = build_gridfile(relation, ["unique1"], fragment_capacity=500)
        assert d.ndim == 1
        assert d.counts.max() <= 1000
        assert d.total_tuples == relation.cardinality


class TestGridDirectoryProperties:
    """Point lookups hit exactly one entry; range regions tile."""

    CARD = 2_000
    SHAPE = (8, 6)
    SITES = 4

    @pytest.fixture(scope="class")
    def directory(self):
        rel = make_wisconsin(cardinality=self.CARD, correlation="low",
                             seed=7)
        d = build_from_shape(rel, ["unique1", "unique2"], self.SHAPE)
        d.set_assignment(
            np.arange(d.num_entries).reshape(d.shape) % self.SITES)
        return d

    @given(x=st.integers(min_value=0, max_value=CARD - 1),
           y=st.integers(min_value=0, max_value=CARD - 1))
    @settings(max_examples=80, deadline=None)
    def test_point_hits_exactly_one_entry(self, directory, x, y):
        from repro.core import RangePredicate
        point = [RangePredicate("unique1", x, x),
                 RangePredicate("unique2", y, y)]
        region = directory._region_multi(point)
        assert directory.counts[region].size == 1
        sites = directory.sites_for_all(point, prune_empty=False)
        assert len(sites) == 1
        assert 0 <= sites[0] < self.SITES

    @given(v=st.integers(min_value=0, max_value=CARD - 1))
    @settings(max_examples=80, deadline=None)
    def test_every_value_falls_in_one_slice(self, directory, v):
        for dim, attribute in enumerate(directory.attributes):
            first, last = directory.slice_band(attribute, v, v)
            assert first == last
            assert 0 <= first < directory.shape[dim]

    @given(a=st.integers(min_value=0, max_value=CARD - 1),
           b=st.integers(min_value=0, max_value=CARD - 1))
    @settings(max_examples=60, deadline=None)
    def test_slice_lookup_is_monotone(self, directory, a, b):
        lo, hi = min(a, b), max(a, b)
        assert directory.slice_band("unique1", lo, lo)[0] <= \
            directory.slice_band("unique1", hi, hi)[0]

    @given(low=st.integers(min_value=0, max_value=CARD - 2),
           width=st.integers(min_value=1, max_value=CARD - 1),
           cut=st.integers(min_value=0, max_value=CARD - 1))
    @settings(max_examples=80, deadline=None)
    def test_split_ranges_tile_the_band(self, directory, low, width, cut):
        """Splitting [low, high] anywhere covers the same slices with
        no gap -- the band of the whole equals the union of the bands
        of the parts."""
        high = min(low + width, self.CARD - 1)
        mid = min(low + cut % (high - low + 1), high - 1) \
            if high > low else low
        f, l = directory.slice_band("unique1", low, high)
        f1, l1 = directory.slice_band("unique1", low, mid)
        f2, l2 = directory.slice_band("unique1", mid + 1, high)
        union = set(range(f1, l1 + 1)) | set(range(f2, l2 + 1))
        assert union == set(range(f, l + 1))

    def test_full_domain_region_covers_everything(self, directory):
        from repro.core import RangePredicate
        pred = RangePredicate("unique1", 0, self.CARD - 1)
        assert directory.entries_covered(pred) == directory.num_entries
        assert int(directory.counts[directory._region(pred)].sum()) == \
            directory.total_tuples


class TestBuilderProperties:
    @given(shape=st.tuples(st.integers(min_value=1, max_value=12),
                           st.integers(min_value=1, max_value=12)))
    @settings(max_examples=20, deadline=None)
    def test_from_shape_always_partitions(self, shape):
        rel = make_wisconsin(cardinality=2_000, correlation="low", seed=5)
        d = build_from_shape(rel, ["unique1", "unique2"], shape)
        assert d.total_tuples == rel.cardinality
        assert d.shape == shape

    @given(capacity=st.integers(min_value=50, max_value=2000))
    @settings(max_examples=10, deadline=None)
    def test_gridfile_always_partitions(self, capacity):
        rel = make_wisconsin(cardinality=2_000, correlation="low", seed=6)
        d = build_gridfile(rel, ["unique1", "unique2"],
                           fragment_capacity=capacity)
        assert d.total_tuples == rel.cardinality
