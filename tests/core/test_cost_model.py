"""Unit tests for MAGIC's cost model (equations 1-4)."""

import math

import pytest

from repro.core import MagicCostModel, QueryProfile


def profile(name="q", attribute="a", tuples=10, cpu=0.01, disk=0.05,
            net=0.005, freq=0.5):
    return QueryProfile(name=name, attribute=attribute, tuples=tuples,
                        cpu_seconds=cpu, disk_seconds=disk,
                        net_seconds=net, frequency=freq)


class TestQueryProfile:
    def test_total_seconds(self):
        p = profile(cpu=1, disk=2, net=3)
        assert p.total_seconds == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            profile(tuples=0)
        with pytest.raises(ValueError):
            profile(freq=0)
        with pytest.raises(ValueError):
            profile(cpu=-1)


class TestAverageQuery:
    def test_weighted_average(self):
        qa = profile("qa", "a", tuples=1, cpu=0.02, disk=0.03, net=0.01,
                     freq=0.5)
        qb = profile("qb", "b", tuples=10, cpu=0.04, disk=0.05, net=0.03,
                     freq=0.5)
        model = MagicCostModel([qa, qb], cost_of_participation=0.005,
                               directory_search_cost=1e-6,
                               relation_cardinality=100_000)
        ave = model.average_query()
        assert ave.tuples == pytest.approx(5.5)
        assert ave.cpu_seconds == pytest.approx(0.03)
        assert ave.disk_seconds == pytest.approx(0.04)
        assert ave.net_seconds == pytest.approx(0.02)

    def test_frequencies_normalized(self):
        # Same profiles with doubled weights give identical QAve.
        qa = profile("qa", "a", freq=1.0)
        qb = profile("qb", "b", freq=1.0)
        qa2 = profile("qa", "a", freq=7.0)
        qb2 = profile("qb", "b", freq=7.0)
        m1 = MagicCostModel([qa, qb], 0.005, 1e-6, 1000)
        m2 = MagicCostModel([qa2, qb2], 0.005, 1e-6, 1000)
        assert m1.average_query() == m2.average_query()


class TestEquationOne:
    def test_rt_has_interior_minimum(self):
        model = MagicCostModel([profile()], 0.005, 1e-7, 100_000)
        m_star = model.ideal_m()
        rt_star = model.response_time(m_star)
        assert rt_star <= model.response_time(m_star * 2) + 1e-12
        assert rt_star <= model.response_time(max(m_star / 2, 1e-6)) + 1e-12

    def test_rt_components(self):
        # With CS = 0 and CP = 0 limit behaviour: RT(M) ~ resources / M.
        model = MagicCostModel([profile(cpu=1, disk=0, net=0)],
                               cost_of_participation=1e-12,
                               directory_search_cost=0.0,
                               relation_cardinality=100)
        assert model.response_time(4) == pytest.approx(0.25, rel=1e-3)

    def test_invalid_m_rejected(self):
        model = MagicCostModel([profile()], 0.005, 0.0, 100)
        with pytest.raises(ValueError):
            model.response_time(0)


class TestEquationTwo:
    def test_closed_form_matches_numeric_minimum(self):
        model = MagicCostModel([profile(tuples=30, cpu=0.1, disk=0.4,
                                        net=0.05)],
                               cost_of_participation=0.005,
                               directory_search_cost=2e-7,
                               relation_cardinality=100_000)
        m_star = model.ideal_m()
        # Numerically bracket the minimum.
        samples = [m_star * f for f in (0.9, 0.95, 1.0, 1.05, 1.1)]
        rts = [model.response_time(m) for m in samples]
        assert min(rts) == rts[2]

    def test_moderate_queries_want_about_nine_processors(self):
        """§7.2: with Gamma-like constants the moderate query's M_i ~ 9."""
        moderate = profile("qa_mod", "a", tuples=30, cpu=0.02, disk=0.38,
                           net=0.01, freq=1.0)
        model = MagicCostModel([moderate], cost_of_participation=0.005,
                               directory_search_cost=0.0,
                               relation_cardinality=100_000)
        assert 7 <= model.ideal_mi("a") <= 11

    def test_low_queries_want_one_or_two_processors(self):
        low = profile("qa_low", "a", tuples=1, cpu=0.002, disk=0.028,
                      net=0.002, freq=1.0)
        model = MagicCostModel([low], cost_of_participation=0.005,
                               directory_search_cost=0.0,
                               relation_cardinality=100_000)
        assert 1 <= model.ideal_mi("a") <= 3


class TestFragmentCardinality:
    def test_m_above_one(self):
        model = MagicCostModel([profile(tuples=100, cpu=1, disk=1, net=0)],
                               cost_of_participation=0.02,
                               directory_search_cost=0.0,
                               relation_cardinality=10_000)
        m = model.ideal_m()
        assert m > 1
        assert model.fragment_cardinality() == max(1, round(100 / (m - 1)))

    def test_m_below_one_uses_footnote_four(self):
        model = MagicCostModel([profile(tuples=10, cpu=1e-4, disk=1e-4,
                                        net=0)],
                               cost_of_participation=0.5,
                               directory_search_cost=1e-3,
                               relation_cardinality=100_000)
        m = model.ideal_m()
        assert m < 1
        assert model.fragment_cardinality() == max(1, round(10 / m))

    def test_fragment_count(self):
        model = MagicCostModel([profile(tuples=100, cpu=1, disk=1, net=0)],
                               0.02, 0.0, 10_000)
        fc = model.fragment_cardinality()
        assert model.fragment_count() == math.ceil(10_000 / fc)


class TestEquationsThreeFour:
    def test_stock_example_fraction_splits(self):
        """§3.3's worked example: M_ticker = 3, M_price = 1, 90%/10%
        frequencies give split fractions 22.5% and 7.5%."""
        # Engineer profiles that yield exactly M_i = 3 and 1 under CP.
        cp = 0.01
        ticker = profile("ta", "ticker", tuples=1, cpu=9 * cp, disk=0, net=0,
                         freq=0.9)
        price = profile("tb", "price", tuples=1, cpu=1 * cp, disk=0, net=0,
                        freq=0.1)
        model = MagicCostModel([ticker, price], cp, 0.0, 100_000)
        assert model.ideal_mi("ticker") == pytest.approx(3.0)
        assert model.ideal_mi("price") == pytest.approx(1.0)
        splits = model.fraction_splits()
        assert splits["ticker"] == pytest.approx(0.225)
        assert splits["price"] == pytest.approx(0.075)

    def test_relative_frequency_within_attribute(self):
        # Two queries on the same attribute: eq 2 of §3.2 weighs them by
        # relative frequency within the attribute's subset.
        cp = 0.01
        q1 = profile("q1", "a", tuples=1, cpu=16 * cp, disk=0, net=0, freq=3)
        q2 = profile("q2", "a", tuples=1, cpu=4 * cp, disk=0, net=0, freq=1)
        model = MagicCostModel([q1, q2], cp, 0.0, 100)
        # weighted = 0.75*16cp + 0.25*4cp = 13cp -> Mi = sqrt(13).
        assert model.ideal_mi("a") == pytest.approx(math.sqrt(13.0))

    def test_unknown_attribute_rejected(self):
        model = MagicCostModel([profile(attribute="a")], 0.01, 0.0, 100)
        with pytest.raises(KeyError):
            model.ideal_mi("zzz")

    def test_directory_shape_respects_split_ratio(self):
        cp = 0.005
        qa = profile("qa", "a", tuples=1, cpu=81 * cp, disk=0, net=0,
                     freq=0.5)
        qb = profile("qb", "b", tuples=300, cpu=cp, disk=0, net=0, freq=0.5)
        model = MagicCostModel([qa, qb], cp, 0.0, 100_000)
        shape = model.directory_shape()
        splits = model.observed_split_ratios()
        ratio_shape = shape["a"] / shape["b"]
        ratio_splits = splits["a"] / splits["b"]
        assert ratio_shape == pytest.approx(ratio_splits, rel=0.35)

    def test_observed_split_ratios_match_paper_usage(self):
        """§7.2: (M_A, M_B) = (1, 9) splits B nine times more often."""
        cp = 0.01
        qa = profile("qa", "a", tuples=1, cpu=1 * cp, disk=0, net=0,
                     freq=0.5)
        qb = profile("qb", "b", tuples=300, cpu=81 * cp, disk=0, net=0,
                     freq=0.5)
        model = MagicCostModel([qa, qb], cp, 0.0, 100_000)
        ratios = model.observed_split_ratios()
        assert ratios["b"] / ratios["a"] == pytest.approx(9.0)

    def test_attributes_order(self):
        qa = profile("qa", "a")
        qb = profile("qb", "b")
        model = MagicCostModel([qa, qb], 0.01, 0.0, 100)
        assert model.attributes() == ("a", "b")

    def test_validation(self):
        with pytest.raises(ValueError):
            MagicCostModel([], 0.01, 0.0, 100)
        with pytest.raises(ValueError):
            MagicCostModel([profile()], 0.0, 0.0, 100)
        with pytest.raises(ValueError):
            MagicCostModel([profile()], 0.01, -1.0, 100)
        with pytest.raises(ValueError):
            MagicCostModel([profile()], 0.01, 0.0, 0)
