"""Unit tests for the hill-climbing slice-swap rebalancer (paper §4)."""

import numpy as np
import pytest

from repro.core import (
    GridDirectory,
    assign_entries,
    build_from_shape,
    entry_exchange,
    load_spread,
    rebalance_assignment,
)
from repro.storage import make_wisconsin


def directory_with(counts, assignment):
    counts = np.asarray(counts)
    boundaries = [np.arange(1, n) * 10 for n in counts.shape]
    return GridDirectory(["a", "b"][:counts.ndim], boundaries, counts,
                         np.asarray(assignment))


class TestMechanics:
    def test_balanced_directory_untouched(self):
        d = directory_with(np.ones((4, 4)),
                           np.arange(16).reshape(4, 4) % 4)
        swaps = rebalance_assignment(d, 4)
        assert swaps == 0

    def test_requires_assignment(self):
        d = GridDirectory(["a"], [np.array([5])], np.array([1, 1]))
        with pytest.raises(RuntimeError):
            rebalance_assignment(d, 2)

    def test_simple_skew_fixed(self):
        # Diagonal weights, all landing on site 0; swapping two slices
        # redistributes the diagonal across all three sites.
        counts = np.diag([8, 8, 8])
        assignment = np.array([[0, 1, 2], [2, 0, 1], [1, 2, 0]])
        d = directory_with(counts, assignment)
        before = load_spread(d.tuples_per_site(3))
        assert before == 24
        swaps = rebalance_assignment(d, 3)
        after = load_spread(d.tuples_per_site(3))
        assert swaps >= 1
        assert after == 0

    def test_spread_never_increases(self):
        rng = np.random.default_rng(8)
        counts = rng.integers(0, 50, size=(10, 12))
        assignment = rng.integers(0, 4, size=(10, 12))
        d = directory_with(counts, assignment)
        before = load_spread(d.tuples_per_site(4))
        rebalance_assignment(d, 4)
        after = load_spread(d.tuples_per_site(4))
        assert after <= before

    def test_total_tuples_preserved(self):
        rng = np.random.default_rng(9)
        counts = rng.integers(0, 50, size=(8, 8))
        d = directory_with(counts, rng.integers(0, 4, size=(8, 8)))
        total_before = d.tuples_per_site(4).sum()
        rebalance_assignment(d, 4)
        assert d.tuples_per_site(4).sum() == total_before

    def test_slice_diversity_preserved(self):
        rng = np.random.default_rng(10)
        counts = rng.integers(0, 100, size=(12, 12))
        assignment = assign_entries((12, 12), [3.0, 3.0], 8)
        d = directory_with(counts, assignment)
        div_a_before = d.distinct_sites_per_slice("a")
        div_b_before = d.distinct_sites_per_slice("b")
        rebalance_assignment(d, 8)
        # Swapping whole slices permutes, but never changes, each slice's
        # distinct-owner multiset along the swapped dimension...
        assert sorted(d.distinct_sites_per_slice("a")) == sorted(div_a_before)
        assert sorted(d.distinct_sites_per_slice("b")) == sorted(div_b_before)

    def test_iteration_budget_respected(self):
        rng = np.random.default_rng(11)
        counts = rng.integers(0, 100, size=(16, 16))
        d = directory_with(counts, rng.integers(0, 8, size=(16, 16)))
        swaps = rebalance_assignment(d, 8, max_iterations=3)
        assert swaps <= 3


class TestEntryExchange:
    def test_breaks_the_slice_swap_plateau(self):
        """On the 193x23 high-correlation directory, slice swaps stall
        near 40% relative spread; entry exchange reaches < 15%."""
        rel = make_wisconsin(50_000, correlation="high", seed=13)
        d = build_from_shape(rel, ["unique1", "unique2"], (96, 23))
        d.set_assignment(assign_entries((96, 23), [9.0, 1.0], 32))
        rebalance_assignment(d, 32, max_iterations=300)
        weights = d.tuples_per_site(32)
        before = load_spread(weights) / weights.mean()
        moves = entry_exchange(d, 32, diversity_slack=2)
        weights = d.tuples_per_site(32)
        after = load_spread(weights) / weights.mean()
        assert moves > 0
        assert after < before / 2
        assert after < 0.20  # the paper's §4 quotes "only a 20% difference"

    def test_diversity_budget_respected(self):
        rel = make_wisconsin(50_000, correlation="high", seed=13)
        d = build_from_shape(rel, ["unique1", "unique2"], (96, 23))
        d.set_assignment(assign_entries((96, 23), [9.0, 1.0], 32))
        rebalance_assignment(d, 32, max_iterations=300)
        before_a = d.distinct_sites_per_slice("unique1")
        before_b = d.distinct_sites_per_slice("unique2")
        entry_exchange(d, 32, diversity_slack=1)
        after_a = d.distinct_sites_per_slice("unique1")
        after_b = d.distinct_sites_per_slice("unique2")
        assert all(a <= b + 1 for a, b in zip(after_a, before_a))
        assert all(a <= b + 1 for a, b in zip(after_b, before_b))

    def test_balanced_directory_untouched(self):
        d = directory_with(np.full((4, 4), 5),
                           np.arange(16).reshape(4, 4) % 4)
        assert entry_exchange(d, 4) == 0

    def test_total_tuples_preserved(self):
        rng = np.random.default_rng(14)
        counts = rng.integers(0, 60, size=(10, 10))
        d = directory_with(counts, rng.integers(0, 4, size=(10, 10)))
        total = d.tuples_per_site(4).sum()
        entry_exchange(d, 4)
        assert d.tuples_per_site(4).sum() == total

    def test_noop_for_non_2d(self):
        boundaries = [np.array([5])]
        d = GridDirectory(["a"], boundaries, np.array([10, 0]),
                          np.array([0, 1]))
        assert entry_exchange(d, 2) == 0

    def test_requires_assignment(self):
        d = GridDirectory(["a", "b"],
                          [np.array([5]), np.array([5])],
                          np.ones((2, 2)))
        with pytest.raises(RuntimeError):
            entry_exchange(d, 2)

    def test_invalid_slack(self):
        d = directory_with(np.ones((2, 2)), np.zeros((2, 2), dtype=int))
        with pytest.raises(ValueError):
            entry_exchange(d, 2, diversity_slack=-1)


class TestPaperWorstCase:
    def test_identical_attributes_on_32_processors(self):
        """§4: with identical partitioning attribute values the original
        assignment leaves many processors empty; after the heuristic, the
        load spread shrinks dramatically (paper: 12 empty -> <= 20%
        difference between any two processors)."""
        rel = make_wisconsin(cardinality=32_000, correlation="identical",
                             seed=12)
        d = build_from_shape(rel, ["unique1", "unique2"], (32, 32))
        d.set_assignment(assign_entries((32, 32), [5.0, 5.0], 32))

        weights_before = d.tuples_per_site(32)
        empty_before = int((weights_before == 0).sum())
        assert empty_before >= 8  # the skew the paper describes

        rebalance_assignment(d, 32, max_iterations=500)
        weights_after = d.tuples_per_site(32)
        empty_after = int((weights_after == 0).sum())
        assert empty_after < empty_before
        assert load_spread(weights_after) < load_spread(weights_before) / 2
