"""Large-machine properties of the entry assignment (P = 256, 1024).

The block-cyclic tiling is exactly analyzable when every per-dimension
modulus divides its dimension ("uniform grids"): the (block, block)
combinations form a bijection onto the machine, so every site is used,
per-site entry counts are within one entry of even, and each slice of
dimension *d* touches exactly ``t_d`` distinct sites.  On non-divisible
shapes the surplus-block alternation relaxes these to a factor of two.
These tests pin the properties at the scale the ISSUE targets -- the
32-site cases are covered by tests/core/test_assignment.py.
"""

import numpy as np
import pytest

from repro.core import (
    assign_entries,
    factor_slice_targets,
    pattern_moduli,
)

SCALE_SITES = (256, 1024)
MIXES = ((4.0, 8.0), (9.0, 9.0), (1.0, 9.0), (9.0, 1.0))


def _distinct_per_slice(assignment, dim):
    moved = np.moveaxis(assignment, dim, 0)
    flat = moved.reshape(moved.shape[0], -1)
    return [len(np.unique(row)) for row in flat]


def _uniform_shape(mi, num_sites):
    """A grid whose dimensions are multiples of the pattern moduli."""
    targets = factor_slice_targets(mi, num_sites)
    moduli = pattern_moduli(targets, num_sites)
    return tuple(u * k for u, k in zip(moduli, (3, 2)))


@pytest.mark.parametrize("num_sites", SCALE_SITES)
@pytest.mark.parametrize("mi", MIXES)
class TestUniformGrids:
    def test_every_site_used(self, mi, num_sites):
        assignment = assign_entries(_uniform_shape(mi, num_sites),
                                    mi, num_sites)
        counts = np.bincount(assignment.ravel(), minlength=num_sites)
        assert int((counts > 0).sum()) == num_sites

    def test_entry_counts_within_one_of_even(self, mi, num_sites):
        shape = _uniform_shape(mi, num_sites)
        assignment = assign_entries(shape, mi, num_sites)
        counts = np.bincount(assignment.ravel(), minlength=num_sites)
        even = assignment.size / num_sites
        assert counts.min() >= np.floor(even) - 1
        assert counts.max() <= np.ceil(even) + 1
        # On a divisible grid the tiling is in fact *exactly* even.
        assert counts.max() - counts.min() <= 1

    def test_slice_diversity_hits_targets(self, mi, num_sites):
        targets = factor_slice_targets(mi, num_sites)
        assignment = assign_entries(_uniform_shape(mi, num_sites),
                                    mi, num_sites)
        for dim, target in enumerate(targets):
            distinct = _distinct_per_slice(assignment, dim)
            assert min(distinct) == max(distinct) == target


@pytest.mark.parametrize("num_sites", SCALE_SITES)
@pytest.mark.parametrize("mi,shape", [
    ((4.0, 8.0), (190, 35)),
    ((9.0, 9.0), (150, 131)),
    ((1.0, 9.0), (400, 17)),
])
class TestNonDivisibleGrids:
    """Realistic (non-divisible) shapes: bounds relax to a factor of 2."""

    def _effective_targets(self, mi, shape, num_sites):
        # assign_entries clamps each modulus to its dimension; a slice of
        # dimension d then sees the product of the *other* (clamped)
        # moduli distinct sites.
        targets = factor_slice_targets(mi, num_sites)
        moduli = pattern_moduli(targets, num_sites)
        clamped = [max(1, min(int(u), int(n)))
                   for u, n in zip(moduli, shape)]
        k = len(clamped)
        return [int(np.prod([clamped[e] for e in range(k) if e != d]))
                for d in range(k)]

    def test_every_site_used(self, mi, shape, num_sites):
        assignment = assign_entries(shape, mi, num_sites)
        counts = np.bincount(assignment.ravel(), minlength=num_sites)
        assert int((counts > 0).sum()) == num_sites

    def test_slice_diversity_within_2x_of_targets(self, mi, shape,
                                                  num_sites):
        assignment = assign_entries(shape, mi, num_sites)
        effective = self._effective_targets(mi, shape, num_sites)
        for dim, target in enumerate(effective):
            distinct = _distinct_per_slice(assignment, dim)
            assert min(distinct) * 2 >= target
            assert max(distinct) <= 2 * target
