"""Bit-identity gate for the scale refactor: canonical P=32 digest.

The 1,024-site work rewrote the placement hot paths (incremental
rebalance weights, pooled candidate search, batched multicast); all of
it is equivalence-by-design, and this script is the cheap CI proof: a
small canonical figure-8a run at 32 sites whose series, response times,
message counts and RunSpec digests are hashed and compared against the
committed ``results/scale_smoke_p32_digest.json``.

    python benchmarks/scale_smoke_digest.py --check        # CI gate
    python benchmarks/scale_smoke_digest.py --check --jobs 2
    python benchmarks/scale_smoke_digest.py --write        # re-baseline

Re-baselining is only legitimate when a change *intends* to alter
simulated results (new workload, parameter fix) -- never to quiet the
gate after a refactor that should have been equivalent.
"""

import argparse
import hashlib
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.experiments import FIGURES, run_experiment  # noqa: E402
from repro.experiments.plan import clear_memos  # noqa: E402

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                         os.pardir))
DIGEST_PATH = os.path.join(REPO_ROOT, "results",
                           "scale_smoke_p32_digest.json")

#: The canonical configuration.  Changing any value invalidates the
#: committed digest -- bump it and re-baseline deliberately.
CONFIG = {
    "figure": "8a",
    "num_sites": 32,
    "cardinality": 10_000,
    "measured_queries": 40,
    "mpls": [1, 8],
    "seed": 13,
}


def canonical_payload(jobs=1):
    clear_memos()
    result = run_experiment(
        FIGURES[CONFIG["figure"]], cardinality=CONFIG["cardinality"],
        num_sites=CONFIG["num_sites"],
        measured_queries=CONFIG["measured_queries"],
        mpls=tuple(CONFIG["mpls"]), seed=CONFIG["seed"], jobs=jobs)
    return {
        "series": {name: [[run.multiprogramming_level, run.throughput,
                           run.response_time_mean, run.messages_sent]
                          for run in runs]
                   for name, runs in sorted(result.series.items())},
        "spec_digests": {name: list(digests) for name, digests
                         in sorted(result.spec_digests.items())},
    }


def digest(payload):
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check", action="store_true",
                      help="fail (exit 1) unless the run matches the "
                           "committed digest")
    mode.add_argument("--write", action="store_true",
                      help="(re-)write the committed digest file")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (the digest must not "
                             "depend on this)")
    args = parser.parse_args(argv)

    got = digest(canonical_payload(jobs=args.jobs))
    if args.write:
        with open(DIGEST_PATH, "w") as handle:
            json.dump({"config": CONFIG, "sha256": got}, handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"wrote {DIGEST_PATH}\nsha256 {got}")
        return 0

    with open(DIGEST_PATH) as handle:
        committed = json.load(handle)
    if committed["config"] != CONFIG:
        print("config drift: committed digest was captured with "
              f"{committed['config']}, script runs {CONFIG}")
        return 1
    if committed["sha256"] != got:
        print(f"BIT-IDENTITY BROKEN (jobs={args.jobs}):\n"
              f"  committed {committed['sha256']}\n"
              f"  got       {got}")
        return 1
    print(f"bit-identical at P={CONFIG['num_sites']} "
          f"(jobs={args.jobs}): sha256 {got}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
