"""Figure 8: throughput vs MPL for the Low-Low query mix.

Paper findings reproduced here:

* 8a (low correlation): MAGIC > BERD (by ~7% in the paper) and both far
  above range partitioning (which broadcasts QB to all 32 processors).
* 8b (high correlation): both multi-attribute strategies localize each
  query to ~1 processor and scale dramatically; MAGIC leads BERD (the
  paper: ~45% at high MPL) because it never touches the auxiliary
  relation.
"""

from conftest import regenerate


def test_figure_8a_low_correlation(benchmark):
    result = regenerate("8a", benchmark)
    finals = result.final_throughputs()
    assert finals["magic"] > finals["berd"], \
        "paper: MAGIC outperforms BERD in the low-low mix"
    assert finals["magic"] > 1.5 * finals["range"], \
        "paper: both multi-attribute strategies far above range"
    assert finals["berd"] > 1.5 * finals["range"]


def test_figure_8b_high_correlation(benchmark):
    result = regenerate("8b", benchmark)
    finals = result.final_throughputs()
    assert finals["magic"] > 1.1 * finals["berd"], \
        "paper: MAGIC ~45% over BERD at high MPL under high correlation"
    assert finals["berd"] > 2.0 * finals["range"], \
        "paper: localization makes both multi-attribute strategies scale"
    # High correlation helps the multi-attribute strategies relative to
    # their own low-correlation results (compare Figures 8a and 8b).
    assert finals["magic"] > 1.3 * finals["range"]
