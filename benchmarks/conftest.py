"""Shared helpers for the figure-regeneration benchmarks.

Each benchmark regenerates one table or figure of the paper.  By default
the sweeps are scaled down (three MPL points, 250 measured queries per
point) so the whole suite runs in a few minutes; set
``REPRO_BENCH_FULL=1`` for the paper's full 9-point MPL axis with 400
measured queries per point.

The benchmark timer measures the wall time of regenerating the figure;
the reproduced series itself is attached to ``benchmark.extra_info`` and
printed, and each test asserts the paper's qualitative outcome (who
wins, roughly by how much).
"""

import os

import pytest

from repro.experiments import FIGURES, format_figure, run_experiment

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")

#: Sweep settings: (mpls, measured queries per point).
MPLS = (1, 8, 16, 24, 32, 40, 48, 56, 64) if FULL else (1, 16, 64)
MEASURED = 400 if FULL else 250
CARDINALITY = 100_000
PROCESSORS = 32


def regenerate(figure_name, benchmark):
    """Run one figure under the benchmark timer and report its series."""
    config = FIGURES[figure_name]

    def run():
        return run_experiment(config, cardinality=CARDINALITY,
                              num_sites=PROCESSORS,
                              measured_queries=MEASURED, mpls=MPLS, seed=13)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_figure(result))
    for strategy, runs in result.series.items():
        benchmark.extra_info[f"{strategy}_final_qps"] = round(
            runs[-1].throughput, 1)
    return result


@pytest.fixture
def final_throughputs():
    """Extract {strategy: final-MPL throughput} from a FigureResult."""
    def extract(result):
        return result.final_throughputs()
    return extract
