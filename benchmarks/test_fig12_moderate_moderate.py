"""Figure 12: throughput vs MPL for the Moderate-Moderate query mix.

Paper findings reproduced here:

* 12a (low correlation): MAGIC's 101x91 directory uses ~6.5 processors
  per query where both range and BERD average 16.5 (QA to one, QB to
  all 32); MAGIC wins, BERD additionally pays the auxiliary access.
* 12b (high correlation): range wins at MPL 1 (it spreads one query's
  CPU over many processors); at MPL 64 MAGIC outperforms BERD (paper:
  ~25%) because it never searches the auxiliary relation -- which for
  the 300-tuple QB is a real scan, not a point probe.
"""

from conftest import regenerate


def test_figure_12a_low_correlation(benchmark):
    result = regenerate("12a", benchmark)
    finals = result.final_throughputs()
    assert finals["magic"] > finals["range"], \
        "paper: MAGIC on top in the moderate-moderate mix"
    assert finals["magic"] > finals["berd"]
    assert finals["range"] >= finals["berd"], \
        "paper: BERD at or below range (auxiliary overhead)"


def test_figure_12b_high_correlation(benchmark):
    result = regenerate("12b", benchmark)
    finals = result.final_throughputs()
    assert finals["magic"] > 1.02 * finals["berd"], \
        "paper: MAGIC ~25% over BERD at MPL 64"
    assert finals["berd"] > finals["range"]
    # Paper: range wins at MPL 1 (it parallelizes the single query).
    # In our model MAGIC also parallelizes a little (2-3 sites), so the
    # two land within a few percent -- assert the near-tie rather than a
    # strict win (documented in EXPERIMENTS.md as "MPL-1 tie").
    first = {s: runs[0].throughput for s, runs in result.series.items()}
    assert first["range"] >= 0.9 * first["magic"], \
        "paper: range competitive with both at multiprogramming level one"
    assert first["range"] >= first["berd"], \
        "paper: range above BERD at multiprogramming level one"
