"""Latency-capture overhead: fig-8a regeneration with sketches off vs. on.

Writes ``BENCH_latency_overhead.json`` next to the repo root and appends
tail-latency rows to the perf ledger.  Latency capture records one
sketch update per completed query -- no spans, no timeline sampler -- so
its ceiling is far below the full-tracing budget (~1.7x): the default
acceptance bar here is 1.3x, overridable via ``LATENCY_BENCH_MAX_RATIO``
for noisy CI hosts.

The captured p99s are themselves recorded into the ledger
(``latency_p99_ms_<strategy>_<qtype>``): the simulation is
deterministic, so a placement or scheduler change that shifts the tail
shows up as a ledger regression, not just a throughput delta.

Run directly (``python benchmarks/test_latency_overhead.py``) or via
pytest (``pytest benchmarks/test_latency_overhead.py``).
"""

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from ledger import record as ledger_record  # noqa: E402

from repro.experiments import FIGURES, run_experiment
from repro.obs import TelemetrySpec

MPLS = (1, 16, 64)
# Overridable so the CI smoke jobs can run a tiny configuration.
MEASURED = int(os.environ.get("LATENCY_BENCH_MEASURED", "250"))
CARDINALITY = int(os.environ.get("LATENCY_BENCH_CARDINALITY", "100000"))
MAX_RATIO = float(os.environ.get("LATENCY_BENCH_MAX_RATIO", "1.3"))
PROCESSORS = 32
OUTPUT = os.path.join(os.path.dirname(__file__), os.pardir,
                      "BENCH_latency_overhead.json")


def _time_run(telemetry_spec=None):
    started = time.perf_counter()
    result = run_experiment(FIGURES["8a"], cardinality=CARDINALITY,
                            num_sites=PROCESSORS, measured_queries=MEASURED,
                            mpls=MPLS, seed=13,
                            telemetry_spec=telemetry_spec)
    wall = time.perf_counter() - started
    return wall, result


def measure():
    # Warm the relation/placement memos so neither timed run pays
    # build costs -- otherwise the off run is inflated and the ratio
    # reads below 1.0.
    _time_run()
    off_wall, off_result = _time_run()
    # Latency-only capture: sketches, no spans, no utilization sampler.
    on_wall, on_result = _time_run(
        TelemetrySpec(trace=False, timeline_interval=0.0, latency=True))
    assert on_result.latency is not None

    tails = {}
    for strategy, entries in sorted(on_result.latency["points"].items()):
        highest = entries[-1]
        for qtype, summary in sorted(highest["by_type"].items()):
            tails[f"latency_p99_ms_{strategy}_{qtype}"] = round(
                summary["p99"] * 1000, 3)

    return {
        "benchmark": "fig-8a regeneration (3 MPL points x 3 strategies), "
                     "latency sketches off vs on",
        "mpls": list(MPLS),
        "measured_queries": MEASURED,
        "capture_off_wall_seconds": round(off_wall, 3),
        "capture_on_wall_seconds": round(on_wall, 3),
        "overhead_ratio": round(on_wall / off_wall, 3),
        "max_ratio": MAX_RATIO,
        "tail_latencies": tails,
        "throughput_unchanged": {
            strategy: [off_result.throughput_at(strategy, mpl)
                       == on_result.throughput_at(strategy, mpl)
                       for mpl in MPLS]
            for strategy in off_result.series
        },
    }


def test_latency_overhead_and_artifact():
    payload = measure()
    with open(OUTPUT, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    ledger_record(dict(
        {"latency_capture_overhead_ratio": payload["overhead_ratio"]},
        **payload["tail_latencies"],
    ), benchmark="latency_overhead")
    # Capture must not change the simulation itself: identical seeds
    # produce identical throughput series with sketches off and on.
    for flags in payload["throughput_unchanged"].values():
        assert all(flags)
    # One dict update per completed query should be near-free -- and
    # must stay below the full-tracing budget in any case.
    assert payload["overhead_ratio"] < MAX_RATIO, payload["overhead_ratio"]


if __name__ == "__main__":
    print(json.dumps(measure(), indent=2, sort_keys=True))
