"""Table 2: the simulation parameters.

Regenerates Table 2 from the implemented parameter set and times the
derived quantities used throughout the model (seek curve, network cost
decomposition, B-tree plans).  Every printed value must equal the
paper's.
"""

from repro.gamma import GAMMA_PARAMETERS
from repro.storage import BTreeIndex


def render_table2(params):
    ms = 1000.0
    lines = [
        "Table 2: Important Simulation Parameters",
        "  Disk:",
        f"    Average settle time        {params.disk_settle_seconds * ms:.0f} msec",
        f"    Average latency            0-{params.disk_max_latency_seconds * ms:.2f} msec (Unif)",
        f"    Transfer rate              {params.disk_transfer_bytes_per_second / 1e6:.1f} MBytes/sec",
        f"    Seek factor                {params.disk_seek_factor_ms:.2f} msec",
        f"    Disk page size             {params.page_bytes // 1024} Kbytes",
        f"    Xfer page SCSI->memory     {params.dma_instructions_per_page} instructions",
        "  Network:",
        f"    Maximum packet size        {params.max_packet_bytes // 1024} Kbytes",
        f"    Send 100 bytes             {params.send_100_bytes_seconds * ms:.1f} msec",
        f"    Send 8192 bytes            {params.send_8192_bytes_seconds * ms:.1f} msec",
        "  CPU:",
        f"    Instructions/second        {params.cpu_instructions_per_second:,.0f}",
        f"    Read 8K disk page          {params.read_page_instructions} instructions",
        f"    Write 8K disk page         {params.write_page_instructions} instructions",
        "  Miscellaneous:",
        f"    Tuple size                 {params.tuple_bytes} bytes",
        f"    Tuples/network packet      {params.tuples_per_packet}",
        f"    Tuples/disk page           {params.tuples_per_page}",
        f"    Number of processors       {params.num_processors}",
    ]
    return "\n".join(lines)


def test_table2_regeneration(benchmark):
    text = benchmark(render_table2, GAMMA_PARAMETERS)
    print()
    print(text)
    assert "2 msec" in text
    assert "0-16.68 msec" in text
    assert "1.8 MBytes/sec" in text
    assert "0.78 msec" in text
    assert "4000 instructions" in text
    assert "0.6 msec" in text
    assert "5.6 msec" in text
    assert "3,000,000" in text
    assert "14600 instructions" in text
    assert "28000 instructions" in text
    assert "208 bytes" in text
    assert "Number of processors       32" in text


def test_derived_query_costs(benchmark):
    """Single-site costs of the four workload queries (§6 pairing)."""
    params = GAMMA_PARAMETERS

    def derive():
        frag = 100_000 // 32
        nc = BTreeIndex(frag, clustered=False, fanout=params.btree_fanout,
                        resident=params.index_pages_resident)
        cl = BTreeIndex(frag, clustered=True, fanout=params.btree_fanout,
                        resident=params.index_pages_resident)
        return {
            "QA low reads": nc.range_lookup(1).total_reads,
            "QB low reads": cl.range_lookup(10).total_reads,
            "QA mod reads": nc.range_lookup(30).total_reads,
            "QB mod reads": cl.range_lookup(300).total_reads,
        }

    costs = benchmark(derive)
    print()
    for name, reads in costs.items():
        print(f"  {name}: {reads} page reads")
    # §6's design: the low pair is nearly equi-cost, and so are the
    # moderate pair's I/O volumes within a small factor.
    assert abs(costs["QA low reads"] - costs["QB low reads"]) <= 2
    assert costs["QA mod reads"] > costs["QB mod reads"]
