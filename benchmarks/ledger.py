"""Thin shim the BENCH writers use to feed the perf-regression ledger.

The real implementation lives in :mod:`repro.obs.ledger` (importable by
the ``repro-perf`` entry point); this module pins the ledger path to
``results/perf_ledger.jsonl`` at the repository root, wherever the
benchmark was launched from, and never lets ledger trouble fail a
benchmark -- the BENCH_*.json artifact is the primary record, the
ledger is history.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                         os.pardir))
LEDGER_PATH = os.path.join(REPO_ROOT, "results", "perf_ledger.jsonl")


def record(metrics, benchmark):
    """Append *metrics* (``{name: value}``) under *benchmark*'s name.

    Returns the rows written (empty on any failure).
    """
    try:
        from repro.obs.ledger import append_metrics
        return append_metrics(metrics, benchmark, path=LEDGER_PATH,
                              cwd=REPO_ROOT)
    except Exception as exc:  # the ledger must never fail a benchmark
        print(f"(perf ledger append skipped: {exc})", file=sys.stderr)
        return []
