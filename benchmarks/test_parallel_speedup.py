"""Parallel-executor speedup: fig-8a serial vs. ``--jobs 2`` / ``--jobs 4``.

Writes ``BENCH_parallel_speedup.json`` next to the repo root so future
changes can track what the warm-pool executor buys.  Two acceptance
bars, one always assertable:

* **CPU amplification** (always asserted): total process-CPU seconds
  burned by a parallel run -- parent plus reaped pool workers, measured
  with ``getrusage`` deltas -- must stay within 1.25x of the serial
  run.  Wall time on an oversubscribed host inflates with time-slicing
  even when zero extra work happens; CPU seconds do not, so this bound
  catches real regressions (per-task rebuild storms, redundant
  prewarms) on any machine, including 1-core CI runners.
* **Wall-time speedup** (asserted only with >= 4 usable cores):
  >= 1.3x at ``--jobs 4``.  The grid is embarrassingly parallel
  (9 independent simulations), so the bound is conservative; with
  fewer cores no speedup is physically available and the assertion is
  skipped (the artifact still records the core count, so CI runners
  with real parallelism enforce the bar).

Determinism is asserted unconditionally: whatever the speedup, every
parallel run must reproduce the serial throughputs bit for bit.

Run directly (``python benchmarks/test_parallel_speedup.py``) or via
pytest (``pytest benchmarks/test_parallel_speedup.py``).
"""

import json
import os
import resource
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from ledger import record as ledger_record  # noqa: E402

from repro.experiments import FIGURES, run_experiment
from repro.experiments.plan import clear_memos

MPLS = (1, 16, 64)
# Overridable so the CI smoke jobs can seed the perf ledger from a tiny
# configuration; the speedup floor stays asserted only on real cores.
MEASURED = int(os.environ.get("PARALLEL_BENCH_MEASURED", "250"))
CARDINALITY = int(os.environ.get("PARALLEL_BENCH_CARDINALITY", "100000"))
PROCESSORS = 32
JOBS_SWEPT = (1, 2, 4)
SPEEDUP_FLOOR = 1.3
CPU_AMPLIFICATION_CEILING = 1.25
OUTPUT = os.path.join(os.path.dirname(__file__), os.pardir,
                      "BENCH_parallel_speedup.json")


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _cpu_now() -> float:
    """Total CPU seconds this process *and its reaped children* burned.

    Pool workers are children; ``ProcessPoolExecutor.__exit__`` joins
    them, so by the time a timed window closes RUSAGE_CHILDREN has
    absorbed every worker's user+system time.
    """
    own = resource.getrusage(resource.RUSAGE_SELF)
    kids = resource.getrusage(resource.RUSAGE_CHILDREN)
    return own.ru_utime + own.ru_stime + kids.ru_utime + kids.ru_stime


def _time_run(jobs):
    # Fresh per-process memos so every configuration pays the same
    # relation/placement build cost inside its timed window.
    clear_memos()
    started = time.perf_counter()
    cpu_started = _cpu_now()
    result = run_experiment(FIGURES["8a"], cardinality=CARDINALITY,
                            num_sites=PROCESSORS,
                            measured_queries=MEASURED, mpls=MPLS,
                            seed=13, jobs=jobs)
    return (time.perf_counter() - started, _cpu_now() - cpu_started, result)


def measure():
    walls, cpus, results = {}, {}, {}
    for jobs in JOBS_SWEPT:
        walls[jobs], cpus[jobs], results[jobs] = _time_run(jobs)
    serial = results[1]
    identical = all(
        results[jobs].throughput_at(strategy, mpl)
        == serial.throughput_at(strategy, mpl)
        for jobs in JOBS_SWEPT[1:]
        for strategy in serial.series
        for mpl in MPLS)
    cores = _usable_cores()
    return {
        "benchmark": "fig-8a regeneration, serial vs warm process pool "
                     "(3 MPL points x 3 strategies)",
        "mpls": list(MPLS),
        "measured_queries": MEASURED,
        "usable_cores": cores,
        "wall_seconds": {f"jobs{jobs}": round(walls[jobs], 3)
                         for jobs in JOBS_SWEPT},
        # getrusage user+system seconds over the whole timed window,
        # parent + reaped pool workers: the honest work metric.
        "cpu_seconds": {f"jobs{jobs}": round(cpus[jobs], 3)
                        for jobs in JOBS_SWEPT},
        # Summed per-run wall seconds as reported by the executor
        # (FigureResult.cpu_seconds); inflates with time-slicing on an
        # oversubscribed host -- informational only.
        "sim_wall_seconds": {f"jobs{jobs}": round(
            results[jobs].cpu_seconds, 3) for jobs in JOBS_SWEPT},
        "speedup": {f"jobs{jobs}": round(walls[1] / walls[jobs], 3)
                    for jobs in JOBS_SWEPT[1:]},
        "cpu_amplification": {f"jobs{jobs}": round(cpus[jobs] / cpus[1], 3)
                              for jobs in JOBS_SWEPT[1:]},
        "bit_identical_to_serial": identical,
        "speedup_floor": SPEEDUP_FLOOR,
        "cpu_amplification_ceiling": CPU_AMPLIFICATION_CEILING,
        "speedup_asserted": cores >= 4,
    }


def test_parallel_speedup():
    report = measure()
    with open(OUTPUT, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    ledger_record({
        "parallel_speedup_jobs4": report["speedup"]["jobs4"],
        "parallel_cpu_amplification": report["cpu_amplification"]["jobs4"],
        "parallel_wall_seconds_jobs1": report["wall_seconds"]["jobs1"],
    }, benchmark="parallel_speedup")
    print()
    print(json.dumps(report, indent=2, sort_keys=True))
    assert report["bit_identical_to_serial"], \
        "parallel execution must reproduce serial results bit for bit"
    assert report["cpu_amplification"]["jobs4"] <= \
        CPU_AMPLIFICATION_CEILING, (
            f"parallel execution burned "
            f"{report['cpu_amplification']['jobs4']}x the serial CPU "
            f"seconds (ceiling {CPU_AMPLIFICATION_CEILING}x): the warm "
            f"pool is rebuilding state per task again")
    if report["speedup_asserted"]:
        assert report["speedup"]["jobs4"] > SPEEDUP_FLOOR, (
            f"expected > {SPEEDUP_FLOOR}x wall-time speedup at jobs=4 on "
            f"{report['usable_cores']} cores, got "
            f"{report['speedup']['jobs4']}x")
    else:
        print(f"(only {report['usable_cores']} usable core(s): speedup "
              f"floor not asserted, artifact recorded)")


if __name__ == "__main__":
    test_parallel_speedup()
    print(f"wrote {os.path.abspath(OUTPUT)}")
