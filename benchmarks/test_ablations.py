"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures of the paper, but experiments that justify components:

* hash partitioning (discussed in §1, excluded from the paper's plots)
  really is dominated by range for this range-predicate workload;
* MAGIC driven purely by its cost model (``magic-derived``) lands close
  to the paper-pinned directory shapes -- equations 1-4 carry their
  weight;
* the balanced block assignment beats the naive block pattern on
  per-processor load spread while preserving slice diversity;
* the slice-swap rebalancer approaches the exhaustive optimum on grids
  small enough to enumerate.
"""

import numpy as np
import pytest

from repro.core import (
    GridDirectory,
    balanced_block_assignment,
    block_assignment,
    load_spread,
    optimal_assignment,
    rebalance_assignment,
)
from repro.experiments import FIGURES, PAPER_INDEXES, build_strategy
from repro.gamma import GammaMachine
from repro.storage import make_wisconsin
from repro.workload import make_mix

from conftest import MEASURED


def test_hash_dominated_by_range(benchmark):
    """Hash broadcasts every range predicate: strictly worse here."""
    def run():
        relation = make_wisconsin(50_000, correlation="low", seed=13)
        mix = make_mix("low-low", domain=50_000)
        out = {}
        for name in ("range", "hash"):
            strategy = build_strategy(name, FIGURES["8a"], 50_000)
            placement = strategy.partition(relation, 16)
            machine = GammaMachine(placement, indexes=PAPER_INDEXES, seed=3)
            out[name] = machine.run(mix, multiprogramming_level=16,
                                    measured_queries=MEASURED).throughput
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nrange={result['range']:.1f} q/s, hash={result['hash']:.1f} q/s")
    assert result["range"] > result["hash"], \
        "range localizes QA; hash broadcasts everything"


def test_derived_magic_close_to_pinned(benchmark):
    """The self-derived design stays within 25% of the paper-pinned one."""
    def run():
        relation = make_wisconsin(100_000, correlation="low", seed=13)
        mix = make_mix("low-low")
        out = {}
        for name in ("magic", "magic-derived"):
            strategy = build_strategy(name, FIGURES["8a"], 100_000)
            placement = strategy.partition(relation, 32)
            machine = GammaMachine(placement, indexes=PAPER_INDEXES, seed=3)
            out[name] = machine.run(mix, multiprogramming_level=32,
                                    measured_queries=MEASURED).throughput
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = result["magic-derived"] / result["magic"]
    print(f"\npinned={result['magic']:.1f} q/s, "
          f"derived={result['magic-derived']:.1f} q/s (ratio {ratio:.2f})")
    assert 0.75 <= ratio <= 1.35


def test_balanced_assignment_reduces_entry_spread(benchmark):
    """The surplus-block alternation evens entry counts on awkward shapes
    (the 193x23 directory whose naive pattern double-loads 7 processors).
    """
    def run():
        naive = block_assignment((193, 23), (2, 16), 32)
        balanced = balanced_block_assignment((193, 23), (2, 16), 32)
        spread = {}
        for name, assign in (("naive", naive), ("balanced", balanced)):
            counts = np.bincount(assign.ravel(), minlength=32)
            spread[name] = int(counts.max() - counts.min())
        return spread

    spread = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nentry-count spread: naive={spread['naive']}, "
          f"balanced={spread['balanced']}")
    # Alternation donates half of each surplus block: spread roughly halves.
    assert spread["balanced"] <= 0.6 * spread["naive"]


def test_buffer_pool_vs_analytic_model(benchmark):
    """The explicit LRU buffer pool vs. the index-residency assumption.

    With a pool large enough to hold each site's index structures but
    not its data, throughput should land near the analytic model's; a
    generous pool (data fits too) exceeds it; a starved pool falls
    below.  This bounds the modeling error of the default assumption.
    """
    from repro.gamma import GAMMA_PARAMETERS

    def run():
        relation = make_wisconsin(100_000, correlation="low", seed=13)
        strategy = build_strategy("magic", FIGURES["8a"], 100_000)
        placement = strategy.partition(relation, 32)
        mix = make_mix("low-low")
        out = {}
        for label, pool in (("analytic", None), ("pool-24", 24),
                            ("pool-2048", 2048)):
            params = GAMMA_PARAMETERS.with_overrides(
                buffer_pool_pages=pool)
            machine = GammaMachine(placement, indexes=PAPER_INDEXES,
                                   params=params, seed=3)
            out[label] = machine.run(mix, multiprogramming_level=32,
                                     measured_queries=MEASURED).throughput
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + ", ".join(f"{k}={v:.0f} q/s" for k, v in result.items()))
    # Index-sized pool brackets the analytic assumption from below,
    # a data-sized pool from above.
    assert result["pool-24"] <= result["analytic"] * 1.2
    assert result["pool-2048"] >= result["pool-24"]


def test_rebalancer_vs_exhaustive_optimum(benchmark):
    """On an enumerable grid the heuristic matches the optimal spread."""
    rng = np.random.default_rng(5)
    counts = rng.integers(0, 40, size=(3, 3))

    def run():
        optimal = optimal_assignment(counts, 3)
        opt_weights = np.bincount(optimal.ravel(), weights=counts.ravel(),
                                  minlength=3).astype(np.int64)
        directory = GridDirectory(
            ["a", "b"], [np.array([10, 20]), np.array([10, 20])],
            counts, balanced_block_assignment((3, 3), (2, 2), 3))
        rebalance_assignment(directory, 3, max_iterations=100)
        heur_weights = directory.tuples_per_site(3)
        return load_spread(opt_weights), load_spread(heur_weights)

    opt, heur = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nspread: optimal={opt}, heuristic={heur}")
    assert heur <= 3 * max(opt, 10)
