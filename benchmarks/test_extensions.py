"""Extension experiments beyond the paper's figures.

The paper's introduction motivates scaling "to hundreds and thousands of
processors"; these benchmarks probe the directions the paper points at
but does not measure:

* **scalability** -- the MAGIC-over-range gap as the machine grows
  (the overhead of broadcasting grows with P, so the gap should widen);
* **selectivity sweep** -- generalizing Figure 9: the MAGIC-over-BERD
  ratio as QB's selectivity rises;
* **declustering cost** -- what loading each placement costs (MAGIC pays
  two scans, BERD an auxiliary pass);
* **CP sensitivity** -- how the cost model's ideal processor count M_i
  responds to the cost of participation (an equation-3 ablation).
"""

import math

import pytest

from repro.core import BerdStrategy, MagicStrategy, MagicTuning, RangeStrategy
from repro.gamma import GAMMA_PARAMETERS, GammaMachine, simulate_declustering
from repro.storage import make_wisconsin
from repro.workload import cost_model_for_mix, make_mix

from conftest import MEASURED

INDEXES = {"unique1": False, "unique2": True}


def magic_for(processors, card):
    # Scale the low-low directory with the machine; targets stay (P/8, P/4).
    side = int(math.sqrt(card // 26))
    return MagicStrategy(
        ["unique1", "unique2"],
        tuning=MagicTuning(shape={"unique1": side, "unique2": side},
                           mi={"unique1": max(processors / 8, 1),
                               "unique2": max(processors / 4, 2)}))


def test_scalability_gap_widens_with_processors(benchmark):
    """range's broadcast overhead grows with P; MAGIC's localization
    keeps per-query costs flat -- the paper's core scalability claim."""
    card = 50_000

    def run():
        relation = make_wisconsin(card, correlation="low", seed=13)
        mix = make_mix("low-low", domain=card)
        ratios = {}
        for processors in (8, 32):
            range_pl = RangeStrategy("unique1").partition(relation,
                                                          processors)
            magic_pl = magic_for(processors, card).partition(relation,
                                                             processors)
            mpl = 2 * processors
            out = {}
            for name, placement in (("range", range_pl),
                                    ("magic", magic_pl)):
                machine = GammaMachine(placement, indexes=INDEXES, seed=3)
                out[name] = machine.run(
                    mix, multiprogramming_level=mpl,
                    measured_queries=MEASURED).throughput
            ratios[processors] = out["magic"] / out["range"]
        return ratios

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nMAGIC/range throughput ratio: "
          + ", ".join(f"P={p}: {r:.2f}x" for p, r in ratios.items()))
    assert ratios[32] > ratios[8], \
        "the localization advantage must grow with the machine"
    assert ratios[32] > 1.5


def test_selectivity_sweep_extends_figure9(benchmark):
    """Figure 9 generalized: MAGIC/BERD ratio vs QB tuples retrieved."""
    card = 100_000

    def run():
        relation = make_wisconsin(card, correlation="low", seed=13)
        berd = BerdStrategy("unique1", ["unique2"]).partition(relation, 32)
        magic = MagicStrategy(
            ["unique1", "unique2"],
            tuning=MagicTuning(shape={"unique1": 62, "unique2": 61},
                               mi={"unique1": 4.0, "unique2": 8.0}),
        ).partition(relation, 32)
        ratios = {}
        for qb_tuples in (10, 20, 40):
            mix = make_mix("low-low", domain=card,
                           qb_low_tuples=qb_tuples)
            out = {}
            for name, placement in (("berd", berd), ("magic", magic)):
                machine = GammaMachine(placement, indexes=INDEXES, seed=3)
                out[name] = machine.run(
                    mix, multiprogramming_level=48,
                    measured_queries=MEASURED).throughput
            ratios[qb_tuples] = out["magic"] / out["berd"]
        return ratios

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nMAGIC/BERD ratio by QB selectivity: "
          + ", ".join(f"{t} tuples: {r:.2f}x" for t, r in ratios.items()))
    # The margin grows with selectivity (BERD's fan-out follows the
    # tuple count; MAGIC's stays one grid row).
    assert ratios[40] > ratios[10]


def test_declustering_cost(benchmark):
    """Loading: MAGIC pays ~2 scans, BERD an auxiliary pass."""
    card = 50_000

    def run():
        relation = make_wisconsin(card, correlation="low", seed=13)
        out = {}
        for name, strategy in (
                ("range", RangeStrategy("unique1")),
                ("berd", BerdStrategy("unique1", ["unique2"])),
                ("magic", magic_for(32, card))):
            placement = strategy.partition(relation, 32)
            out[name] = simulate_declustering(placement, INDEXES, seed=1)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, load in results.items():
        print(f"  {load}")
    assert results["magic"].elapsed_seconds > \
        results["range"].elapsed_seconds
    assert results["berd"].pages_written > results["range"].pages_written


def test_hot_spot_access_skew(benchmark):
    """An 80/20 hot-spot workload erodes every strategy's throughput.

    MAGIC suffers most: its blocked assignment maps the hot region of
    each attribute onto specific processor groups, so access skew turns
    into processor skew.  An honest negative result -- the paper's
    heuristics assume uniform access.  Even so, MAGIC never falls below
    range.
    """
    card = 100_000

    def run():
        relation = make_wisconsin(card, correlation="low", seed=13)
        placements = {
            "range": RangeStrategy("unique1").partition(relation, 32),
            "magic": MagicStrategy(
                ["unique1", "unique2"],
                tuning=MagicTuning(shape={"unique1": 62, "unique2": 61},
                                   mi={"unique1": 4.0, "unique2": 8.0}),
            ).partition(relation, 32),
        }
        out = {}
        for label, kwargs in (("uniform", {}),
                              ("hot-80-20", dict(hot_fraction=0.2,
                                                 hot_probability=0.8))):
            mix = make_mix("low-low", domain=card, **kwargs)
            for name, placement in placements.items():
                machine = GammaMachine(placement, indexes=INDEXES, seed=3)
                out[(label, name)] = machine.run(
                    mix, multiprogramming_level=48,
                    measured_queries=MEASURED).throughput
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for (label, name), th in sorted(result.items()):
        print(f"  {label:10s} {name:6s} {th:7.1f} q/s")
    assert result[("hot-80-20", "magic")] < result[("uniform", "magic")]
    assert result[("hot-80-20", "magic")] >= result[("hot-80-20", "range")]


def test_skewed_data_gridfile_ablation(benchmark):
    """Adaptive (equi-depth) splitting vs naive equal-width boundaries
    on power-law data: the grid file's defining advantage.

    Queries are placed where the data lives (hot region matching the
    power-law mass): with skew 3, ~59% of tuples fall in the first 20%
    of the value domain, so the workload targets it at 80%.
    """
    from repro.storage import make_skewed_wisconsin

    def run():
        relation = make_skewed_wisconsin(100_000, skew=3.0, seed=13)
        mix = make_mix("low-low", hot_fraction=0.2, hot_probability=0.8)
        out = {}
        for label, equal_width in (("equi-depth", False),
                                   ("equal-width", True)):
            strategy = MagicStrategy(
                ["unique1", "unique2"],
                tuning=MagicTuning(shape={"unique1": 62, "unique2": 61},
                                   mi={"unique1": 4.0, "unique2": 8.0},
                                   equal_width=equal_width))
            placement = strategy.partition(relation, 32)
            cards = placement.cardinalities()
            machine = GammaMachine(placement, indexes=INDEXES, seed=3)
            throughput = machine.run(mix, multiprogramming_level=48,
                                     measured_queries=MEASURED).throughput
            out[label] = (throughput, int(cards.max()))
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for label, (th, heaviest) in result.items():
        print(f"  {label:12s} {th:7.1f} q/s  heaviest site "
              f"{heaviest} tuples")
    th_depth, max_depth = result["equi-depth"]
    th_width, max_width = result["equal-width"]
    assert max_width > 1.5 * max_depth
    assert th_depth > th_width


def test_write_workload(benchmark):
    """Mixed read/insert workload (extension): BERD pays auxiliary
    maintenance on every insert (an extra site with a read-modify-write
    and index update), a cost the paper's read-only workload never
    charges it.  MAGIC and range insert at a single site."""
    import random

    from repro.core import RangePredicate

    card = 50_000

    def run():
        relation = make_wisconsin(card, correlation="low", seed=13)
        strategies = {
            "range": RangeStrategy("unique1"),
            "berd": BerdStrategy("unique1", ["unique2"]),
            "magic": MagicStrategy(
                ["unique1", "unique2"],
                tuning=MagicTuning(shape={"unique1": 44, "unique2": 43},
                                   mi={"unique1": 3.0, "unique2": 5.0})),
        }
        out = {}
        for name, strategy in strategies.items():
            placement = strategy.partition(relation, 16)
            machine = GammaMachine(placement, indexes=INDEXES, seed=3)
            env = machine.env

            def terminal(env, rng):
                while True:
                    if rng.random() < 0.5:
                        u1 = rng.randrange(card)
                        handle = machine.scheduler.submit_insert(
                            "R", {"unique1": u1,
                                  "unique2": rng.randrange(card)})
                    else:
                        lo = rng.randrange(card - 10)
                        handle = machine.scheduler.submit(
                            "R", "QB",
                            RangePredicate("unique2", lo, lo + 9))
                    submitted = env.now
                    yield handle.completion
                    machine.metrics.record_completion(
                        handle.query_type, env.now - submitted)

            for i in range(24):
                env.process(terminal(env, random.Random(1000 + i)))
            env.run(until=machine.metrics.on_completion_count(100))
            machine.metrics.reset_window()
            env.run(until=machine.metrics.on_completion_count(
                100 + MEASURED))
            out[name] = machine.metrics.throughput()
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + ", ".join(f"{k}={v:.0f} q/s" for k, v in result.items()))
    # MAGIC keeps a clear lead: single-site inserts plus localized reads.
    # BERD's insert maintenance roughly cancels its read localization
    # against range (the two land within ~10% of each other).
    assert result["magic"] > 1.3 * result["berd"]
    assert result["range"] > result["berd"] * 0.9


def test_cost_of_participation_sensitivity(benchmark):
    """Equation 3 ablation: M_i shrinks as CP grows (sqrt law)."""
    def run():
        mix = make_mix("moderate-moderate")
        out = {}
        for factor in (0.5, 1.0, 4.0):
            params = GAMMA_PARAMETERS.with_overrides(
                operator_startup_instructions=int(
                    GAMMA_PARAMETERS.operator_startup_instructions
                    * factor),
                message_handling_instructions=int(
                    GAMMA_PARAMETERS.message_handling_instructions
                    * factor))
            model = cost_model_for_mix(mix, params, 100_000)
            out[factor] = model.ideal_mi("unique1")
        return out

    mi = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nM_A(moderate) vs CP scale: "
          + ", ".join(f"x{f}: {v:.1f}" for f, v in mi.items()))
    assert mi[0.5] > mi[1.0] > mi[4.0]
