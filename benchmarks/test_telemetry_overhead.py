"""Telemetry overhead: fig-8a quick regeneration with tracing off vs. on.

Writes ``BENCH_telemetry_overhead.json`` next to the repo root so future
changes can track what instrumentation costs.  The acceptance bar for
the observability layer is that *disabled* telemetry stays within noise
of the uninstrumented seed (every hot-path hook is one attribute check
or a ``span is None`` branch); *enabled* tracing may legitimately cost
tens of percent -- it is an opt-in diagnosis mode.

Run directly (``python benchmarks/test_telemetry_overhead.py``) or via
pytest (``pytest benchmarks/test_telemetry_overhead.py``).
"""

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from ledger import record as ledger_record  # noqa: E402

from repro.experiments import FIGURES, run_experiment
from repro.obs import Telemetry

MPLS = (1, 16, 64)
# Overridable so the CI smoke jobs can seed the perf ledger from a tiny
# configuration (the 3.0x overhead ceiling still holds at any size).
MEASURED = int(os.environ.get("TELEMETRY_BENCH_MEASURED", "250"))
CARDINALITY = int(os.environ.get("TELEMETRY_BENCH_CARDINALITY", "100000"))
PROCESSORS = 32
OUTPUT = os.path.join(os.path.dirname(__file__), os.pardir,
                      "BENCH_telemetry_overhead.json")


def _time_run(telemetry_factory=None):
    started = time.perf_counter()
    result = run_experiment(FIGURES["8a"], cardinality=CARDINALITY,
                            num_sites=PROCESSORS, measured_queries=MEASURED,
                            mpls=MPLS, seed=13,
                            telemetry_factory=telemetry_factory)
    wall = time.perf_counter() - started
    return wall, result


def measure():
    off_wall, off_result = _time_run()
    telemetries = {}

    def factory(strategy, mpl):
        telemetry = Telemetry()
        telemetries[(strategy, mpl)] = telemetry
        return telemetry

    on_wall, on_result = _time_run(factory)
    spans = sum(t.spans.span_count() for t in telemetries.values())
    return {
        "benchmark": "fig-8a quick regeneration (3 MPL points x 3 strategies)",
        "mpls": list(MPLS),
        "measured_queries": MEASURED,
        "telemetry_off_wall_seconds": round(off_wall, 3),
        "telemetry_on_wall_seconds": round(on_wall, 3),
        "overhead_ratio": round(on_wall / off_wall, 3),
        "spans_recorded": spans,
        "throughput_unchanged": {
            strategy: [off_result.throughput_at(strategy, mpl)
                       == on_result.throughput_at(strategy, mpl)
                       for mpl in MPLS]
            for strategy in off_result.series
        },
    }


def test_telemetry_overhead_and_artifact():
    payload = measure()
    with open(OUTPUT, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    ledger_record({
        "telemetry_overhead_ratio": payload["overhead_ratio"],
    }, benchmark="telemetry_overhead")
    # Tracing must not change the simulation itself: identical seeds
    # produce identical throughput series with telemetry off and on.
    for flags in payload["throughput_unchanged"].values():
        assert all(flags)
    # Enabled tracing is allowed to cost time, but not absurdly so.
    assert payload["overhead_ratio"] < 3.0


if __name__ == "__main__":
    print(json.dumps(measure(), indent=2, sort_keys=True))
