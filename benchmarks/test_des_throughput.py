"""DES kernel throughput: optimized event loop vs. the frozen baseline.

Runs the canonical fig-8a workload (mpl 16, all three strategies) on
both kernels -- the live ``repro.des`` and the pre-optimization
snapshot in ``benchmarks/_baseline_des`` -- interleaved in a single
process (see :mod:`benchmarks.des_workload` for why interleaving is
essential on noisy hosts), and writes ``BENCH_des_throughput.json``
next to the repo root.

The acceptance bar is a >= 1.5x events/sec improvement overall, and
the comparison is only meaningful because ``run_compare`` asserts the
two kernels produce bit-identical simulation results first: a faster
kernel that drifts is a different simulator, not an optimization.

Environment overrides (used by the CI ``perf-smoke`` job to keep the
run small; the speedup floor is only asserted on the full
configuration):

* ``DES_BENCH_MEASURED`` -- measured queries per strategy (default 100)
* ``DES_BENCH_REPEAT``   -- timed repeats per kernel (default 4)
* ``DES_BENCH_ASSERT_SPEEDUP`` -- set to ``0`` to record without
  asserting (tiny configs are noise-dominated)

Run directly (``python benchmarks/test_des_throughput.py``) or via
pytest (``pytest benchmarks/test_des_throughput.py``).
"""

import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from des_workload import run_compare  # noqa: E402
from ledger import record as ledger_record  # noqa: E402

CARDINALITY = 100_000
PROCESSORS = 32
MPL = 16
MEASURED = int(os.environ.get("DES_BENCH_MEASURED", "100"))
REPEAT = int(os.environ.get("DES_BENCH_REPEAT", "4"))
ASSERT_SPEEDUP = os.environ.get("DES_BENCH_ASSERT_SPEEDUP", "1") != "0"
STRATEGIES = ("range", "magic", "berd")
SPEEDUP_FLOOR = 1.5
OUTPUT = os.path.join(os.path.dirname(__file__), os.pardir,
                      "BENCH_des_throughput.json")


def measure():
    summary = run_compare(
        cardinality=CARDINALITY, num_sites=PROCESSORS, mpl=MPL,
        measured_queries=MEASURED, seed=13, strategies=list(STRATEGIES),
        repeat=REPEAT)
    report = {
        "benchmark": "fig-8a simulation, optimized DES kernel vs. frozen "
                     "baseline (interleaved in-process, best of "
                     f"{REPEAT} repeats)",
        "config": summary["config"],
        "total_events": summary["total_events"],
        "cpu_seconds": {name: round(value, 4)
                        for name, value in
                        summary["total_cpu_seconds"].items()},
        "events_per_second": {name: round(value)
                              for name, value in
                              summary["events_per_second"].items()},
        "per_strategy_speedup": {
            strategy: round(entry["speedup"], 3)
            for strategy, entry in summary["strategies"].items()},
        "speedup": round(summary["speedup"], 3),
        "results_identical": summary["results_identical"],
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_asserted": ASSERT_SPEEDUP,
    }
    return report


def test_des_throughput():
    report = measure()
    with open(OUTPUT, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    ledger_record({
        "des_kernel_speedup": report["speedup"],
        "des_events_per_second": report["events_per_second"]["current"],
    }, benchmark="des_throughput")
    print()
    print(json.dumps(report, indent=2, sort_keys=True))
    # run_compare already raised if any strategy's results diverged
    # between kernels or across repeats; record the fact regardless.
    assert report["results_identical"]
    if report["speedup_asserted"]:
        assert report["speedup"] >= SPEEDUP_FLOOR, (
            f"expected >= {SPEEDUP_FLOOR}x kernel speedup on the fig-8a "
            f"workload, got {report['speedup']}x")
    else:
        print("(speedup floor not asserted for this configuration, "
              "artifact recorded)")


if __name__ == "__main__":
    test_des_throughput()
    print(f"wrote {os.path.abspath(OUTPUT)}")
