"""Figure 10: throughput vs MPL for the Low-Moderate query mix.

Paper findings reproduced here:

* 10a (low correlation): MAGIC's 23x193 directory sends QA to 2 and QB
  to ~16 processors and wins.  BERD drops *below* range: its QB touches
  all 32 processors anyway (the 300 qualifying tuples are scattered)
  while still paying the auxiliary-relation access.
* 10b (high correlation): every query localizes; range wins only at
  trivially low MPL, the multi-attribute strategies win at high MPL
  with MAGIC ahead of BERD.
"""

from conftest import regenerate


def test_figure_10a_low_correlation(benchmark):
    result = regenerate("10a", benchmark)
    finals = result.final_throughputs()
    assert finals["magic"] > finals["range"], \
        "paper: MAGIC on top in the low-moderate mix"
    assert finals["range"] > finals["berd"], \
        "paper: BERD below range -- auxiliary overhead with no localization"


def test_figure_10b_high_correlation(benchmark):
    result = regenerate("10b", benchmark)
    finals = result.final_throughputs()
    assert finals["magic"] > finals["berd"], \
        "paper: MAGIC avoids the auxiliary-relation search"
    assert finals["berd"] > finals["range"], \
        "paper: localization beats range at high MPL"
    # Range outperforms at MPL 1 (it parallelizes the query).
    first = {s: runs[0].throughput for s, runs in result.series.items()}
    assert first["range"] >= 0.8 * first["berd"], \
        "paper: at MPL 1 range is competitive (intra-query parallelism)"
