"""Figure 11: throughput vs MPL for the Moderate-Low query mix.

Paper findings reproduced here:

* 11a (low correlation): the 193x23 directory spreads the moderate QA
  over ~16 processors; BERD now *beats range* (its 10-tuple QB is
  localized to <= 11 processors instead of broadcast) but stays below
  MAGIC.
* 11b (high correlation): "almost identical to that of Section 7.2".
  KNOWN DEVIATION: in our model BERD edges MAGIC here by ~7% (BERD's
  correlation-immune equal-depth placement vs. MAGIC's residual load
  spread; the entry-exchange pass recovers balance but costs B-slice
  diversity); we assert the two are within 15% and both far above
  range.  See EXPERIMENTS.md.
"""

from conftest import regenerate


def test_figure_11a_low_correlation(benchmark):
    result = regenerate("11a", benchmark)
    finals = result.final_throughputs()
    assert finals["magic"] > finals["berd"], \
        "paper: MAGIC on top in the moderate-low mix"
    assert finals["berd"] > finals["range"], \
        "paper: BERD outperforms range (QB localized to <= 11 processors)"


def test_figure_11b_high_correlation(benchmark):
    result = regenerate("11b", benchmark)
    finals = result.final_throughputs()
    assert finals["berd"] > finals["range"]
    assert finals["magic"] > finals["range"]
    # Known deviation: paper puts MAGIC ahead; we reproduce near-parity.
    assert finals["magic"] > 0.85 * finals["berd"], \
        "MAGIC must stay within 15% of BERD (documented deviation)"
