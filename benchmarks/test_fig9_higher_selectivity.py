"""Figure 9: Low-Low mix with QB's selectivity doubled to 20 tuples.

Paper finding: BERD's processor usage for QB grows with the number of
qualifying tuples (each lands on another processor under low
correlation), while MAGIC keeps using the same 8-processor row slice --
"MAGIC outperforms BERD by 50% at a multiprogramming level of 64".
"""

from conftest import regenerate


def test_figure_9_qb_twenty_tuples(benchmark):
    result = regenerate("9", benchmark)
    finals = result.final_throughputs()
    assert finals["magic"] > 1.15 * finals["berd"], \
        "paper: MAGIC beats BERD by ~50% at MPL 64 with 20-tuple QB"


def test_figure_9_margin_exceeds_figure_8a(benchmark):
    """The MAGIC-over-BERD margin must *grow* with QB's selectivity --
    the mechanism Figure 9 demonstrates.  (Routing-level check.)"""
    import random

    import numpy as np

    from repro.core import RangePredicate
    from repro.experiments import FIGURES, build_strategy
    from repro.storage import make_wisconsin

    def measure():
        relation = make_wisconsin(100_000, correlation="low", seed=13)
        berd = build_strategy("berd", FIGURES["9"], 100_000).partition(
            relation, 32)
        magic = build_strategy("magic", FIGURES["9"], 100_000).partition(
            relation, 32)
        rng = random.Random(0)

        def avg_sites(placement, width):
            widths = []
            for _ in range(200):
                lo = rng.randrange(100_000 - width)
                widths.append(placement.route(
                    RangePredicate("unique2", lo,
                                   lo + width - 1)).site_count)
            return float(np.mean(widths))

        return (avg_sites(berd, 10), avg_sites(berd, 20),
                avg_sites(magic, 10), avg_sites(magic, 20))

    berd_10, berd_20, magic_10, magic_20 = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    print(f"\nQB sites: berd 10t={berd_10:.1f} 20t={berd_20:.1f}; "
          f"magic 10t={magic_10:.1f} 20t={magic_20:.1f}")
    # BERD's fan-out roughly doubles; MAGIC's stays at the row's 8 procs.
    assert berd_20 > 1.5 * berd_10
    assert magic_20 < 1.3 * magic_10
