"""The §7 in-text numbers: directory shapes and processor counts.

Regenerates, for each query mix, the average number of processors each
strategy directs each query type to -- the numbers the paper quotes in
the running text of §7 (e.g. low-low: MAGIC 6.39 average with QB on 8
processors, range 16.5, BERD ~6; low-moderate: MAGIC QA -> 2, QB -> 16).
"""

import pytest

from repro.experiments import FIGURES, average_processors_table

from conftest import CARDINALITY, PROCESSORS


def table_for(figure):
    return average_processors_table(FIGURES[figure],
                                    cardinality=CARDINALITY,
                                    num_sites=PROCESSORS, samples=300,
                                    seed=13)


def print_table(figure, table):
    print()
    print(f"Figure {figure} processor counts:")
    for strategy, stats in table.items():
        parts = ", ".join(f"{k}={v:.2f}" for k, v in stats.items())
        print(f"  {strategy:8s} {parts}")


def test_low_low_processor_counts(benchmark):
    """§7.1: MAGIC ~6.39 avg (QB on 8), range 16.5, BERD ~6."""
    table = benchmark.pedantic(table_for, args=("8a",), rounds=1,
                               iterations=1)
    print_table("8a", table)
    assert table["range"]["QA"] == pytest.approx(1.0, abs=0.1)
    assert table["range"]["QB"] == pytest.approx(32.0, abs=0.1)
    assert table["range"]["average"] == pytest.approx(16.5, abs=0.5)
    assert 7 <= table["magic"]["QB"] <= 9          # paper: 8
    assert 4.5 <= table["magic"]["average"] <= 8   # paper: 6.39
    assert 5 <= table["berd"]["average"] <= 7.5    # paper: ~6


def test_low_moderate_processor_counts(benchmark):
    """§7.2: MAGIC directs QA to two and QB to sixteen processors;
    BERD and range send QB to all 32."""
    table = benchmark.pedantic(table_for, args=("10a",), rounds=1,
                               iterations=1)
    print_table("10a", table)
    # Paper: 2.  The balanced assignment's surplus-block alternation
    # raises a few slices to 4 distinct processors (avg ~2.7) in exchange
    # for even loads -- see DESIGN.md.
    assert 1.5 <= table["magic"]["QA"] <= 3.0
    assert 14 <= table["magic"]["QB"] <= 20        # paper: 16
    assert table["berd"]["QB"] >= 30               # scattered tuples
    assert table["range"]["QB"] == pytest.approx(32.0, abs=0.1)


def test_moderate_low_processor_counts(benchmark):
    """§7.3: transposed -- QB to two, QA to sixteen; BERD's QB <= 11."""
    table = benchmark.pedantic(table_for, args=("11a",), rounds=1,
                               iterations=1)
    print_table("11a", table)
    assert 14 <= table["magic"]["QA"] <= 20        # paper: 16
    assert table["magic"]["QB"] <= 4               # paper: 2
    assert table["berd"]["QB"] <= 11.5             # paper: at most 11


def test_moderate_moderate_processor_counts(benchmark):
    """§7.4: MAGIC ~6.5 average; BERD and range 16.5."""
    table = benchmark.pedantic(table_for, args=("12a",), rounds=1,
                               iterations=1)
    print_table("12a", table)
    assert 5 <= table["magic"]["average"] <= 8.5   # paper: 6.5
    assert table["range"]["average"] == pytest.approx(16.5, abs=0.5)


def test_high_correlation_localizes_all(benchmark):
    """§7's high-correlation claim: every query on ~1 processor."""
    def both():
        return {fig: average_processors_table(
                    FIGURES[fig], cardinality=CARDINALITY,
                    num_sites=PROCESSORS, samples=200, seed=13)
                for fig in ("8b", "12b")}

    tables = benchmark.pedantic(both, rounds=1, iterations=1)
    for fig, table in tables.items():
        print_table(fig, table)
        assert table["magic"]["average"] <= 3.0
        # BERD's QB counts the probe site too.
        assert table["berd"]["QB"] <= 3.0
