"""Run the canonical fig-8a workload and report DES kernel throughput.

One invocation simulates the figure-8a query mix at a single
multiprogramming level for each requested strategy, timing only the
``GammaMachine.run`` window (relation generation and placement
construction happen before the clock starts).  The summary -- agenda
entries scheduled, CPU seconds, events/sec, and the full
:class:`~repro.gamma.metrics.RunResult` per strategy -- is printed to
stdout as JSON.

Two kernels can be measured:

* ``current`` -- the live ``repro.des`` package;
* ``baseline`` -- the frozen pre-optimization snapshot in
  ``benchmarks/_baseline_des``.

The default ``--compare`` mode loads *both* in one interpreter: the
baseline rides in a private copy of the ``repro`` package (registered
as ``_repro_baseline`` with its ``des`` subpackage pointed at the
snapshot), and the timed repeats alternate kernels back to back.
Interleaving inside a single process is what makes the measurement
robust: host-level CPU speed drifts by tens of percent between
invocations, but adjacent repeats see the same machine state, and the
best-of-``--repeat`` CPU time per kernel discards scheduler noise and
one-time lazy imports.  ``--kernel current``/``--kernel baseline``
run one kernel only (the baseline via ``sys.modules`` aliasing before
anything imports ``repro``), which keeps a fully isolated cross-check
available.

Run standalone with the package on the path::

    PYTHONPATH=src python benchmarks/des_workload.py --measured 100 --repeat 3
"""

import argparse
import importlib
import importlib.util
import json
import os
import sys
import time
from dataclasses import asdict

HERE = os.path.dirname(os.path.abspath(__file__))
_BASELINE_PKG = "_repro_baseline"


def _install_baseline_kernel() -> None:
    """Alias ``repro.des`` to the pre-optimization snapshot.

    Must run before any ``repro`` import: the snapshot package is
    registered in ``sys.modules`` under the real name, so every later
    ``from ..des import ...`` (and submodule import such as
    ``repro.des.environment``) resolves to the frozen copy.
    """
    base = os.path.join(HERE, "_baseline_des")
    spec = importlib.util.spec_from_file_location(
        "repro.des", os.path.join(base, "__init__.py"),
        submodule_search_locations=[base])
    module = importlib.util.module_from_spec(spec)
    sys.modules["repro.des"] = module
    spec.loader.exec_module(module)


def _load_baseline_machine():
    """Import a private ``repro`` copy running on the snapshot kernel.

    The copy is registered as ``_repro_baseline`` with
    ``_repro_baseline.des`` pre-bound to ``benchmarks/_baseline_des``,
    so its every relative ``from ..des import ...`` resolves to the
    frozen kernel while the model code is byte-for-byte the same
    source as the live package.  Returns the copy's ``GammaMachine``.
    """
    if _BASELINE_PKG not in sys.modules:
        src = os.path.normpath(os.path.join(HERE, os.pardir, "src", "repro"))
        pkg_spec = importlib.util.spec_from_file_location(
            _BASELINE_PKG, os.path.join(src, "__init__.py"),
            submodule_search_locations=[src])
        pkg = importlib.util.module_from_spec(pkg_spec)
        sys.modules[_BASELINE_PKG] = pkg
        # The snapshot kernel must be registered before the package
        # body runs (it imports .gamma, which imports ..des).
        base = os.path.join(HERE, "_baseline_des")
        des_spec = importlib.util.spec_from_file_location(
            f"{_BASELINE_PKG}.des", os.path.join(base, "__init__.py"),
            submodule_search_locations=[base])
        des = importlib.util.module_from_spec(des_spec)
        sys.modules[f"{_BASELINE_PKG}.des"] = des
        des_spec.loader.exec_module(des)
        pkg_spec.loader.exec_module(pkg)
    return importlib.import_module(
        f"{_BASELINE_PKG}.gamma.machine").GammaMachine


def _build_points(cardinality, num_sites, mpl, measured_queries, seed,
                  strategies, package: str = "repro"):
    """Compile the workload for one package copy.

    *package* matters in compare mode: placements and indexes are
    dispatched on ``isinstance`` inside the model (loader, catalog), so
    each package copy must consume objects built from its *own* classes
    -- a current-package ``MagicPlacement`` handed to the baseline copy
    would silently fail its checks and simulate a different machine.
    The copies are byte-identical source, so same seeds => same
    workload.
    """
    config_mod = importlib.import_module(f"{package}.experiments.config")
    plan = importlib.import_module(f"{package}.experiments.plan")

    config = config_mod.FIGURES["8a"]
    points = []
    for strategy in strategies:
        spec = plan.compile_point(
            config, strategy, multiprogramming_level=mpl,
            cardinality=cardinality, num_sites=num_sites,
            measured_queries=measured_queries, seed=seed).spec
        # Everything the simulation consumes is built outside the timed
        # window: this benchmark measures the event loop, not NumPy.
        placement = plan.placement_for_spec(spec)
        mix = plan.make_mix(spec.mix_name, domain=spec.cardinality,
                            qb_low_tuples=spec.qb_low_tuples)
        points.append((strategy, spec, placement, mix))
    return points


def _timed_run(machine_cls, spec, placement, mix, indexes, params):
    """One simulation run; returns (cpu_seconds, wall_seconds, events, result)."""
    machine = machine_cls(placement, indexes=indexes, params=params,
                          seed=spec.machine_seed)
    wall_started = time.perf_counter()
    cpu_started = time.process_time()
    result = machine.run(
        mix, multiprogramming_level=spec.multiprogramming_level,
        measured_queries=spec.measured_queries)
    cpu = time.process_time() - cpu_started
    wall = time.perf_counter() - wall_started
    # The baseline snapshot predates the events_scheduled property;
    # _seq is the same counter in both kernels.
    return cpu, wall, machine.env._seq, asdict(result)


def run_workload(cardinality: int, num_sites: int, mpl: int,
                 measured_queries: int, seed: int, strategies,
                 repeat: int = 1, kernel: str = "current"):
    """Measure one kernel (the classic single-kernel mode)."""
    from repro.experiments.plan import GAMMA_PARAMETERS, PAPER_INDEXES
    from repro.gamma.machine import GammaMachine

    points = _build_points(cardinality, num_sites, mpl, measured_queries,
                           seed, strategies)
    per_strategy = {}
    total_events = 0
    total_cpu = 0.0
    for strategy, spec, placement, mix in points:
        cpu = wall = float("inf")
        result = events = None
        for _ in range(max(1, repeat)):
            this_cpu, this_wall, this_events, this_result = _timed_run(
                GammaMachine, spec, placement, mix, PAPER_INDEXES,
                GAMMA_PARAMETERS)
            if result is not None and (this_result != result
                                       or this_events != events):
                raise AssertionError(
                    f"non-deterministic repeat for {strategy!r}")
            result, events = this_result, this_events
            cpu = min(cpu, this_cpu)
            wall = min(wall, this_wall)
        total_events += events
        total_cpu += cpu
        per_strategy[strategy] = {
            "events": events,
            "cpu_seconds": cpu,
            "wall_seconds": wall,
            "events_per_second": events / cpu if cpu else 0.0,
            "result": result,
        }
    return {
        "config": {
            "figure": "8a",
            "cardinality": cardinality,
            "num_sites": num_sites,
            "multiprogramming_level": mpl,
            "measured_queries": measured_queries,
            "seed": seed,
            "strategies": list(strategies),
            "repeat": max(1, repeat),
        },
        "kernel": kernel,
        "strategies": per_strategy,
        "total_events": total_events,
        "total_cpu_seconds": total_cpu,
        "events_per_second": total_events / total_cpu if total_cpu else 0.0,
    }


def run_compare(cardinality: int, num_sites: int, mpl: int,
                measured_queries: int, seed: int, strategies,
                repeat: int = 3):
    """Measure both kernels, interleaved, in this process.

    Per strategy and repeat the two kernels run back to back
    (current first, then baseline), so both see the same host state;
    the per-kernel best-of-``repeat`` CPU time is the throughput
    basis.  Results are asserted bit-identical across kernels and
    deterministic across repeats.
    """
    _load_baseline_machine()
    kernels = {}
    for name, package in (("current", "repro"), ("baseline", _BASELINE_PKG)):
        plan = importlib.import_module(f"{package}.experiments.plan")
        kernels[name] = {
            "machine": importlib.import_module(
                f"{package}.gamma.machine").GammaMachine,
            "params": plan.GAMMA_PARAMETERS,
            "indexes": plan.PAPER_INDEXES,
            "points": _build_points(cardinality, num_sites, mpl,
                                    measured_queries, seed, strategies,
                                    package=package),
        }

    per_strategy = {}
    totals = {name: 0.0 for name in kernels}
    total_events = 0
    for index, strategy in enumerate(strategies):
        # Untimed warm-up of both kernels: first contact pays lazy
        # imports (scipy for the confidence interval) and code-object
        # warm-up; it also provides the reference results.
        reference = {}
        events = None
        for name, k in kernels.items():
            _, _, ref_events, ref_result = _timed_run(
                k["machine"], *k["points"][index][1:], k["indexes"],
                k["params"])
            reference[name] = ref_result
            if events is not None and ref_events != events:
                raise AssertionError(
                    f"kernels scheduled different event counts for "
                    f"{strategy!r}: {ref_events} != {events}")
            events = ref_events
        if reference["current"] != reference["baseline"]:
            raise AssertionError(
                f"kernels disagree on simulated results for {strategy!r}")

        best = {name: float("inf") for name in kernels}
        for _ in range(max(1, repeat)):
            for name, k in kernels.items():
                cpu, _, this_events, this_result = _timed_run(
                    k["machine"], *k["points"][index][1:], k["indexes"],
                    k["params"])
                if this_result != reference[name] or this_events != events:
                    raise AssertionError(
                        f"non-deterministic repeat for {strategy!r} "
                        f"on the {name} kernel")
                best[name] = min(best[name], cpu)

        total_events += events
        entry = {"events": events, "result": reference["current"]}
        for name in kernels:
            totals[name] += best[name]
            entry[name] = {
                "cpu_seconds": best[name],
                "events_per_second": (events / best[name]
                                      if best[name] else 0.0),
            }
        entry["speedup"] = (best["baseline"] / best["current"]
                            if best["current"] else 0.0)
        per_strategy[strategy] = entry

    return {
        "config": {
            "figure": "8a",
            "cardinality": cardinality,
            "num_sites": num_sites,
            "multiprogramming_level": mpl,
            "measured_queries": measured_queries,
            "seed": seed,
            "strategies": list(strategies),
            "repeat": max(1, repeat),
        },
        "mode": "compare",
        "strategies": per_strategy,
        "total_events": total_events,
        "total_cpu_seconds": totals,
        "events_per_second": {
            name: total_events / totals[name] if totals[name] else 0.0
            for name in totals},
        "speedup": (totals["baseline"] / totals["current"]
                    if totals["current"] else 0.0),
        "results_identical": True,  # asserted above, per strategy
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kernel", choices=["compare", "current", "baseline"],
                        default="compare",
                        help="measure both kernels interleaved (default) "
                             "or a single one in isolation")
    parser.add_argument("--baseline", action="store_true",
                        help="shorthand for --kernel baseline")
    parser.add_argument("--cardinality", type=int, default=100_000)
    parser.add_argument("--sites", type=int, default=32)
    parser.add_argument("--mpl", type=int, default=16)
    parser.add_argument("--measured", type=int, default=150)
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument("--strategies", default="range,magic,berd",
                        help="comma-separated strategy names")
    parser.add_argument("--repeat", type=int, default=3,
                        help="repeats per strategy; best CPU time wins")
    args = parser.parse_args(argv)

    kernel = "baseline" if args.baseline else args.kernel
    strategies = [s for s in args.strategies.split(",") if s]
    if kernel == "compare":
        summary = run_compare(
            cardinality=args.cardinality, num_sites=args.sites,
            mpl=args.mpl, measured_queries=args.measured, seed=args.seed,
            strategies=strategies, repeat=args.repeat)
    else:
        if kernel == "baseline":
            _install_baseline_kernel()
        summary = run_workload(
            cardinality=args.cardinality, num_sites=args.sites,
            mpl=args.mpl, measured_queries=args.measured, seed=args.seed,
            strategies=strategies, repeat=args.repeat, kernel=kernel)
    json.dump(summary, sys.stdout)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
