"""Scale-up benchmark: events/sec and placement-build seconds vs P.

Runs the fig-8a workload at machine sizes 32..1024 (one MPL-8 point per
strategy per size) and writes ``BENCH_scaleup.json`` next to the repo
root: per machine size, the MAGIC/range/BERD placement-build seconds,
the DES events/sec achieved by the simulation, and the simulated
throughputs.  Rows for the headline metrics are appended to the perf
ledger so ``repro-perf`` can trend them across commits.

The acceptance bar is the ISSUE-7 criterion: the ``num_sites=1024``
MAGIC placement (fig-8a-style 62x61 grid over the full 100k-tuple
relation) must build in under 30 seconds.  The bar is asserted only on
the full configuration -- the CI smoke runs a reduced relation via the
``SCALEUP_BENCH_*`` environment knobs, where the bound would be
meaninglessly easy.

Run directly (``python benchmarks/test_scaleup.py``) or via pytest
(``pytest benchmarks/test_scaleup.py``).
"""

import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from ledger import record as ledger_record  # noqa: E402

from repro.experiments import SCALEUP_SITES, run_scaleup

# Overridable so the CI smoke job can exercise the full pipeline (and
# seed the perf ledger) from a tiny configuration.
SITES = tuple(int(v) for v in os.environ.get(
    "SCALEUP_BENCH_SITES",
    ",".join(str(s) for s in SCALEUP_SITES)).split(","))
CARDINALITY = int(os.environ.get("SCALEUP_BENCH_CARDINALITY", "100000"))
MEASURED = int(os.environ.get("SCALEUP_BENCH_MEASURED", "100"))
MPL = int(os.environ.get("SCALEUP_BENCH_MPL", "8"))
BUILD_CEILING_SECONDS = 30.0
OUTPUT = os.path.join(os.path.dirname(__file__), os.pardir,
                      "BENCH_scaleup.json")

#: The 30s bar applies to the configuration the ISSUE names: the full
#: relation at P=1024.  Reduced smoke configs record, but don't assert.
FULL_CONFIG = CARDINALITY >= 100_000 and 1024 in SITES


def measure():
    result = run_scaleup(figure="8a", sites=SITES,
                         multiprogramming_level=MPL,
                         cardinality=CARDINALITY,
                         measured_queries=MEASURED, seed=13)
    per_site = {}
    for num_sites in result.sites:
        at_size = [p for p in result.points if p.num_sites == num_sites]
        rates = [p.events_per_sec for p in at_size if p.events_per_sec > 0]
        per_site[str(num_sites)] = {
            "placement_build_seconds": {
                p.strategy: round(p.placement_build_seconds, 3)
                for p in at_size},
            "simulate_seconds": {
                p.strategy: round(p.simulate_seconds, 3) for p in at_size},
            "events": {p.strategy: p.events for p in at_size},
            "events_per_sec": round(sum(rates) / len(rates), 1)
            if rates else 0.0,
            "throughput": {p.strategy: p.result.throughput
                           for p in at_size},
        }
    magic_build = {
        num_sites: next((p.placement_build_seconds
                         for p in result.points
                         if p.num_sites == num_sites
                         and p.strategy == "magic"), 0.0)
        for num_sites in result.sites}
    return {
        "benchmark": "fig-8a scale-up, one MPL point per strategy per "
                     "machine size",
        "sites": list(result.sites),
        "multiprogramming_level": MPL,
        "cardinality": CARDINALITY,
        "measured_queries": MEASURED,
        "per_site": per_site,
        "magic_build_seconds_p1024": round(magic_build.get(1024, 0.0), 3),
        "build_ceiling_seconds": BUILD_CEILING_SECONDS,
        "ceiling_asserted": FULL_CONFIG,
    }


def test_scaleup():
    report = measure()
    with open(OUTPUT, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    metrics = {}
    for num_sites, entry in report["per_site"].items():
        metrics[f"scaleup_events_per_sec_p{num_sites}"] = (
            entry["events_per_sec"])
        magic = entry["placement_build_seconds"].get("magic")
        if magic is not None:
            metrics[f"scaleup_placement_build_seconds_p{num_sites}"] = magic
    ledger_record(metrics, benchmark="scaleup")
    print()
    print(json.dumps(report, indent=2, sort_keys=True))
    if report["ceiling_asserted"]:
        assert report["magic_build_seconds_p1024"] < BUILD_CEILING_SECONDS, (
            f"P=1024 MAGIC placement build took "
            f"{report['magic_build_seconds_p1024']}s, ceiling is "
            f"{BUILD_CEILING_SECONDS}s")
    else:
        print("(reduced configuration: build ceiling recorded, "
              "not asserted)")


if __name__ == "__main__":
    test_scaleup()
    print(f"wrote {os.path.abspath(OUTPUT)}")
