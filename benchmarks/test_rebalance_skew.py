"""The §4 experiment: the slice-swap heuristic on correlated data.

Paper: "in the worst case scenario where the value of the two
partitioning attributes is identical for each tuple of a relation, for a
32 processor system, the original assignment of entries would have
resulted in a very skewed distribution with 12 processors containing no
tuples of the relation.  After applying the heuristic, there was only a
20% difference between any two processors."
"""

from repro.experiments import rebalance_worst_case


def test_section4_worst_case(benchmark):
    stats = benchmark.pedantic(
        rebalance_worst_case,
        kwargs=dict(num_sites=32, cardinality=32_000, grid=32, seed=12),
        rounds=1, iterations=1)
    print()
    print("Section 4 worst case (identical attribute values, 32 procs):")
    for key, value in stats.items():
        print(f"  {key}: {value}")
    # The paper's skew before the heuristic: many empty processors.
    assert stats["empty_before"] >= 10
    # ... and a dramatic repair afterwards.
    assert stats["empty_after"] <= 4
    assert stats["spread_after"] <= stats["spread_before"] / 2


def test_high_correlation_rebalance(benchmark):
    """The heuristic also repairs the (non-degenerate) high-correlation
    directories used in the 'b' figures."""
    from repro.core import assign_entries, load_spread, rebalance_assignment
    from repro.core.gridfile import build_from_shape
    from repro.storage import make_wisconsin

    def run():
        relation = make_wisconsin(100_000, correlation="high", seed=13)
        directory = build_from_shape(relation, ["unique1", "unique2"],
                                     (62, 61))
        directory.set_assignment(assign_entries((62, 61), [4.0, 8.0], 32))
        before = load_spread(directory.tuples_per_site(32))
        swaps = rebalance_assignment(directory, 32, max_iterations=400)
        after = load_spread(directory.tuples_per_site(32))
        return before, after, swaps

    before, after, swaps = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nhigh-correlation 62x61: spread {before} -> {after} "
          f"({swaps} swaps)")
    assert after < before / 2
