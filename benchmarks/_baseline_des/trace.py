"""Event tracing for simulation debugging.

A :class:`Tracer` records a bounded, timestamped log of named events.
Components call ``tracer.record(kind, **details)``; tests and debugging
sessions filter and render the log.  Tracing is opt-in and costs nothing
when no tracer is installed.

Example::

    tracer = Tracer(env, capacity=10_000)
    tracer.record("disk.read", node=3, cylinder=120, pages=1)
    ...
    for entry in tracer.query(kind="disk.read", node=3):
        print(entry)
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, Optional

from .environment import Environment

__all__ = ["TraceEntry", "Tracer"]


@dataclass(frozen=True)
class TraceEntry:
    """One recorded event."""

    time: float
    sequence: int
    kind: str
    details: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        detail = " ".join(f"{k}={v}" for k, v in self.details.items())
        return f"[{self.time:12.6f}] {self.kind} {detail}".rstrip()


class Tracer:
    """A bounded in-memory event log bound to one environment.

    Keeps at most *capacity* entries (oldest evicted first) so a long
    simulation cannot exhaust memory; eviction is counted so tests can
    detect truncation.
    """

    def __init__(self, env: Environment, capacity: int = 100_000):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._entries: Deque[TraceEntry] = deque(maxlen=capacity)
        self._sequence = 0
        self.evicted = 0
        self._kind_counts: Counter = Counter()

    def record(self, kind: str, **details: Any) -> TraceEntry:
        """Append one event at the current simulation time."""
        self._sequence += 1
        entry = TraceEntry(time=self.env.now, sequence=self._sequence,
                           kind=kind, details=details)
        if len(self._entries) == self.capacity:
            self.evicted += 1
        self._entries.append(entry)
        self._kind_counts[kind] += 1
        return entry

    def detach(self) -> "Tracer":
        """Drop the environment reference (picklable, read-only log).

        Recorded entries survive; :meth:`record` must not be called on
        a detached tracer.
        """
        self.env = None
        return self

    def __getstate__(self):
        state = self.__dict__.copy()
        state["env"] = None
        return state

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self._entries)

    def query(self, kind: Optional[str] = None,
              since: float = float("-inf"),
              until: float = float("inf"),
              **details: Any) -> Iterator[TraceEntry]:
        """Entries matching the kind, time window and detail filters."""
        for entry in self._entries:
            if kind is not None and entry.kind != kind:
                continue
            if not since <= entry.time <= until:
                continue
            if any(entry.details.get(k) != v for k, v in details.items()):
                continue
            yield entry

    def count(self, kind: str) -> int:
        """Total events of *kind* recorded (including evicted ones)."""
        return self._kind_counts[kind]

    def kinds(self) -> Dict[str, int]:
        """All kinds seen with their total counts."""
        return dict(self._kind_counts)

    def clear(self) -> None:
        """Drop all entries (counters included)."""
        self._entries.clear()
        self._kind_counts.clear()
        self.evicted = 0

    def render(self, limit: int = 50) -> str:
        """The last *limit* entries, one per line."""
        tail = list(self._entries)[-limit:]
        return "\n".join(str(entry) for entry in tail)
