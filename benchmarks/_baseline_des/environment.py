"""The discrete-event simulation environment (event loop and clock).

:class:`Environment` owns the simulation clock and the agenda (a priority
queue of triggered events ordered by firing time).  It is deliberately
minimal -- the entire Gamma machine model in :mod:`repro.gamma` is built
from processes and resources running inside one environment.

Determinism
-----------
Two events scheduled for the same instant are processed in the order they
were scheduled (FIFO tie-break via a monotonically increasing sequence
number), with an optional integer *priority* that lets urgent work (e.g.
the disk DMA transfers of the paper's CPU model) jump ahead of same-time
normal events.  Given the same seed for workload randomness, a simulation
run is exactly reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, List, Optional, Tuple

from .events import AllOf, AnyOf, Event, Process, Timeout

__all__ = ["Environment", "URGENT", "NORMAL"]

#: Agenda priority for urgent events (processed before NORMAL at equal times).
URGENT = 0
#: Default agenda priority.
NORMAL = 1


class Environment:
    """A discrete-event simulation environment.

    Example
    -------
    >>> env = Environment()
    >>> def clock(env, results):
    ...     while env.now < 3:
    ...         results.append(env.now)
    ...         yield env.timeout(1)
    >>> ticks = []
    >>> _ = env.process(clock(env, ticks))
    >>> env.run()
    >>> ticks
    [0, 1, 2]
    """

    def __init__(self, initial_time: float = 0.0,
                 tolerate_process_failures: bool = False):
        self._now = float(initial_time)
        self._agenda: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        # Optional conservation-law observer (see repro.validation): when
        # attached, step() reports each popped event's firing time so the
        # checker can assert clock monotonicity.  None costs one attribute
        # load per event.
        self.invariants: Optional[Any] = None
        # When True, a process that dies with an unhandled exception fails
        # its Process event instead of crashing the whole simulation --
        # failure-injection experiments wait on the Process event and
        # observe the exception.  The Gamma model keeps the default
        # (False): a crashing component is a bug and should surface
        # immediately.
        self._tolerate_process_failures = bool(tolerate_process_failures)

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    # -- event factories -----------------------------------------------------

    def event(self) -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires *delay* time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start *generator* as a simulation process."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """Event that fires once all *events* have fired."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event that fires once any of *events* has fired."""
        return AnyOf(self, events)

    # -- agenda ---------------------------------------------------------------

    def _enqueue(self, event: Event, delay: float = 0.0,
                 priority: int = NORMAL) -> None:
        """Place a triggered *event* on the agenda ``delay`` from now."""
        self._seq += 1
        heapq.heappush(self._agenda, (self._now + delay, priority, self._seq, event))

    def schedule_urgent(self, event: Event, delay: float = 0.0) -> None:
        """Trigger *event* (successfully, no value) with URGENT priority."""
        if event.triggered:
            raise RuntimeError(f"{event!r} has already been triggered")
        event._value = None
        self._enqueue(event, delay=delay, priority=URGENT)

    def peek(self) -> float:
        """Time of the next agenda entry, or ``inf`` when the agenda is empty."""
        return self._agenda[0][0] if self._agenda else float("inf")

    def step(self) -> None:
        """Process exactly one event.

        Raises :class:`IndexError` when the agenda is empty.
        """
        when, _prio, _seq, event = heapq.heappop(self._agenda)
        if self.invariants is not None:
            self.invariants.on_event(when, self._now)
        self._now = when
        event._run_callbacks()

    # -- run loops --------------------------------------------------------------

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` -- run until the agenda is exhausted;
        * a number -- run until the clock reaches that time (the clock is
          left exactly at ``until``);
        * an :class:`Event` -- run until that event has been processed and
          return its value (re-raising its exception if it failed).
        """
        if until is None:
            while self._agenda:
                self.step()
            return None

        if isinstance(until, Event):
            sentinel = until
            while not sentinel.processed:
                if not self._agenda:
                    raise RuntimeError(
                        "simulation agenda ran dry before the awaited event fired")
                self.step()
            return sentinel.value

        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"cannot run until {horizon!r}, now is {self._now!r}")
        while self._agenda and self._agenda[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Environment now={self._now!r} agenda={len(self._agenda)}>"
