"""Measurement instruments for simulation runs.

The paper's evaluation criterion is system throughput (queries completed
per second) as a function of multiprogramming level; we additionally track
response times and resource utilizations, which the text uses to explain
the results (e.g. BERD's auxiliary-index processor becoming a hot spot).

All instruments support a *warm-up reset* so that steady-state statistics
exclude the initial transient, the standard practice for closed
queueing-network simulations.
"""

from __future__ import annotations

import math
from typing import List, Optional

__all__ = ["TallyMonitor", "TimeWeightedMonitor", "UtilizationMonitor"]


class TallyMonitor:
    """Accumulates discrete observations (e.g. per-query response times)."""

    def __init__(self, name: str = ""):
        self.name = name
        self._count = 0
        self._sum = 0.0
        self._sum_sq = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._samples: Optional[List[float]] = None

    def keep_samples(self) -> "TallyMonitor":
        """Retain raw observations (for percentiles); returns self."""
        self._samples = []
        return self

    def record(self, value: float) -> None:
        """Add one observation."""
        self._count += 1
        self._sum += value
        self._sum_sq += value * value
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)
        if self._samples is not None:
            self._samples.append(value)

    def reset(self) -> None:
        """Discard everything recorded so far (end of warm-up)."""
        self.__init__(self.name)
        # note: keep_samples state is intentionally dropped with the reset;
        # callers re-enable it if they still need percentiles.

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        """Mean of the observations (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    @property
    def stdev(self) -> float:
        """Population standard deviation (0.0 for < 2 observations)."""
        if self._count < 2:
            return 0.0
        var = self._sum_sq / self._count - self.mean ** 2
        return math.sqrt(max(var, 0.0))

    @property
    def minimum(self) -> float:
        return self._min if self._min is not None else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self._max is not None else 0.0

    def percentile(self, q: float) -> float:
        """The *q*-th percentile (0..100); requires :meth:`keep_samples`."""
        if self._samples is None:
            raise RuntimeError("enable keep_samples() before asking for percentiles")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1,
                          int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]


class TimeWeightedMonitor:
    """Time-average of a piecewise-constant quantity (queue length etc.)."""

    def __init__(self, name: str = "", initial: float = 0.0, now: float = 0.0):
        self.name = name
        self._level = initial
        self._last_change = now
        self._area = 0.0
        self._start = now
        self._max = initial

    def observe(self, now: float, level: float) -> None:
        """Record that the quantity changed to *level* at time *now*.

        *now* must not precede the previous observation: a backwards
        step would silently subtract area and corrupt every later
        :meth:`time_average`.
        """
        if now < self._last_change:
            raise ValueError(
                f"observation at t={now} precedes the last change at "
                f"t={self._last_change} ({self.name or 'monitor'})")
        self._area += self._level * (now - self._last_change)
        self._level = level
        self._last_change = now
        self._max = max(self._max, level)

    def reset(self, now: float) -> None:
        """Restart averaging at *now*, keeping the current level."""
        self._area = 0.0
        self._start = now
        self._last_change = now
        self._max = self._level

    @property
    def current(self) -> float:
        return self._level

    @property
    def maximum(self) -> float:
        return self._max

    def time_average(self, now: float) -> float:
        """Time-weighted mean level over [reset, now]."""
        span = now - self._start
        if span <= 0:
            return self._level
        area = self._area + self._level * (now - self._last_change)
        return area / span


class UtilizationMonitor(TimeWeightedMonitor):
    """Tracks a resource's busy-server count; attach via ``attach``."""

    @classmethod
    def attach(cls, resource, name: str = "") -> "UtilizationMonitor":
        """Create a monitor, register it with *resource*, return it."""
        mon = cls(name=name, initial=resource.count, now=resource.env.now)
        resource.monitor = mon
        mon._capacity = resource.capacity
        return mon

    def utilization(self, now: float) -> float:
        """Fraction of capacity busy, time-averaged over [reset, now]."""
        cap = getattr(self, "_capacity", 1)
        return self.time_average(now) / cap if cap else 0.0
