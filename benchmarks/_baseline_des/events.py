"""Core event primitives for the discrete-event simulation kernel.

This module provides the event machinery that the rest of the simulator is
built on.  The design follows the classic process-interaction style (as in
DeNet, the simulation language used by the paper, or SimPy): simulation
processes are Python generators that ``yield`` events; the environment
resumes a process when the event it waits on is processed.

The public surface is:

* :class:`Event` -- a one-shot occurrence with a value or an exception.
* :class:`Timeout` -- an event that fires after a simulated delay.
* :class:`Process` -- a running generator; itself an event that fires when
  the generator terminates.
* :class:`AllOf` / :class:`AnyOf` -- condition events over several events.
* :class:`Interrupted` -- exception thrown into an interrupted process.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .environment import Environment

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupted",
    "SimulationError",
]


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class Interrupted(SimulationError):
    """Thrown into a process that has been interrupted.

    The optional *cause* describes why the interrupt happened and is
    available as ``exc.cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Sentinel distinguishing "no value yet" from an explicit ``None`` value.
_PENDING = object()


class Event:
    """A one-shot simulation event.

    An event starts *untriggered*.  Calling :meth:`succeed` or :meth:`fail`
    triggers it, scheduling it on the environment's agenda; when the
    environment processes it, every registered callback runs exactly once.

    Processes wait for events by yielding them.  The value passed to
    :meth:`succeed` becomes the value of the ``yield`` expression in the
    waiting process; an exception passed to :meth:`fail` is raised at the
    ``yield`` site.
    """

    __slots__ = ("env", "callbacks", "_value", "_exception", "_processed")

    def __init__(self, env: "Environment"):
        self.env = env
        #: Callables invoked with this event when it is processed.  ``None``
        #: once processed (guards against late registration bugs).
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        self._processed = False

    # -- state predicates ------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value/exception (it is on the agenda)."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The event's value.

        Raises :class:`SimulationError` when read before the event is
        triggered, and re-raises the failure exception for failed events.
        """
        if self._exception is not None:
            raise self._exception
        if self._value is _PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering ------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value* and return it."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._value = value
        self.env._enqueue(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with *exception* and return it."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._exception = exception
        self._value = None
        self.env._enqueue(self)
        return self

    # -- internals -------------------------------------------------------

    def _add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register *callback*; runs it via the agenda if already processed."""
        if self.callbacks is None:
            # Already processed: deliver on a fresh immediate event so the
            # callback still runs from the event loop, never re-entrantly.
            proxy = Event(self.env)
            proxy._value = self._value
            proxy._exception = self._exception
            proxy.callbacks.append(lambda _e: callback(self))
            self.env._enqueue(proxy)
        else:
            self.callbacks.append(callback)

    def _run_callbacks(self) -> None:
        """Invoked by the environment when the event is dequeued."""
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self._processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation.

    Timeouts are triggered immediately at construction time; the
    environment delivers them when the clock reaches ``now + delay``.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        env._enqueue(self, delay=delay)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Timeout delay={self.delay!r}>"


class Process(Event):
    """A simulation process wrapping a generator.

    The process is itself an event: it triggers with the generator's return
    value when the generator finishes, or fails with the exception the
    generator raised.  Other processes can therefore wait for a process to
    finish simply by yielding it.
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick off the process via an immediate event so that creation has
        # no side effects until the event loop runs.
        bootstrap = Event(env)
        bootstrap._value = None
        bootstrap._add_callback(self._resume)
        env._enqueue(bootstrap)

    @property
    def is_alive(self) -> bool:
        """True while the wrapped generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at its current yield.

        Interrupting a finished process is an error.  The event the process
        was waiting on remains pending; its eventual value is discarded for
        this process.
        """
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        waited = self._waiting_on
        if waited is not None and waited.callbacks is not None:
            try:
                waited.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        # Deliver the interrupt through the agenda to keep the kernel
        # non-reentrant.
        proxy = Event(self.env)
        proxy._exception = Interrupted(cause)
        proxy._value = None
        proxy.callbacks.append(self._resume)
        self.env._enqueue(proxy)

    # -- generator stepping ----------------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of *event*."""
        self._waiting_on = None
        self.env._active_process = self
        try:
            if event._exception is not None:
                target = self._generator.throw(event._exception)
            else:
                target = self._generator.send(event._value)
        except StopIteration as stop:
            self._value = stop.value
            self.env._enqueue(self)
            return
        except Interrupted as exc:
            # An unhandled interrupt terminates the process as failed.
            self._exception = exc
            self._value = None
            self.env._enqueue(self)
            return
        except BaseException as exc:
            self._exception = exc
            self._value = None
            self.env._enqueue(self)
            if not self.env._tolerate_process_failures:
                raise
            return
        finally:
            self.env._active_process = None

        if not isinstance(target, Event):
            # Forward-compat shim, not part of the original kernel: the
            # shared model source now sleeps by yielding bare floats.
            # Waiting on a freshly scheduled Timeout is exactly what the
            # pre-change model did per service burst (env.timeout() call,
            # Timeout allocation, callback registration, event processing
            # on pop), so the baseline measurement keeps its original
            # per-sleep cost profile.
            if isinstance(target, (int, float)) and not isinstance(target, bool):
                target = self.env.timeout(target)
            else:
                raise SimulationError(
                    f"process yielded {target!r}, which is not an Event")
        if target.env is not self.env:
            raise SimulationError("cannot wait on an event of another Environment")
        self._waiting_on = target
        target._add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        name = getattr(self._generator, "__name__", "process")
        return f"<Process {name} alive={self.is_alive}>"


class _Condition(Event):
    """Common machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        for event in self._events:
            if event.env is not env:
                raise SimulationError("condition mixes events of different environments")
        self._remaining = len(self._events)
        if self._remaining == 0:
            self._value = self._collect()
            env._enqueue(self)
        else:
            for event in self._events:
                event._add_callback(self._on_child)

    def _collect(self) -> List[Any]:
        return [e._value for e in self._events if e.triggered and e.ok]

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every constituent event has fired.

    Succeeds with the list of child values (in construction order).  Fails
    with the first child failure.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event._exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e._value for e in self._events])


class AnyOf(_Condition):
    """Fires when the first constituent event fires.

    Succeeds with that event's value; fails if the first event to fire
    failed.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self.succeed(event._value)
        else:
            self.fail(event._exception)
