"""Shared resources for simulation processes.

Three primitives cover everything the Gamma model needs:

* :class:`Resource` -- a server pool with FCFS queueing (the disk arm, a
  network wire).
* :class:`PriorityResource` -- FCFS within priority classes; lower numbers
  are served first.  The paper's CPU is "FCFS non-preemptive ... except for
  byte transfers to/from the disk's FIFO buffer": we model that by granting
  DMA transfers a higher priority class, so they are served ahead of any
  queued normal work without preempting the request in service.
* :class:`Store` -- an unbounded FIFO of items with blocking ``get``; the
  message queue of every manager process.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from .environment import Environment
from .events import Event, SimulationError

__all__ = ["Request", "Resource", "PriorityResource", "Store"]


class Request(Event):
    """A pending or granted claim on a :class:`Resource`.

    Usable as a context manager so that the resource is always released::

        with cpu.request() as req:
            yield req            # wait for the grant
            yield env.timeout(service_time)
        # released here
    """

    __slots__ = ("resource", "priority", "enqueued_at")

    def __init__(self, resource: "Resource", priority: int):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self.enqueued_at = resource.env.now

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.resource.release(self)

    @property
    def wait_time(self) -> float:
        """Time spent queued before the grant (valid once granted)."""
        return self.value  # the grant value is the wait duration


class Resource:
    """A pool of ``capacity`` identical servers with FCFS queueing."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.env = env
        self.capacity = capacity
        self._users: List[Request] = []
        self._queue: Deque[Request] = deque()
        # Monitoring hooks (populated lazily by des.monitor.UtilizationMonitor).
        self.monitor = None

    # -- public API -------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of requests currently holding the resource."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a grant."""
        return len(self._queue)

    def request(self, priority: int = 0) -> Request:
        """Claim one server; the returned event fires when granted."""
        req = Request(self, priority)
        self._enqueue(req)
        self._grant_next()
        return req

    def release(self, request: Request) -> None:
        """Return the server held by *request* to the pool.

        Releasing an ungranted request cancels it (removes it from the
        queue); releasing twice is an error.
        """
        if request in self._users:
            self._users.remove(request)
            self._note_change()
            self._grant_next()
        elif self._discard(request):
            pass
        elif request.triggered:
            raise SimulationError("request released twice")
        else:  # pragma: no cover - defensive
            raise SimulationError("request does not belong to this resource")

    # -- queue discipline (overridden by PriorityResource) -----------------

    def _enqueue(self, request: Request) -> None:
        self._queue.append(request)

    def _pop_next(self) -> Optional[Request]:
        return self._queue.popleft() if self._queue else None

    def _discard(self, request: Request) -> bool:
        try:
            self._queue.remove(request)
            return True
        except ValueError:
            return False

    # -- internals ----------------------------------------------------------

    def _grant_next(self) -> None:
        while len(self._users) < self.capacity:
            nxt = self._pop_next()
            if nxt is None:
                break
            self._users.append(nxt)
            nxt.succeed(self.env.now - nxt.enqueued_at)
            self._note_change()

    def _note_change(self) -> None:
        if self.monitor is not None:
            self.monitor.observe(self.env.now, len(self._users))


class PriorityResource(Resource):
    """A :class:`Resource` serving lower ``priority`` values first.

    Within one priority class the discipline remains FCFS.  Grants are
    non-preemptive: an in-service request always completes.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        super().__init__(env, capacity)
        self._pqueue: List[Tuple[int, int, Request]] = []
        self._pseq = 0

    def _enqueue(self, request: Request) -> None:
        self._pseq += 1
        heapq.heappush(self._pqueue, (request.priority, self._pseq, request))

    def _pop_next(self) -> Optional[Request]:
        while self._pqueue:
            _prio, _seq, req = heapq.heappop(self._pqueue)
            if req is not None:
                return req
        return None

    def _discard(self, request: Request) -> bool:
        for i, (_prio, _seq, req) in enumerate(self._pqueue):
            if req is request:
                self._pqueue.pop(i)
                heapq.heapify(self._pqueue)
                return True
        return False

    @property
    def queue_length(self) -> int:
        return len(self._pqueue)


class Store:
    """An unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event that fires with the
    oldest item as soon as one is available (immediately if the store is
    non-empty).  Items are delivered in put-order to getters in get-order.
    """

    def __init__(self, env: Environment):
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Add *item*; wakes the oldest waiting getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event firing with the next item (FIFO)."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def peek_all(self) -> List[Any]:
        """Snapshot of queued items (oldest first); for inspection/tests."""
        return list(self._items)
