"""A small discrete-event simulation kernel (the DeNet substitute).

The paper built its simulator in the DeNet simulation language [Liv88];
this package provides the equivalent substrate in pure Python:
process-interaction simulation with generator coroutines, FCFS and
priority resources, FIFO stores, and measurement instruments.

Typical use::

    from repro.des import Environment

    env = Environment()

    def customer(env, server):
        with server.request() as req:
            yield req
            yield env.timeout(1.5)

    from repro.des import Resource
    server = Resource(env, capacity=1)
    env.process(customer(env, server))
    env.run()
"""

from .environment import Environment, NORMAL, URGENT
from .events import (
    AllOf,
    AnyOf,
    Event,
    Interrupted,
    Process,
    SimulationError,
    Timeout,
)
from .monitor import TallyMonitor, TimeWeightedMonitor, UtilizationMonitor
from .resources import PriorityResource, Request, Resource, Store
from .trace import TraceEntry, Tracer

__all__ = [
    "Environment",
    "NORMAL",
    "URGENT",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupted",
    "SimulationError",
    "Resource",
    "PriorityResource",
    "Request",
    "Store",
    "TallyMonitor",
    "TimeWeightedMonitor",
    "UtilizationMonitor",
    "Tracer",
    "TraceEntry",
]
