"""The scale-up figure: machine size as the x-axis (ROADMAP north star).

The paper stops at 32 processors; this experiment sweeps ``num_sites``
up to 1,024 (:data:`~repro.experiments.config.SCALEUP_SITES`) at a fixed
multiprogramming level and reports, per (machine size, strategy) point:

* the usual :class:`~repro.gamma.metrics.RunResult` (throughput,
  response time, utilizations);
* wall-clock *phase attribution* -- placement-build seconds vs simulate
  seconds vs relation-build seconds, from a dedicated
  :class:`~repro.obs.phases.PhaseAccumulator` pushed around each run --
  so a superlinear-cost regression in either half is visible per P, not
  smeared over a whole figure;
* the DES events/sec rate achieved at that machine size.

``benchmarks/test_scaleup.py`` runs this with the fig-8a grid and emits
``BENCH_scaleup.json`` plus perf-ledger rows; the CLI exposes it as
``repro-experiments --scaleup``.

Runs execute serially on purpose: each point's phase attribution must
come from its own accumulator, and the P=1024 points dominate wall time
anyway.  Memos are cleared per machine size so placement-build is always
measured (and so placements for retired sizes do not pile up in memory).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..gamma import GAMMA_PARAMETERS, RunResult, SimulationParameters
from ..obs import phases
from .config import FIGURES, SCALEUP_SITES, ExperimentConfig
from .plan import clear_memos, compile_point, execute_run

__all__ = ["ScaleupPoint", "ScaleupResult", "run_scaleup"]


@dataclass(frozen=True)
class ScaleupPoint:
    """One (machine size, strategy) measurement with phase attribution."""

    num_sites: int
    strategy: str
    result: RunResult
    #: Wall seconds spent building the placement for this point (0.0 for
    #: a memo hit, which run_scaleup avoids by clearing memos per size).
    placement_build_seconds: float
    #: Wall seconds spent inside the simulation proper.
    simulate_seconds: float
    #: Wall seconds spent synthesizing the relation (first strategy of a
    #: machine size only; later ones reuse the memoized relation).
    relation_build_seconds: float
    #: DES events scheduled during the simulation.
    events: int

    @property
    def events_per_sec(self) -> float:
        """DES throughput of the simulate phase (0.0 if unmeasurable)."""
        if self.simulate_seconds <= 0:
            return 0.0
        return self.events / self.simulate_seconds

    def to_json_dict(self) -> Dict:
        return {
            "num_sites": self.num_sites,
            "strategy": self.strategy,
            "result": self.result.to_json_dict(),
            "placement_build_seconds": self.placement_build_seconds,
            "simulate_seconds": self.simulate_seconds,
            "relation_build_seconds": self.relation_build_seconds,
            "events": self.events,
            "events_per_sec": self.events_per_sec,
        }


@dataclass
class ScaleupResult:
    """All points of one scale-up experiment."""

    figure: str
    multiprogramming_level: int
    cardinality: int
    measured_queries: int
    seed: int
    sites: Tuple[int, ...]
    strategies: Tuple[str, ...]
    points: List[ScaleupPoint] = field(default_factory=list)

    def series(self, strategy: str) -> List[Tuple[int, float]]:
        """(num_sites, throughput) pairs of one strategy, in sweep order."""
        return [(p.num_sites, p.result.throughput)
                for p in self.points if p.strategy == strategy]

    def placement_build_seconds(self, num_sites: int) -> float:
        """Total placement-build seconds across strategies at one size."""
        return sum(p.placement_build_seconds for p in self.points
                   if p.num_sites == num_sites)

    def to_json_dict(self) -> Dict:
        return {
            "figure": self.figure,
            "multiprogramming_level": self.multiprogramming_level,
            "cardinality": self.cardinality,
            "measured_queries": self.measured_queries,
            "seed": self.seed,
            "sites": list(self.sites),
            "strategies": list(self.strategies),
            "points": [p.to_json_dict() for p in self.points],
        }


def run_scaleup(figure: str = "8a",
                sites: Sequence[int] = SCALEUP_SITES,
                strategies: Optional[Sequence[str]] = None,
                multiprogramming_level: int = 8,
                cardinality: int = 100_000,
                measured_queries: int = 100,
                seed: int = 13,
                params: SimulationParameters = GAMMA_PARAMETERS,
                check_invariants: bool = False,
                config: Optional[ExperimentConfig] = None,
                on_point: Optional[Callable[[ScaleupPoint], None]] = None
                ) -> ScaleupResult:
    """Sweep machine size for one figure's workload at a fixed MPL.

    ``on_point`` (if given) is called with each finished
    :class:`ScaleupPoint` -- the CLI uses it for progress lines.
    """
    if config is None:
        config = FIGURES[figure]
    names = tuple(strategies if strategies is not None
                  else config.strategies)
    sweep = ScaleupResult(figure=config.figure,
                          multiprogramming_level=multiprogramming_level,
                          cardinality=cardinality,
                          measured_queries=measured_queries,
                          seed=seed, sites=tuple(int(s) for s in sites),
                          strategies=names)
    for num_sites in sweep.sites:
        clear_memos()
        for name in names:
            planned = compile_point(
                config, name,
                multiprogramming_level=multiprogramming_level,
                cardinality=cardinality, num_sites=num_sites,
                measured_queries=measured_queries, params=params,
                seed=seed)
            acc = phases.PhaseAccumulator(keep_spans=False)
            phases.push(acc)
            try:
                result = execute_run(planned.spec, planned.params,
                                     config=config,
                                     check_invariants=check_invariants)
            finally:
                phases.pop()
            snap = acc.snapshot(memory=False)
            totals = snap.get("totals", {})
            counters = snap.get("counters", {})

            def seconds(phase_name: str) -> float:
                entry = totals.get(phase_name)
                return float(entry["seconds"]) if entry else 0.0

            point = ScaleupPoint(
                num_sites=num_sites, strategy=name, result=result,
                placement_build_seconds=seconds("placement-build"),
                simulate_seconds=seconds("simulate"),
                relation_build_seconds=seconds("relation-build"),
                events=int(counters.get("events", 0)))
            sweep.points.append(point)
            if on_point is not None:
                on_point(point)
    return sweep
