"""Experiment runner: strategy x mix x correlation x MPL sweeps.

Regenerates the throughput-vs-multiprogramming-level series behind every
figure of the paper's evaluation.  Placements are built once per
(strategy, correlation) and reused across the MPL sweep (as in the
paper: the relation is declustered once, then measured under different
loads).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core import (
    BerdStrategy,
    HashStrategy,
    MagicStrategy,
    MagicTuning,
    Placement,
    RangeStrategy,
)
from ..gamma import GAMMA_PARAMETERS, GammaMachine, RunResult, SimulationParameters
from ..obs import Telemetry
from ..storage import make_wisconsin
from ..workload import cost_model_for_mix, make_mix
from .config import ATTR_A, ATTR_B, ExperimentConfig

__all__ = ["FigureResult", "TelemetryFactory", "build_strategy",
           "run_experiment", "check_expectation"]

#: Indexes of §6: non-clustered on A, clustered on B.
PAPER_INDEXES = {ATTR_A: False, ATTR_B: True}

#: Called once per (strategy, MPL) run; returns the run's Telemetry
#: (or None to run without instrumentation).
TelemetryFactory = Callable[[str, int], Optional[Telemetry]]


@dataclass
class FigureResult:
    """All series of one regenerated figure."""

    config: ExperimentConfig
    cardinality: int
    num_sites: int
    measured_queries: int
    series: Dict[str, List[RunResult]] = field(default_factory=dict)
    wall_seconds: float = 0.0
    #: Root seed the runs were generated with; echoed into every saved
    #: results file so a figure is reproducible from the artifact alone.
    seed: int = 13

    def throughput_at(self, strategy: str, mpl: int) -> float:
        for result in self.series[strategy]:
            if result.multiprogramming_level == mpl:
                return result.throughput
        raise KeyError(f"no MPL {mpl} run for {strategy!r}")

    def final_throughputs(self) -> Dict[str, float]:
        """Throughput of each strategy at the highest MPL swept."""
        return {name: runs[-1].throughput
                for name, runs in self.series.items()}


def build_strategy(name: str, config: ExperimentConfig,
                   cardinality: int,
                   params: SimulationParameters = GAMMA_PARAMETERS):
    """Instantiate a declustering strategy by experiment name.

    ``magic`` pins the paper-reported directory shape and M_i values;
    ``magic-derived`` lets the cost model (fed by the analytic workload
    profiles) choose everything, the fully self-contained pipeline.
    """
    if name == "range":
        return RangeStrategy(ATTR_A)
    if name == "hash":
        return HashStrategy(ATTR_A)
    if name == "berd":
        return BerdStrategy(ATTR_A, [ATTR_B])
    if name == "magic":
        return MagicStrategy(
            [ATTR_A, ATTR_B],
            tuning=MagicTuning(shape=dict(config.magic_shape),
                               mi=dict(config.magic_mi)))
    if name == "magic-derived":
        mix = make_mix(config.mix_name, domain=cardinality)
        model = cost_model_for_mix(mix, params, cardinality)
        return MagicStrategy([ATTR_A, ATTR_B], cost_model=model)
    raise ValueError(f"unknown strategy {name!r}")


def run_experiment(config: ExperimentConfig,
                   cardinality: int = 100_000,
                   num_sites: int = 32,
                   measured_queries: int = 400,
                   mpls: Optional[Sequence[int]] = None,
                   seed: int = 13,
                   params: SimulationParameters = GAMMA_PARAMETERS,
                   strategies: Optional[Sequence[str]] = None,
                   telemetry_factory: Optional[TelemetryFactory] = None,
                   ) -> FigureResult:
    """Regenerate one figure; returns every (strategy, MPL) run result.

    ``telemetry_factory(strategy, mpl)``, when given, supplies a fresh
    :class:`~repro.obs.Telemetry` per machine run (each simulation gets
    its own environment, so telemetry objects cannot be shared).
    """
    started = time.time()
    mpls = tuple(mpls if mpls is not None else config.mpls)
    strategies = tuple(strategies if strategies is not None
                       else config.strategies)
    relation = make_wisconsin(cardinality, correlation=config.correlation,
                              seed=seed)
    mix = make_mix(config.mix_name, domain=cardinality)

    result = FigureResult(config=config, cardinality=cardinality,
                          num_sites=num_sites,
                          measured_queries=measured_queries, seed=seed)
    for name in strategies:
        strategy = build_strategy(name, config, cardinality, params)
        placement = strategy.partition(relation, num_sites)
        runs: List[RunResult] = []
        for mpl in mpls:
            telemetry = (telemetry_factory(name, mpl)
                         if telemetry_factory else None)
            machine = GammaMachine(placement, indexes=PAPER_INDEXES,
                                   params=params, seed=seed,
                                   telemetry=telemetry)
            runs.append(machine.run(mix, multiprogramming_level=mpl,
                                    measured_queries=measured_queries))
        result.series[name] = runs
    result.wall_seconds = time.time() - started
    return result


def check_expectation(result: FigureResult) -> Tuple[bool, str]:
    """Compare a figure's outcome against the paper's claim.

    Returns ``(matches, explanation)``.  The check uses the highest-MPL
    point, where the paper states its margins.
    """
    expected = result.config.expected
    if expected is None:
        return True, "no expectation recorded"
    finals = result.final_throughputs()
    present = [s for s in expected.order if s in finals]
    values = [finals[s] for s in present]
    ok = all(values[i] >= values[i + 1] for i in range(len(values) - 1))
    measured_order = sorted(present, key=lambda s: -finals[s])
    detail = " > ".join(f"{s}={finals[s]:.0f}" for s in measured_order)
    if ok and expected.min_ratio is not None and len(values) >= 2:
        ratio = values[0] / values[1] if values[1] else float("inf")
        ok = ratio >= expected.min_ratio
        detail += f" (ratio {ratio:.2f}, expected >= {expected.min_ratio})"
    return ok, detail
