"""Figure regeneration: a thin consumer of the run-plan layer.

Regenerates the throughput-vs-multiprogramming-level series behind every
figure of the paper's evaluation.  :func:`run_experiment` compiles the
(strategy x MPL) grid into a :class:`~repro.experiments.plan.RunPlan`,
hands it to a serial or process-pool executor (``jobs``), and reshapes
the outcomes into the per-strategy series the reports and plots expect.
Placements are built once per (strategy, correlation) per process --
the plan layer's memo -- and reused across the MPL sweep, as in the
paper: the relation is declustered once, then measured under different
loads.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..gamma import GAMMA_PARAMETERS, RunResult, SimulationParameters
from ..obs import Telemetry, TelemetrySpec, phases
from .cache import ResultCache
from .config import ExperimentConfig
from .executor import make_executor
from .latency import latency_payload
from .plan import PAPER_INDEXES, build_strategy, compile_figure

__all__ = ["FigureResult", "TelemetryFactory", "build_strategy",
           "run_experiment", "check_expectation", "PAPER_INDEXES"]

#: Called once per (strategy, MPL) run; returns the run's Telemetry
#: (or None to run without instrumentation).  Serial-only: live
#: telemetry objects cannot cross process boundaries -- pass a
#: :class:`~repro.obs.telemetry.TelemetrySpec` instead under ``jobs``.
TelemetryFactory = Callable[[str, int], Optional[Telemetry]]


@dataclass
class FigureResult:
    """All series of one regenerated figure."""

    config: ExperimentConfig
    cardinality: int
    num_sites: int
    measured_queries: int
    series: Dict[str, List[RunResult]] = field(default_factory=dict)
    #: Wall-clock seconds the whole figure took end to end.  Under a
    #: parallel executor this is what the user waited, NOT the work
    #: done -- see :attr:`cpu_seconds`.
    wall_seconds: float = 0.0
    #: Summed per-run simulation wall seconds across all executed
    #: points, wherever they ran.  Serial: ~= wall_seconds.  Parallel:
    #: the aggregate compute; wall_seconds / cpu_seconds ~ speedup.
    #: On an oversubscribed host this inflates with time-slicing --
    #: see :attr:`process_cpu_seconds` for the honest work metric.
    cpu_seconds: float = 0.0
    #: Summed per-run *process CPU* seconds (``time.process_time``
    #: deltas in whichever process simulated each point).  Unlike
    #: :attr:`cpu_seconds` this does not inflate when workers
    #: time-slice a smaller machine, so it is what the parallel
    #: benchmark's <= 1.25x work-amplification bound is stated on.
    process_cpu_seconds: float = 0.0
    #: Parallelism level the figure was executed with.
    jobs: int = 1
    #: Executor backend name ("serial" / "process-pool").
    executor: str = "serial"
    #: Points simulated fresh vs. loaded from the result cache.
    executed_runs: int = 0
    cached_runs: int = 0
    #: Root seed the runs were generated with; echoed into every saved
    #: results file so a figure is reproducible from the artifact alone.
    seed: int = 13
    #: Per-strategy content digests of each run's RunSpec, in MPL
    #: order; echoed into artifacts so a saved point can be matched
    #: against the cache that produced it.
    spec_digests: Dict[str, List[str]] = field(default_factory=dict)
    #: (strategy, mpl) -> detached telemetry, when tracing was on.
    #: Excluded from serialization (live measurement artifacts).
    telemetries: Dict[Tuple[str, int], Telemetry] = field(
        default_factory=dict, repr=False, compare=False)
    #: Placement-quality audit payload (``{"summary": {strategy:
    #: ...}, "digest": ...}``) attached by ``--audit``; round-trips
    #: through results-v2 JSON so cached runs re-report offline.
    audit: Optional[Dict] = None
    #: Wall-clock phase attribution for the whole figure (a
    #: :meth:`~repro.obs.phases.PhaseAccumulator.snapshot`: per-phase
    #: seconds/counts, raw spans per pid, peak-RSS marks).  None when
    #: phase collection was off; round-trips through results-v2 JSON.
    phases: Optional[Dict] = None
    #: Response-time distribution payload (see
    #: :func:`~repro.experiments.latency.latency_payload`): per-point
    #: p50/p95/p99/max plus the full mergeable sketches.  None unless
    #: latency capture was on; round-trips through results-v2 JSON.
    latency: Optional[Dict] = None
    #: Dynamics-scenario payload (see
    #: :func:`~repro.dynamics.runner.run_dynamics`): per-strategy
    #: baseline/failure/rescale/churn results, including the fault seed
    #: and full fault plan for replay.  None on static figures;
    #: round-trips through results-v2 JSON.
    dynamics: Optional[Dict] = None

    def throughput_at(self, strategy: str, mpl: int) -> float:
        for result in self.series[strategy]:
            if result.multiprogramming_level == mpl:
                return result.throughput
        raise KeyError(f"no MPL {mpl} run for {strategy!r}")

    def final_throughputs(self) -> Dict[str, float]:
        """Throughput of each strategy at the highest MPL swept."""
        return {name: runs[-1].throughput
                for name, runs in self.series.items()}


def run_experiment(config: ExperimentConfig,
                   cardinality: int = 100_000,
                   num_sites: int = 32,
                   measured_queries: int = 400,
                   mpls: Optional[Sequence[int]] = None,
                   seed: int = 13,
                   params: SimulationParameters = GAMMA_PARAMETERS,
                   strategies: Optional[Sequence[str]] = None,
                   telemetry_factory: Optional[TelemetryFactory] = None,
                   jobs: int = 1,
                   start_method: Optional[str] = None,
                   cache: Optional[ResultCache] = None,
                   telemetry_spec: Optional[TelemetrySpec] = None,
                   check_invariants: bool = False,
                   progress=None,
                   collect_phases: bool = True,
                   ) -> FigureResult:
    """Regenerate one figure; returns every (strategy, MPL) run result.

    ``jobs`` > 1 executes the grid on a warm process pool with
    bit-identical results (every seed derives from the run's spec): the
    parent prewarms the distinct relations/placements the plan needs,
    then forks workers that inherit the memos copy-on-write
    (``start_method`` overrides the multiprocessing context; spawn
    falls back to a per-worker prewarm initializer).  ``cache`` makes
    the figure resumable: completed points are loaded, missing ones
    simulated and stored.  ``telemetry_spec`` collects per-run
    telemetry under any executor; ``telemetry_factory(strategy, mpl)``
    is the legacy serial-only hook for callers that hold on to the live
    objects themselves.  ``check_invariants`` runs every point under
    the conservation-law checker (see :mod:`repro.validation`): the
    first breach raises, results are bit-identical either way.

    ``progress`` (a :class:`~repro.obs.progress.ProgressTracker`)
    streams executor lifecycle events; ``collect_phases`` (default on)
    records wall-clock phase attribution into the result.  Both are
    purely observational: series and spec digests are bit-identical
    with them on or off.
    """
    if telemetry_factory is not None and jobs != 1:
        raise ValueError(
            "telemetry_factory is serial-only (live telemetry cannot "
            "cross processes); use telemetry_spec with jobs > 1")
    started = time.time()
    accumulator = (phases.push(phases.PhaseAccumulator())
                   if collect_phases else None)
    try:
        with phases.phase("plan-compile"):
            plan = compile_figure(config, cardinality=cardinality,
                                  num_sites=num_sites,
                                  measured_queries=measured_queries,
                                  mpls=mpls, seed=seed, params=params,
                                  strategies=strategies)
        executor = make_executor(jobs, start_method=start_method)
        provider = None
        if telemetry_factory is not None:
            provider = lambda spec: telemetry_factory(
                spec.strategy, spec.multiprogramming_level)
        outcomes = executor.execute(plan, cache=cache,
                                    telemetry_spec=telemetry_spec,
                                    telemetry_provider=provider,
                                    check_invariants=check_invariants,
                                    progress=progress)
    finally:
        if accumulator is not None:
            phases.pop(merge_into_parent=False)

    result = FigureResult(config=config, cardinality=cardinality,
                          num_sites=num_sites,
                          measured_queries=measured_queries, seed=seed,
                          jobs=executor.jobs, executor=executor.name)
    for outcome in outcomes:
        spec = outcome.spec
        result.series.setdefault(spec.strategy, []).append(outcome.result)
        result.spec_digests.setdefault(spec.strategy, []).append(
            spec.digest())
        if outcome.cached:
            result.cached_runs += 1
        else:
            result.executed_runs += 1
        result.cpu_seconds += outcome.wall_seconds
        result.process_cpu_seconds += outcome.cpu_seconds
        if outcome.telemetry is not None:
            result.telemetries[(spec.strategy,
                                spec.multiprogramming_level)] = \
                outcome.telemetry
    result.wall_seconds = time.time() - started
    if accumulator is not None:
        result.phases = accumulator.snapshot()
    result.latency = latency_payload(result.telemetries)
    return result


def check_expectation(result: FigureResult) -> Tuple[bool, str]:
    """Compare a figure's outcome against the paper's claim.

    Returns ``(matches, explanation)``.  The check uses the highest-MPL
    point, where the paper states its margins.
    """
    expected = result.config.expected
    if expected is None:
        return True, "no expectation recorded"
    finals = result.final_throughputs()
    present = [s for s in expected.order if s in finals]
    values = [finals[s] for s in present]
    ok = all(values[i] >= values[i + 1] for i in range(len(values) - 1))
    measured_order = sorted(present, key=lambda s: -finals[s])
    detail = " > ".join(f"{s}={finals[s]:.0f}" for s in measured_order)
    if ok and expected.min_ratio is not None and len(values) >= 2:
        ratio = values[0] / values[1] if values[1] else float("inf")
        ok = ratio >= expected.min_ratio
        detail += f" (ratio {ratio:.2f}, expected >= {expected.min_ratio})"
    return ok, detail
