"""ASCII rendering of throughput-vs-MPL figures.

The paper's figures are throughput curves over the multiprogramming
level; this module renders a :class:`~repro.experiments.runner.
FigureResult` as a terminal plot so the regenerated figure can be read
the same way the original is, without any plotting dependency.

Example output::

    q/s
    683 |                                           M
        |                                M
        |                     M                     B
        |          M          B          B
        |          B                     r          r
     36 | Mr       r          r
        +--------------------------------------------
          1        16         32         48        64   MPL
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .runner import FigureResult

__all__ = ["ascii_plot", "plot_figure"]

#: One-letter marks per strategy, matching the paper's legend order.
DEFAULT_MARKS = {
    "range": "r",
    "berd": "B",
    "magic": "M",
    "hash": "h",
    "magic-derived": "m",
}


def ascii_plot(series: Dict[str, List[Tuple[float, float]]],
               width: int = 64, height: int = 18,
               x_label: str = "MPL", y_label: str = "q/s",
               marks: Dict[str, str] = None) -> str:
    """Render named (x, y) series as an ASCII scatter plot.

    Points from different series landing on the same cell are shown as
    ``*``.  Axes are linear; the y-axis starts at zero, as in the paper.
    """
    if not series:
        raise ValueError("nothing to plot")
    marks = {**DEFAULT_MARKS, **(marks or {})}
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("all series are empty")
    x_max = max(x for x, _ in points)
    x_min = min(x for x, _ in points)
    y_max = max(y for _, y in points) or 1.0
    x_span = (x_max - x_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, pts) in enumerate(series.items()):
        mark = marks.get(name) or name[:1] or str(idx)
        for x, y in pts:
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = int(round(y / y_max * (height - 1)))
            cell = grid[height - 1 - row][col]
            grid[height - 1 - row][col] = mark if cell == " " else "*"

    label_width = max(len(f"{y_max:.0f}"), len(y_label))
    lines = [f"{y_label:>{label_width}}"]
    for i, row in enumerate(grid):
        if i == 0:
            prefix = f"{y_max:>{label_width}.0f}"
        elif i == height - 1:
            prefix = f"{0:>{label_width}d}"
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |" + "".join(row))
    lines.append(" " * label_width + " +" + "-" * width)
    ticks = " " * (label_width + 2)
    tick_values = _spread_ticks(x_min, x_max, width)
    lines.append(ticks + tick_values + f"   {x_label}")
    legend = ", ".join(f"{marks.get(name, name[:1])}={name}"
                       for name in series)
    lines.append(" " * (label_width + 2) + f"legend: {legend}")
    return "\n".join(lines)


def _spread_ticks(x_min: float, x_max: float, width: int) -> str:
    """Lay x tick labels under the axis, left/middle/right."""
    left = f"{x_min:g}"
    mid = f"{(x_min + x_max) / 2:g}"
    right = f"{x_max:g}"
    line = [" "] * width
    line[:len(left)] = left
    mid_at = max(0, width // 2 - len(mid) // 2)
    line[mid_at:mid_at + len(mid)] = mid
    line[width - len(right):] = right
    return "".join(line)[:width]


def plot_figure(result: FigureResult, width: int = 64,
                height: int = 18) -> str:
    """Render one regenerated figure as a throughput-vs-MPL ASCII plot."""
    series = {
        name: [(run.multiprogramming_level, run.throughput)
               for run in runs]
        for name, runs in result.series.items()
    }
    plot = ascii_plot(series, width=width, height=height)
    return f"{result.config.describe()}\n{plot}"
