"""Command-line entry point: ``repro-latency``.

The tail-latency view of a figure, three ways:

* **offline** (positional args) -- read saved results-v2
  ``figure_*.json`` files and print the latency-budget table from their
  embedded sketches; no simulation.  Files saved without latency
  capture (or v1 files) are reported as such and skipped.
* **spans** (``--spans FILE...``) -- extract per-query critical paths
  from ``*.spans.jsonl`` exports and print the per-query-type
  attribution table (shares of wall response time, summing to <= 100%,
  plus the serialization-vs-parallelism readout).
* **live** (``--live FIG``) -- re-run one MPL point of a figure with
  tracing + latency capture on and print both tables.

Examples::

    repro-latency runs/figure_8a.json
    repro-latency --spans runs/8a_berd_mpl4.spans.jsonl
    repro-latency --live 9 --mpl 16 --cardinality 10000 \\
        --processors-count 8 --measured 50
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..obs.critpath import critical_paths, critpath_table, \
    summarize_critical_paths
from .config import FIGURES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-latency",
        description="Tail-latency and critical-path reporting from saved "
                    "results, span exports, or a live traced run.")
    parser.add_argument("results", nargs="*", metavar="FIGURE_JSON",
                        help="results-v2 figure file(s) saved with "
                             "--latency: print their latency budgets")
    parser.add_argument("--spans", nargs="+", metavar="JSONL", default=[],
                        help="*.spans.jsonl export(s): print per-query-"
                             "type critical-path attribution")
    parser.add_argument("--mpls", metavar="M1,M2,...",
                        help="restrict offline tables to these "
                             "comma-separated MPL points")
    parser.add_argument("--live", metavar="FIG", choices=sorted(FIGURES),
                        help="re-run one MPL point of FIG with tracing + "
                             "latency capture and print both tables")
    parser.add_argument("--mpl", type=int, default=16,
                        help="multiprogramming level for --live "
                             "(default: 16)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for --live (default: 1)")
    parser.add_argument("--measured", type=int, default=200,
                        help="measured queries per point for --live")
    parser.add_argument("--cardinality", type=int, default=100_000,
                        help="relation cardinality for --live")
    parser.add_argument("--processors-count", type=int, default=32,
                        dest="num_sites",
                        help="number of processors for --live")
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument("--out", metavar="FILE",
                        help="also write the report to FILE")
    return parser


def _offline_blocks(paths: List[str], mpls) -> List[str]:
    from .latency import latency_table
    blocks: List[str] = []
    for path in paths:
        with open(path) as handle:
            payload = json.load(handle)
        figure = payload.get("figure", path)
        latency = payload.get("latency")
        if latency is None:
            blocks.append(f"{path}: no latency payload (figure {figure} "
                          f"was saved without --latency); re-run with "
                          f"latency capture on")
            continue
        blocks.append(f"figure {figure} ({path}):")
        blocks.append(latency_table(latency, mpls=mpls).rstrip())
    return blocks


def _spans_blocks(paths: List[str]) -> List[str]:
    from ..obs.export import load_jsonl
    blocks: List[str] = []
    for path in paths:
        records = load_jsonl(path)
        summaries = summarize_critical_paths(critical_paths(records))
        blocks.append(f"critical paths from {path} "
                      f"({len(records)} spans):")
        blocks.append(critpath_table(summaries).rstrip())
    return blocks


def _live_blocks(args) -> List[str]:
    from ..obs import TelemetrySpec, span_records
    from .executor import make_executor
    from .latency import latency_payload, latency_table
    from .plan import compile_figure

    config = FIGURES[args.live]
    plan = compile_figure(config, cardinality=args.cardinality,
                          num_sites=args.num_sites,
                          measured_queries=args.measured,
                          mpls=(args.mpl,), seed=args.seed)
    outcomes = make_executor(args.jobs).execute(
        plan, telemetry_spec=TelemetrySpec(latency=True))

    blocks = [f"figure {args.live} at MPL {args.mpl} (live traced run, "
              f"{args.measured} measured queries per strategy):"]
    telemetries = {}
    for outcome in outcomes:
        telemetries[(outcome.spec.strategy,
                     outcome.spec.multiprogramming_level)] = \
            outcome.telemetry
    payload = latency_payload(telemetries)
    if payload is not None:
        blocks.append(latency_table(payload).rstrip())
    for (strategy, _), telemetry in sorted(telemetries.items()):
        if telemetry is None or telemetry.spans is None:
            continue
        summaries = summarize_critical_paths(
            critical_paths(span_records(telemetry.spans)))
        blocks.append(f"critical paths -- {strategy}:")
        blocks.append(critpath_table(summaries).rstrip())
    return blocks


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if not (args.results or args.spans or args.live):
        build_parser().print_help()
        return 2
    mpls = None
    if args.mpls:
        mpls = tuple(int(v) for v in args.mpls.split(","))

    blocks: List[str] = []
    if args.results:
        blocks += _offline_blocks(args.results, mpls)
    if args.spans:
        blocks += _spans_blocks(args.spans)
    if args.live:
        blocks += _live_blocks(args)

    report = "\n".join(blocks) + "\n"
    print(report, end="")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"(wrote {args.out})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
