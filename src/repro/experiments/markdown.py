"""Markdown report generation from experiment results.

Turns saved :class:`~repro.experiments.runner.FigureResult` objects into
the tables EXPERIMENTS.md carries: a scoreboard row per figure, a full
throughput series table, and a combined report over a directory of
saved JSON results -- so the paper-vs-measured documentation can be
regenerated mechanically after any model change.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional

from .config import FIGURES
from .runner import FigureResult, check_expectation
from .results_io import load_figure_json

__all__ = [
    "scoreboard_row",
    "series_table",
    "figure_section",
    "report_from_directory",
]


def scoreboard_row(result: FigureResult) -> str:
    """One markdown table row: figure, claim, measurement, verdict."""
    config = result.config
    ok, detail = check_expectation(result)
    claim = config.expected.note if config.expected else "-"
    verdict = "match" if ok else "**deviation**"
    return (f"| Fig {config.figure} | {claim} | {detail} | {verdict} |")


def series_table(result: FigureResult,
                 mpls: Optional[Iterable[int]] = None) -> str:
    """Markdown table of throughput (q/s) per strategy and MPL."""
    strategies = list(result.series)
    all_mpls = [run.multiprogramming_level
                for run in result.series[strategies[0]]]
    chosen = [m for m in (mpls if mpls is not None else all_mpls)
              if m in all_mpls]
    lines = ["| MPL | " + " | ".join(strategies) + " |",
             "|" + "---|" * (len(strategies) + 1)]
    for mpl in chosen:
        row = [str(mpl)]
        for name in strategies:
            row.append(f"{result.throughput_at(name, mpl):.0f}")
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def figure_section(result: FigureResult) -> str:
    """A complete markdown section for one figure."""
    config = result.config
    parts = [f"### Figure {config.figure}: {config.title}",
             "",
             f"Mix `{config.mix_name}`, correlation `{config.correlation}`, "
             f"{result.cardinality:,} tuples on {result.num_sites} "
             f"processors, {result.measured_queries} measured queries per "
             "point.",
             "",
             series_table(result)]
    ok, detail = check_expectation(result)
    verdict = "matches the paper" if ok else "DEVIATES from the paper"
    parts += ["", f"Outcome ({verdict}): {detail}"]
    if config.expected and config.expected.note:
        parts.append(f"Paper's claim: {config.expected.note}")
    return "\n".join(parts)


def report_from_directory(directory: str,
                          title: str = "Regenerated figures") -> str:
    """A full markdown report from ``figure_*.json`` files in *directory*.

    Figures are ordered as in the paper; files for unknown figures are
    skipped with a note.
    """
    sections: List[str] = [f"# {title}", ""]
    scoreboard: List[str] = [
        "| Figure | Paper's claim | Measured | Verdict |",
        "|---|---|---|---|",
    ]
    loaded: Dict[str, FigureResult] = {}
    skipped: List[str] = []
    for filename in sorted(os.listdir(directory)):
        if not (filename.startswith("figure_")
                and filename.endswith(".json")):
            continue
        path = os.path.join(directory, filename)
        try:
            result = load_figure_json(path)
        except ValueError as exc:
            skipped.append(f"{filename}: {exc}")
            continue
        loaded[result.config.figure] = result

    if not loaded:
        raise FileNotFoundError(
            f"no loadable figure_*.json files in {directory!r}")

    ordered = [name for name in FIGURES if name in loaded]
    for name in ordered:
        scoreboard.append(scoreboard_row(loaded[name]))
    sections += scoreboard + [""]
    for name in ordered:
        sections += [figure_section(loaded[name]), ""]
    if skipped:
        sections.append("Skipped files: " + "; ".join(skipped))
    return "\n".join(sections)
