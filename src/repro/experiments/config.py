"""Experiment definitions: one config per table/figure of the paper.

Each :class:`ExperimentConfig` pins everything needed to regenerate one
figure: the query mix, the correlation level, the strategies compared,
MAGIC's directory shape and per-attribute M_i (taken from the values §7
reports -- 62x61 for low-low, 23x193 for low-moderate, 193x23 for
moderate-low, 101x91 for moderate-moderate), the multiprogramming levels
swept, and the paper's qualitative claim used for pass/fail checking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["ExperimentConfig", "FIGURES", "DEFAULT_MPLS", "ATTR_A", "ATTR_B",
           "SCALEUP_SITES"]

#: The workload's attribute A / B (paper §6: unique1 / unique2).
ATTR_A = "unique1"
ATTR_B = "unique2"

#: The paper's x-axis: multiprogramming levels 1..64.
DEFAULT_MPLS: Tuple[int, ...] = (1, 8, 16, 24, 32, 40, 48, 56, 64)

#: The scale-up figure's x-axis: machine sizes from the paper's 32 up to
#: the production-scale 1,024 sites the ROADMAP targets.
SCALEUP_SITES: Tuple[int, ...] = (32, 128, 512, 1024)


@dataclass(frozen=True)
class ExpectedOutcome:
    """The paper's qualitative claim for one figure, checkable on results.

    ``order`` lists strategies best-first at the highest MPL;
    ``min_ratio``/``max_ratio`` optionally bound
    throughput(order[0]) / throughput(order[1]) there.
    """

    order: Tuple[str, ...]
    min_ratio: Optional[float] = None
    max_ratio: Optional[float] = None
    note: str = ""


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to regenerate one of the paper's figures."""

    figure: str
    title: str
    mix_name: str
    correlation: str
    magic_shape: Dict[str, int]
    magic_mi: Dict[str, float]
    strategies: Tuple[str, ...] = ("range", "berd", "magic")
    mpls: Tuple[int, ...] = DEFAULT_MPLS
    expected: Optional[ExpectedOutcome] = None

    def describe(self) -> str:
        return (f"Figure {self.figure}: {self.title} "
                f"(mix={self.mix_name}, correlation={self.correlation})")


def _magic(shape_a: int, shape_b: int, mi_a: float,
           mi_b: float) -> Dict[str, Dict]:
    return {
        "magic_shape": {ATTR_A: shape_a, ATTR_B: shape_b},
        "magic_mi": {ATTR_A: mi_a, ATTR_B: mi_b},
    }


FIGURES: Dict[str, ExperimentConfig] = {
    "8a": ExperimentConfig(
        figure="8a",
        title="Low-Low query mix, low correlation",
        mix_name="low-low", correlation="low",
        expected=ExpectedOutcome(
            order=("magic", "berd", "range"), min_ratio=1.02,
            note="MAGIC outperforms BERD by ~7%; both far above range"),
        **_magic(62, 61, 4.0, 8.0)),
    "8b": ExperimentConfig(
        figure="8b",
        title="Low-Low query mix, high correlation",
        mix_name="low-low", correlation="high",
        expected=ExpectedOutcome(
            order=("magic", "berd", "range"), min_ratio=1.1,
            note="MAGIC outperforms BERD by ~45% at high MPL"),
        **_magic(62, 61, 4.0, 8.0)),
    "9": ExperimentConfig(
        figure="9",
        title="Low-Low mix with QB selectivity raised to 20 tuples",
        mix_name="low-low-20", correlation="low",
        strategies=("berd", "magic"),
        expected=ExpectedOutcome(
            order=("magic", "berd"), min_ratio=1.15,
            note="MAGIC outperforms BERD by ~50% at MPL 64"),
        **_magic(62, 61, 4.0, 8.0)),
    "10a": ExperimentConfig(
        figure="10a",
        title="Low-Moderate query mix, low correlation",
        mix_name="low-moderate", correlation="low",
        expected=ExpectedOutcome(
            order=("magic", "range", "berd"),
            note="BERD below range: it pays the auxiliary-relation "
                 "overhead while still touching all 32 processors"),
        **_magic(23, 193, 1.0, 9.0)),
    "10b": ExperimentConfig(
        figure="10b",
        title="Low-Moderate query mix, high correlation",
        mix_name="low-moderate", correlation="high",
        expected=ExpectedOutcome(
            order=("magic", "berd", "range"),
            note="Both multi-attribute strategies localize and beat "
                 "range at high MPL; MAGIC avoids the auxiliary probe"),
        **_magic(23, 193, 1.0, 9.0)),
    "11a": ExperimentConfig(
        figure="11a",
        title="Moderate-Low query mix, low correlation",
        mix_name="moderate-low", correlation="low",
        expected=ExpectedOutcome(
            order=("magic", "berd", "range"),
            note="BERD outperforms range here (QB localized to <= 11 "
                 "processors); MAGIC on top"),
        **_magic(193, 23, 9.0, 1.0)),
    "11b": ExperimentConfig(
        figure="11b",
        title="Moderate-Low query mix, high correlation",
        mix_name="moderate-low", correlation="high",
        expected=ExpectedOutcome(
            order=("magic", "berd", "range"),
            note="Near-identical to 10b per the paper"),
        **_magic(193, 23, 9.0, 1.0)),
    "12a": ExperimentConfig(
        figure="12a",
        title="Moderate-Moderate query mix, low correlation",
        mix_name="moderate-moderate", correlation="low",
        expected=ExpectedOutcome(
            order=("magic", "range", "berd"),
            note="MAGIC uses ~6.5 processors vs 16.5 for both others"),
        **_magic(101, 91, 9.0, 9.0)),
    "12b": ExperimentConfig(
        figure="12b",
        title="Moderate-Moderate query mix, high correlation",
        mix_name="moderate-moderate", correlation="high",
        expected=ExpectedOutcome(
            order=("magic", "berd", "range"), min_ratio=1.05,
            note="MAGIC outperforms BERD by ~25% at MPL 64 (no "
                 "auxiliary-relation search); range wins at MPL 1"),
        **_magic(101, 91, 9.0, 9.0)),
}
