"""Pluggable execution backends for :class:`~repro.experiments.plan.RunPlan`.

Two executors share one contract: given a plan, return one
:class:`ExecutionOutcome` per planned run, *in plan order*, consulting
an optional :class:`~repro.experiments.cache.ResultCache` before
simulating anything.

* :class:`SerialExecutor` runs everything in-process -- the historical
  behavior, and the reference the parallel backend is tested
  bit-identical against.
* :class:`ParallelExecutor` fans the plan out over a
  :class:`concurrent.futures.ProcessPoolExecutor` (``--jobs N`` on the
  CLI).  Workers rebuild relations and placements locally through the
  per-process memos in :mod:`~repro.experiments.plan`, so a
  5-strategy x 7-MPL figure builds each placement once per worker, not
  35 times.  Determinism is structural: every seed derives from the
  :class:`~repro.experiments.plan.RunSpec`, never from worker state.

Telemetry under parallelism works by shipping a picklable
:class:`~repro.obs.telemetry.TelemetrySpec` *to* the worker (which
constructs the live object locally) and a detached, environment-free
telemetry snapshot *back*.  Cache lookups are skipped whenever
telemetry is requested -- a cached result has no spans to return -- but
freshly traced results are still written through to the cache.

Both backends also feed the wall-clock observability layer, strictly
observationally (results are bit-identical with it on or off):

* ``collect_phases`` records relation-build / placement-build /
  simulate / cache-read / cache-write / telemetry-detach wall seconds
  into the installed :mod:`~repro.obs.phases` accumulator (workers
  collect locally and ship a snapshot back on each outcome);
* ``progress`` receives plan lifecycle events
  (:mod:`~repro.obs.progress`); parallel workers additionally push
  phase-boundary heartbeats over a multiprocessing queue.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..gamma import RunResult, SimulationParameters
from ..obs import Telemetry, TelemetrySpec, phases
from ..obs.progress import NULL_PROGRESS
from .cache import ResultCache
from .plan import PlannedRun, RunPlan, RunSpec, execute_run

__all__ = ["ExecutionOutcome", "SerialExecutor", "ParallelExecutor",
           "make_executor", "TelemetryProvider", "WorkerCrash"]

#: Serial-only hook: builds (or declines to build) telemetry for one spec.
TelemetryProvider = Callable[[RunSpec], Optional[Telemetry]]


class WorkerCrash(RuntimeError):
    """A parallel worker died; carries the worker traceback and spec.

    A bare exception re-raised from a pickled future says nothing about
    *which* of a 63-point grid crashed or where in the worker it
    happened.  The worker wraps any failure in this type with the
    offending :class:`RunSpec` digest, the (strategy, MPL) coordinates,
    its pid, and the full formatted traceback, all embedded in the
    message so the object pickles losslessly back to the parent.
    """


@dataclass
class ExecutionOutcome:
    """One executed (or cache-satisfied) planned run."""

    spec: RunSpec
    result: RunResult
    #: Wall seconds this simulation took wherever it ran (0.0 if cached).
    wall_seconds: float = 0.0
    #: True when the result was loaded from the cache, not simulated.
    cached: bool = False
    #: Detached telemetry snapshot, when tracing was requested.
    telemetry: Optional[Telemetry] = None
    #: Wall-clock phase snapshot from the process that ran this spec
    #: (parallel workers only; serial runs record into the installed
    #: figure-level accumulator directly).
    phases: Optional[Dict] = None


def _run_one(planned: PlannedRun, telemetry: Optional[Telemetry],
             check_invariants: bool = False) -> Tuple[RunResult, float]:
    started = time.perf_counter()
    result = execute_run(planned.spec, planned.params, telemetry=telemetry,
                         check_invariants=check_invariants)
    return result, time.perf_counter() - started


def _worker_execute(planned: PlannedRun,
                    telemetry_spec: Optional[TelemetrySpec],
                    check_invariants: bool = False,
                    collect_phases: bool = False,
                    progress_queue=None):
    """Top-level worker entry point (must be picklable by name)."""
    spec = planned.spec
    try:
        # Fork-start workers inherit the parent's installed accumulator
        # stack as junk state; drop it before collecting anything.
        phases.reset()
        listener = None
        if progress_queue is not None:
            digest = spec.digest()[:12]
            pid = os.getpid()

            def listener(name: str, action: str, elapsed: float) -> None:
                if action != "start":
                    return
                try:
                    progress_queue.put({
                        "spec": digest, "strategy": spec.strategy,
                        "mpl": spec.multiprogramming_level, "phase": name,
                        "pid": pid, "wall_seconds": round(elapsed, 6)})
                except Exception:
                    pass  # progress must never kill a simulation

        acc = None
        if collect_phases or progress_queue is not None:
            acc = phases.push(phases.PhaseAccumulator(listener=listener))
        try:
            telemetry = (telemetry_spec.build()
                         if telemetry_spec is not None else None)
            result, wall = _run_one(planned, telemetry,
                                    check_invariants=check_invariants)
            if telemetry is not None:
                with phases.phase("telemetry-detach"):
                    telemetry.detach()
        finally:
            if acc is not None:
                phases.pop(merge_into_parent=False)
        snapshot = acc.snapshot() if acc is not None else None
        if progress_queue is not None:
            counters = snapshot["counters"] if snapshot else {}
            try:
                progress_queue.put({
                    "spec": spec.digest()[:12], "strategy": spec.strategy,
                    "mpl": spec.multiprogramming_level, "phase": "worker-done",
                    "pid": os.getpid(), "wall_seconds": round(wall, 6),
                    "events": int(counters.get("events", 0)),
                    "sim_clock": round(counters.get("sim_seconds", 0.0), 6)})
            except Exception:
                pass
        return result, wall, telemetry, snapshot
    except WorkerCrash:
        raise
    except BaseException as exc:
        # Chained causes may not pickle (arbitrary third-party
        # exceptions); embed everything as text instead.
        raise WorkerCrash(
            f"worker pid {os.getpid()} failed on run spec "
            f"{spec.digest()} (figure {spec.figure}, strategy "
            f"{spec.strategy!r}, mpl {spec.multiprogramming_level}): "
            f"{type(exc).__name__}: {exc}\n"
            f"--- worker traceback ---\n{traceback.format_exc()}"
        ) from None


class SerialExecutor:
    """Runs a plan in-process, one simulation at a time."""

    name = "serial"
    jobs = 1

    def execute(self, plan: RunPlan,
                cache: Optional[ResultCache] = None,
                telemetry_spec: Optional[TelemetrySpec] = None,
                telemetry_provider: Optional[TelemetryProvider] = None,
                check_invariants: bool = False,
                progress=None,
                ) -> List[ExecutionOutcome]:
        progress = progress if progress is not None else NULL_PROGRESS
        acc = phases.current()
        progress.plan_started(len(plan), executor=self.name, jobs=self.jobs,
                              figure=_plan_figure(plan))
        outcomes: List[ExecutionOutcome] = []
        for index, planned in enumerate(plan):
            progress.spec_started(planned.spec, index)
            telemetry = None
            if telemetry_provider is not None:
                telemetry = telemetry_provider(planned.spec)
            elif telemetry_spec is not None:
                telemetry = telemetry_spec.build()
            # A cache hit was not validated by this run, so invariant
            # checking (like tracing) bypasses cache reads and always
            # simulates; fresh results still write through below.
            tracing = telemetry is not None or check_invariants
            if cache is not None and not tracing:
                with phases.phase("cache-read"):
                    hit = cache.get(planned.spec)
                if hit is not None:
                    outcomes.append(ExecutionOutcome(
                        spec=planned.spec, result=hit, cached=True))
                    progress.spec_finished(planned.spec, index, cached=True)
                    continue
            events_before = acc.counters.get("events", 0.0) if acc else 0.0
            sim_before = acc.counters.get("sim_seconds", 0.0) if acc else 0.0
            result, wall = _run_one(planned, telemetry,
                                    check_invariants=check_invariants)
            if cache is not None:
                with phases.phase("cache-write"):
                    cache.put(planned.spec, result, executor=self.name,
                              jobs=self.jobs)
            outcomes.append(ExecutionOutcome(
                spec=planned.spec, result=result, wall_seconds=wall,
                telemetry=telemetry))
            progress.spec_finished(
                planned.spec, index, cached=False, wall_seconds=wall,
                events=(acc.counters.get("events", 0.0) - events_before
                        if acc else None),
                sim_seconds=(acc.counters.get("sim_seconds", 0.0) - sim_before
                             if acc else None))
        progress.plan_finished()
        return outcomes


class ParallelExecutor:
    """Fans a plan out over a process pool (``--jobs N``)."""

    name = "process-pool"

    def __init__(self, jobs: int):
        if jobs < 2:
            raise ValueError(f"ParallelExecutor needs jobs >= 2, got {jobs}")
        self.jobs = jobs

    def execute(self, plan: RunPlan,
                cache: Optional[ResultCache] = None,
                telemetry_spec: Optional[TelemetrySpec] = None,
                telemetry_provider: Optional[TelemetryProvider] = None,
                check_invariants: bool = False,
                progress=None,
                ) -> List[ExecutionOutcome]:
        if telemetry_provider is not None:
            raise ValueError(
                "telemetry providers hold live objects and cannot cross "
                "process boundaries; pass a TelemetrySpec instead")
        progress = progress if progress is not None else NULL_PROGRESS
        acc = phases.current()
        collect_phases = acc is not None
        progress.plan_started(len(plan), executor=self.name, jobs=self.jobs,
                              figure=_plan_figure(plan))
        outcomes: List[Optional[ExecutionOutcome]] = [None] * len(plan)
        pending: List[Tuple[int, PlannedRun]] = []
        tracing = telemetry_spec is not None or check_invariants
        for index, planned in enumerate(plan):
            progress.spec_started(planned.spec, index)
            hit = None
            if cache is not None and not tracing:
                with phases.phase("cache-read"):
                    hit = cache.get(planned.spec)
            if hit is not None:
                outcomes[index] = ExecutionOutcome(
                    spec=planned.spec, result=hit, cached=True)
                progress.spec_finished(planned.spec, index, cached=True)
            else:
                pending.append((index, planned))

        if pending:
            heartbeat_queue = progress.worker_queue()
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                futures = [
                    (index, planned,
                     pool.submit(_worker_execute, planned, telemetry_spec,
                                 check_invariants, collect_phases,
                                 heartbeat_queue))
                    for index, planned in pending
                ]
                for index, planned, future in futures:
                    result, wall, telemetry, snapshot = future.result()
                    if cache is not None:
                        with phases.phase("cache-write"):
                            cache.put(planned.spec, result,
                                      executor=self.name, jobs=self.jobs)
                    if snapshot is not None and acc is not None:
                        acc.merge(snapshot)
                    counters = (snapshot or {}).get("counters", {})
                    outcomes[index] = ExecutionOutcome(
                        spec=planned.spec, result=result, wall_seconds=wall,
                        telemetry=telemetry, phases=snapshot)
                    progress.spec_finished(
                        planned.spec, index, cached=False, wall_seconds=wall,
                        events=counters.get("events"),
                        sim_seconds=counters.get("sim_seconds"))
        progress.plan_finished()
        return [outcome for outcome in outcomes if outcome is not None]


def _plan_figure(plan: RunPlan) -> Optional[str]:
    """The figure name a plan regenerates (None for an empty plan)."""
    return plan.runs[0].spec.figure if len(plan) else None


def make_executor(jobs: int = 1):
    """The executor for a requested parallelism level."""
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return SerialExecutor() if jobs == 1 else ParallelExecutor(jobs)
