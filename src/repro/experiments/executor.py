"""Pluggable execution backends for :class:`~repro.experiments.plan.RunPlan`.

Two executors share one contract: given a plan, return one
:class:`ExecutionOutcome` per planned run, *in plan order*, consulting
an optional :class:`~repro.experiments.cache.ResultCache` before
simulating anything.

* :class:`SerialExecutor` runs everything in-process -- the historical
  behavior, and the reference the parallel backend is tested
  bit-identical against.
* :class:`ParallelExecutor` fans the plan out over a
  :class:`concurrent.futures.ProcessPoolExecutor` (``--jobs N`` on the
  CLI).  Workers rebuild relations and placements locally through the
  per-process memos in :mod:`~repro.experiments.plan`, so a
  5-strategy x 7-MPL figure builds each placement once per worker, not
  35 times.  Determinism is structural: every seed derives from the
  :class:`~repro.experiments.plan.RunSpec`, never from worker state.

Telemetry under parallelism works by shipping a picklable
:class:`~repro.obs.telemetry.TelemetrySpec` *to* the worker (which
constructs the live object locally) and a detached, environment-free
telemetry snapshot *back*.  Cache lookups are skipped whenever
telemetry is requested -- a cached result has no spans to return -- but
freshly traced results are still written through to the cache.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..gamma import RunResult, SimulationParameters
from ..obs import Telemetry, TelemetrySpec
from .cache import ResultCache
from .plan import PlannedRun, RunPlan, RunSpec, execute_run

__all__ = ["ExecutionOutcome", "SerialExecutor", "ParallelExecutor",
           "make_executor", "TelemetryProvider"]

#: Serial-only hook: builds (or declines to build) telemetry for one spec.
TelemetryProvider = Callable[[RunSpec], Optional[Telemetry]]


@dataclass
class ExecutionOutcome:
    """One executed (or cache-satisfied) planned run."""

    spec: RunSpec
    result: RunResult
    #: Wall seconds this simulation took wherever it ran (0.0 if cached).
    wall_seconds: float = 0.0
    #: True when the result was loaded from the cache, not simulated.
    cached: bool = False
    #: Detached telemetry snapshot, when tracing was requested.
    telemetry: Optional[Telemetry] = None


def _run_one(planned: PlannedRun, telemetry: Optional[Telemetry],
             check_invariants: bool = False) -> Tuple[RunResult, float]:
    started = time.perf_counter()
    result = execute_run(planned.spec, planned.params, telemetry=telemetry,
                         check_invariants=check_invariants)
    return result, time.perf_counter() - started


def _worker_execute(planned: PlannedRun,
                    telemetry_spec: Optional[TelemetrySpec],
                    check_invariants: bool = False):
    """Top-level worker entry point (must be picklable by name)."""
    telemetry = telemetry_spec.build() if telemetry_spec is not None else None
    result, wall = _run_one(planned, telemetry,
                            check_invariants=check_invariants)
    if telemetry is not None:
        telemetry.detach()
    return result, wall, telemetry


class SerialExecutor:
    """Runs a plan in-process, one simulation at a time."""

    name = "serial"
    jobs = 1

    def execute(self, plan: RunPlan,
                cache: Optional[ResultCache] = None,
                telemetry_spec: Optional[TelemetrySpec] = None,
                telemetry_provider: Optional[TelemetryProvider] = None,
                check_invariants: bool = False,
                ) -> List[ExecutionOutcome]:
        outcomes: List[ExecutionOutcome] = []
        for planned in plan:
            telemetry = None
            if telemetry_provider is not None:
                telemetry = telemetry_provider(planned.spec)
            elif telemetry_spec is not None:
                telemetry = telemetry_spec.build()
            # A cache hit was not validated by this run, so invariant
            # checking (like tracing) bypasses cache reads and always
            # simulates; fresh results still write through below.
            tracing = telemetry is not None or check_invariants
            if cache is not None and not tracing:
                hit = cache.get(planned.spec)
                if hit is not None:
                    outcomes.append(ExecutionOutcome(
                        spec=planned.spec, result=hit, cached=True))
                    continue
            result, wall = _run_one(planned, telemetry,
                                    check_invariants=check_invariants)
            if cache is not None:
                cache.put(planned.spec, result, executor=self.name,
                          jobs=self.jobs)
            outcomes.append(ExecutionOutcome(
                spec=planned.spec, result=result, wall_seconds=wall,
                telemetry=telemetry))
        return outcomes


class ParallelExecutor:
    """Fans a plan out over a process pool (``--jobs N``)."""

    name = "process-pool"

    def __init__(self, jobs: int):
        if jobs < 2:
            raise ValueError(f"ParallelExecutor needs jobs >= 2, got {jobs}")
        self.jobs = jobs

    def execute(self, plan: RunPlan,
                cache: Optional[ResultCache] = None,
                telemetry_spec: Optional[TelemetrySpec] = None,
                telemetry_provider: Optional[TelemetryProvider] = None,
                check_invariants: bool = False,
                ) -> List[ExecutionOutcome]:
        if telemetry_provider is not None:
            raise ValueError(
                "telemetry providers hold live objects and cannot cross "
                "process boundaries; pass a TelemetrySpec instead")
        outcomes: List[Optional[ExecutionOutcome]] = [None] * len(plan)
        pending: List[Tuple[int, PlannedRun]] = []
        tracing = telemetry_spec is not None or check_invariants
        for index, planned in enumerate(plan):
            hit = (cache.get(planned.spec)
                   if cache is not None and not tracing else None)
            if hit is not None:
                outcomes[index] = ExecutionOutcome(
                    spec=planned.spec, result=hit, cached=True)
            else:
                pending.append((index, planned))

        if pending:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                futures = [
                    (index, planned,
                     pool.submit(_worker_execute, planned, telemetry_spec,
                                 check_invariants))
                    for index, planned in pending
                ]
                for index, planned, future in futures:
                    result, wall, telemetry = future.result()
                    if cache is not None:
                        cache.put(planned.spec, result, executor=self.name,
                                  jobs=self.jobs)
                    outcomes[index] = ExecutionOutcome(
                        spec=planned.spec, result=result, wall_seconds=wall,
                        telemetry=telemetry)
        return [outcome for outcome in outcomes if outcome is not None]


def make_executor(jobs: int = 1):
    """The executor for a requested parallelism level."""
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return SerialExecutor() if jobs == 1 else ParallelExecutor(jobs)
