"""Pluggable execution backends for :class:`~repro.experiments.plan.RunPlan`.

Two executors share one contract: given a plan, return one
:class:`ExecutionOutcome` per planned run, *in plan order*, consulting
an optional :class:`~repro.experiments.cache.ResultCache` before
simulating anything.

* :class:`SerialExecutor` runs everything in-process -- the historical
  behavior, and the reference the parallel backend is tested
  bit-identical against.
* :class:`ParallelExecutor` fans the plan out over a **warm,
  fork-shared worker pool** (``--jobs N`` on the CLI).  The parent
  first *prewarms* every distinct relation/placement the pending specs
  need (:func:`~repro.experiments.plan.prewarm`), then starts the pool
  through an explicit ``multiprocessing.get_context("fork")`` so
  workers inherit the populated memos copy-on-write -- a grid of runs
  over one figure shares almost all of its expensive state, so only
  the simulations themselves cost CPU.  On platforms without fork (or
  with ``start_method="spawn"``), a per-worker initializer prewarms
  once per *process* instead of once per task.  Dispatch is
  **chunked**: specs are grouped by
  :meth:`~repro.experiments.plan.RunSpec.placement_key` so each chunk
  stays memo-local, and chunks are submitted longest-MPL-first so the
  stragglers schedule early.  Determinism is structural: every seed
  derives from the :class:`~repro.experiments.plan.RunSpec`, never
  from worker state, and outcomes are reassembled in plan order.

Telemetry under parallelism works by shipping a picklable
:class:`~repro.obs.telemetry.TelemetrySpec` *to* the worker (which
constructs the live object locally) and a detached, environment-free
telemetry snapshot *back*.  Cache lookups are skipped whenever
telemetry is requested -- a cached result has no spans to return -- but
freshly traced results are still written through to the cache.

Both backends also feed the wall-clock observability layer, strictly
observationally (results are bit-identical with it on or off):

* ``collect_phases`` records relation-build / placement-build /
  simulate / cache-read / cache-write / telemetry-detach wall seconds
  into the installed :mod:`~repro.obs.phases` accumulator (workers
  collect locally and ship snapshots back per chunk);
* ``progress`` receives plan lifecycle events
  (:mod:`~repro.obs.progress`); parallel workers additionally push
  phase-boundary heartbeats over a multiprocessing queue.  Terminal
  ``spec-finish`` events stay in plan order: completed chunks are
  buffered and released as the plan-order frontier advances.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..gamma import RunResult, SimulationParameters
from ..obs import Telemetry, TelemetrySpec, phases
from ..obs.progress import NULL_PROGRESS
from .cache import ResultCache
from .plan import PlannedRun, RunPlan, RunSpec, execute_run, prewarm

__all__ = ["ExecutionOutcome", "SerialExecutor", "ParallelExecutor",
           "make_executor", "default_start_method", "TelemetryProvider",
           "WorkerCrash"]

#: Serial-only hook: builds (or declines to build) telemetry for one spec.
TelemetryProvider = Callable[[RunSpec], Optional[Telemetry]]

#: Target number of chunks per worker: enough slack that an unlucky
#: chunk-to-worker assignment cannot idle half the pool, few enough
#: that per-task dispatch overhead stays negligible.
_CHUNKS_PER_WORKER = 2


class WorkerCrash(RuntimeError):
    """A parallel worker died; carries the worker traceback and spec.

    A bare exception re-raised from a pickled future says nothing about
    *which* of a 63-point grid crashed or where in the worker it
    happened.  The worker wraps any failure in this type with the
    offending :class:`RunSpec` digest, the (strategy, MPL) coordinates,
    its pid, and the full formatted traceback, all embedded in the
    message so the object pickles losslessly back to the parent.

    On the first crash the parent cancels every not-yet-started chunk
    (``pool.shutdown(cancel_futures=True)``) before re-raising, so a
    broken sweep stops promptly instead of simulating the rest of the
    plan to completion first.
    """


@dataclass
class ExecutionOutcome:
    """One executed (or cache-satisfied) planned run."""

    spec: RunSpec
    result: RunResult
    #: Wall seconds this simulation took wherever it ran (0.0 if cached).
    wall_seconds: float = 0.0
    #: Process CPU seconds (``time.process_time`` delta) the run cost in
    #: the process that simulated it.  On an oversubscribed host wall
    #: time inflates with time-slicing while this stays honest, which
    #: is what the parallel benchmark's work-amplification bound is
    #: stated on.
    cpu_seconds: float = 0.0
    #: True when the result was loaded from the cache, not simulated.
    cached: bool = False
    #: Detached telemetry snapshot, when tracing was requested.
    telemetry: Optional[Telemetry] = None
    #: Wall-clock phase snapshot from the process that ran this spec
    #: (parallel workers only; serial runs record into the installed
    #: figure-level accumulator directly).
    phases: Optional[Dict] = None


def default_start_method() -> str:
    """The multiprocessing start method the parallel executor prefers.

    ``fork`` wherever the platform offers it: forked workers inherit
    the parent's prewarmed relation/placement memos copy-on-write, so
    the pool is warm for free.  Elsewhere (spawn-only platforms) the
    per-worker initializer prewarms instead.  Pinning this explicitly
    also insulates the executor from interpreter-default changes
    (Python 3.14 stops defaulting to fork on Linux).
    """
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else multiprocessing.get_start_method()


def _run_one(planned: PlannedRun, telemetry: Optional[Telemetry],
             check_invariants: bool = False
             ) -> Tuple[RunResult, float, float]:
    started = time.perf_counter()
    cpu_started = time.process_time()
    result = execute_run(planned.spec, planned.params, telemetry=telemetry,
                         check_invariants=check_invariants)
    return (result, time.perf_counter() - started,
            time.process_time() - cpu_started)


def _pool_initializer(representatives: Sequence[PlannedRun]) -> None:
    """Per-worker warmup for start methods that do not inherit memos.

    Spawn/forkserver workers begin with empty per-process memos; this
    builds each distinct relation/placement once per *process* (not
    once per task) before the first chunk arrives.  Failures are
    deliberately non-fatal (``strict=False``): a spec that cannot build
    dies inside ``_worker_execute_chunk`` instead, where it is wrapped
    in a :class:`WorkerCrash` with full context rather than taking the
    whole pool down as a bare ``BrokenProcessPool``.
    """
    phases.reset()
    prewarm(representatives, strict=False)


def _crash(spec: RunSpec, exc: BaseException) -> WorkerCrash:
    # Chained causes may not pickle (arbitrary third-party exceptions);
    # embed everything as text instead.
    return WorkerCrash(
        f"worker pid {os.getpid()} failed on run spec "
        f"{spec.digest()} (figure {spec.figure}, strategy "
        f"{spec.strategy!r}, mpl {spec.multiprogramming_level}): "
        f"{type(exc).__name__}: {exc}\n"
        f"--- worker traceback ---\n{traceback.format_exc()}")


def _worker_execute_chunk(chunk: Sequence[PlannedRun],
                          telemetry_spec: Optional[TelemetrySpec],
                          check_invariants: bool = False,
                          collect_phases: bool = False,
                          progress_queue=None):
    """Top-level worker entry point (must be picklable by name).

    Executes one memo-local chunk of planned runs and returns
    ``(per_spec, chunk_snapshot)`` where ``per_spec`` is a list of
    ``(result, wall, cpu, telemetry, spec_snapshot)`` in chunk order.
    The chunk snapshot aggregates every spec's phases and is what the
    parent merges into the figure accumulator (merging the per-spec
    snapshots too would double-count).
    """
    # Fork-start workers inherit the parent's installed accumulator
    # stack as junk state; drop it before collecting anything.
    phases.reset()
    observing = collect_phases or progress_queue is not None
    chunk_acc = phases.PhaseAccumulator() if observing else None
    pid = os.getpid()
    per_spec = []
    for planned in chunk:
        spec = planned.spec
        try:
            listener = None
            if progress_queue is not None:
                digest = spec.digest()[:12]

                def listener(name: str, action: str, elapsed: float,
                             _digest=digest, _spec=spec) -> None:
                    if action != "start":
                        return
                    try:
                        progress_queue.put({
                            "spec": _digest, "strategy": _spec.strategy,
                            "mpl": _spec.multiprogramming_level,
                            "phase": name, "pid": pid,
                            "wall_seconds": round(elapsed, 6)})
                    except Exception:
                        pass  # progress must never kill a simulation

            acc = None
            if observing:
                acc = phases.push(phases.PhaseAccumulator(listener=listener))
            try:
                telemetry = (telemetry_spec.build()
                             if telemetry_spec is not None else None)
                result, wall, cpu = _run_one(
                    planned, telemetry, check_invariants=check_invariants)
                if telemetry is not None:
                    with phases.phase("telemetry-detach"):
                        telemetry.detach()
            finally:
                if acc is not None:
                    phases.pop(merge_into_parent=False)
            snapshot = None
            if acc is not None:
                snapshot = acc.snapshot()
                chunk_acc.merge(snapshot)
            if progress_queue is not None:
                counters = snapshot["counters"] if snapshot else {}
                try:
                    progress_queue.put({
                        "spec": spec.digest()[:12],
                        "strategy": spec.strategy,
                        "mpl": spec.multiprogramming_level,
                        "phase": "worker-done", "pid": pid,
                        "wall_seconds": round(wall, 6),
                        "events": int(counters.get("events", 0)),
                        "sim_clock": round(
                            counters.get("sim_seconds", 0.0), 6)})
                except Exception:
                    pass
            per_spec.append((result, wall, cpu, telemetry, snapshot))
        except WorkerCrash:
            raise
        except BaseException as exc:
            raise _crash(spec, exc) from None
    chunk_snapshot = chunk_acc.snapshot() if chunk_acc is not None else None
    return per_spec, chunk_snapshot


class SerialExecutor:
    """Runs a plan in-process, one simulation at a time."""

    name = "serial"
    jobs = 1

    def execute(self, plan: RunPlan,
                cache: Optional[ResultCache] = None,
                telemetry_spec: Optional[TelemetrySpec] = None,
                telemetry_provider: Optional[TelemetryProvider] = None,
                check_invariants: bool = False,
                progress=None,
                ) -> List[ExecutionOutcome]:
        progress = progress if progress is not None else NULL_PROGRESS
        acc = phases.current()
        progress.plan_started(len(plan), executor=self.name, jobs=self.jobs,
                              figure=_plan_figure(plan))
        outcomes: List[ExecutionOutcome] = []
        for index, planned in enumerate(plan):
            progress.spec_started(planned.spec, index)
            telemetry = None
            if telemetry_provider is not None:
                telemetry = telemetry_provider(planned.spec)
            elif telemetry_spec is not None:
                telemetry = telemetry_spec.build()
            # A cache hit was not validated by this run, so invariant
            # checking (like tracing) bypasses cache reads and always
            # simulates; fresh results still write through below.
            tracing = telemetry is not None or check_invariants
            if cache is not None and not tracing:
                with phases.phase("cache-read"):
                    hit = cache.get(planned.spec)
                if hit is not None:
                    outcomes.append(ExecutionOutcome(
                        spec=planned.spec, result=hit, cached=True))
                    progress.spec_finished(planned.spec, index, cached=True)
                    continue
            events_before = acc.counters.get("events", 0.0) if acc else 0.0
            sim_before = acc.counters.get("sim_seconds", 0.0) if acc else 0.0
            result, wall, cpu = _run_one(planned, telemetry,
                                         check_invariants=check_invariants)
            if cache is not None:
                with phases.phase("cache-write"):
                    cache.put(planned.spec, result, executor=self.name,
                              jobs=self.jobs)
            outcomes.append(ExecutionOutcome(
                spec=planned.spec, result=result, wall_seconds=wall,
                cpu_seconds=cpu, telemetry=telemetry))
            progress.spec_finished(
                planned.spec, index, cached=False, wall_seconds=wall,
                events=(acc.counters.get("events", 0.0) - events_before
                        if acc else None),
                sim_seconds=(acc.counters.get("sim_seconds", 0.0) - sim_before
                             if acc else None))
        progress.plan_finished()
        return outcomes


def _chunk_pending(pending: Sequence[Tuple[int, PlannedRun]], jobs: int
                   ) -> List[List[Tuple[int, PlannedRun]]]:
    """Group pending runs into memo-local, straggler-first chunks.

    Specs are grouped by :meth:`RunSpec.placement_key` (a chunk never
    mixes placements, so a cold worker builds at most one), ordered
    within each group by descending MPL, and groups are split so the
    whole plan yields roughly ``_CHUNKS_PER_WORKER * jobs`` chunks --
    enough slack for the pool to balance.  Chunks are then submitted
    longest-MPL-first: the high-MPL points dominate a figure's wall
    time, so scheduling them early keeps the tail short.  Everything
    here is deterministic (stable sorts, first-appearance group order).
    """
    groups: Dict[Tuple, List[Tuple[int, PlannedRun]]] = {}
    for index, planned in pending:
        groups.setdefault(planned.spec.placement_key(), []).append(
            (index, planned))
    target = max(len(groups), min(len(pending), _CHUNKS_PER_WORKER * jobs))
    size = max(1, -(-len(pending) // target))  # ceil division
    chunks: List[List[Tuple[int, PlannedRun]]] = []
    for group in groups.values():
        group.sort(key=lambda entry: (
            -entry[1].spec.multiprogramming_level, entry[0]))
        for start in range(0, len(group), size):
            chunks.append(group[start:start + size])
    chunks.sort(key=lambda chunk: (
        -max(entry[1].spec.multiprogramming_level for entry in chunk),
        chunk[0][0]))
    return chunks


class ParallelExecutor:
    """Fans a plan out over a warm process pool (``--jobs N``).

    ``start_method`` picks the multiprocessing context: ``"fork"``
    (default where available) shares the parent's prewarmed memos with
    every worker copy-on-write; ``"spawn"`` / ``"forkserver"`` fall
    back to a per-worker initializer that prewarms once per process.
    Results are bit-identical across methods and to serial.
    """

    name = "process-pool"

    def __init__(self, jobs: int, start_method: Optional[str] = None):
        if jobs < 2:
            raise ValueError(f"ParallelExecutor needs jobs >= 2, got {jobs}")
        if start_method is None:
            start_method = default_start_method()
        available = multiprocessing.get_all_start_methods()
        if start_method not in available:
            raise ValueError(
                f"start method {start_method!r} unavailable on this "
                f"platform (have: {', '.join(available)})")
        self.jobs = jobs
        self.start_method = start_method

    def execute(self, plan: RunPlan,
                cache: Optional[ResultCache] = None,
                telemetry_spec: Optional[TelemetrySpec] = None,
                telemetry_provider: Optional[TelemetryProvider] = None,
                check_invariants: bool = False,
                progress=None,
                ) -> List[ExecutionOutcome]:
        if telemetry_provider is not None:
            raise ValueError(
                "telemetry providers hold live objects and cannot cross "
                "process boundaries; pass a TelemetrySpec instead")
        progress = progress if progress is not None else NULL_PROGRESS
        acc = phases.current()
        collect_phases = acc is not None
        progress.plan_started(len(plan), executor=self.name, jobs=self.jobs,
                              figure=_plan_figure(plan))
        outcomes: List[Optional[ExecutionOutcome]] = [None] * len(plan)
        pending: List[Tuple[int, PlannedRun]] = []
        tracing = telemetry_spec is not None or check_invariants
        for index, planned in enumerate(plan):
            progress.spec_started(planned.spec, index)
            hit = None
            if cache is not None and not tracing:
                with phases.phase("cache-read"):
                    hit = cache.get(planned.spec)
            if hit is not None:
                outcomes[index] = ExecutionOutcome(
                    spec=planned.spec, result=hit, cached=True)
                progress.spec_finished(planned.spec, index, cached=True)
            else:
                pending.append((index, planned))

        if pending:
            self._execute_pending(pending, outcomes, cache=cache,
                                  telemetry_spec=telemetry_spec,
                                  check_invariants=check_invariants,
                                  collect_phases=collect_phases,
                                  progress=progress, acc=acc)
        progress.plan_finished()
        return [outcome for outcome in outcomes if outcome is not None]

    # -- internals ---------------------------------------------------------

    def _execute_pending(self, pending, outcomes, cache, telemetry_spec,
                         check_invariants, collect_phases, progress,
                         acc) -> None:
        fork_shared = self.start_method == "fork"
        pool_kwargs: Dict = {
            "max_workers": self.jobs,
            "mp_context": multiprocessing.get_context(self.start_method),
        }
        if fork_shared:
            # Build every distinct relation/placement in the parent
            # BEFORE the pool exists: forked workers inherit the warm
            # memos copy-on-write and never rebuild.  Non-strict --
            # a spec that cannot build crashes inside its worker with
            # full WorkerCrash context instead of here.
            prewarm([planned for _, planned in pending], strict=False)
        else:
            # Spawn-style workers inherit nothing; prewarm once per
            # worker process via the pool initializer.  One planned run
            # per distinct placement key is enough to warm both memos.
            seen, representatives = set(), []
            for _, planned in pending:
                key = planned.spec.placement_key()
                if key not in seen:
                    seen.add(key)
                    representatives.append(planned)
            pool_kwargs.update(initializer=_pool_initializer,
                               initargs=(tuple(representatives),))

        chunks = _chunk_pending(pending, self.jobs)
        heartbeat_queue = progress.worker_queue()
        # spec-finish events stay in plan order whatever order chunks
        # complete in: finished chunks land here and are released as
        # the plan-order frontier advances.
        finished: Dict[int, Tuple[PlannedRun, tuple]] = {}
        frontier = 0
        order = [index for index, _ in pending]

        with ProcessPoolExecutor(**pool_kwargs) as pool:
            futures = {
                pool.submit(_worker_execute_chunk,
                            tuple(planned for _, planned in chunk),
                            telemetry_spec, check_invariants,
                            collect_phases, heartbeat_queue): chunk
                for chunk in chunks
            }
            try:
                for future in as_completed(futures):
                    per_spec, chunk_snapshot = future.result()
                    chunk = futures[future]
                    for (index, planned), entry in zip(chunk, per_spec):
                        result, wall, cpu, telemetry, snapshot = entry
                        if cache is not None:
                            with phases.phase("cache-write"):
                                cache.put(planned.spec, result,
                                          executor=self.name, jobs=self.jobs)
                        outcomes[index] = ExecutionOutcome(
                            spec=planned.spec, result=result,
                            wall_seconds=wall, cpu_seconds=cpu,
                            telemetry=telemetry, phases=snapshot)
                        finished[index] = (planned, entry)
                    if chunk_snapshot is not None and acc is not None:
                        acc.merge(chunk_snapshot)
                    while frontier < len(order) and order[frontier] in finished:
                        index = order[frontier]
                        planned, entry = finished.pop(index)
                        _, wall, _, _, snapshot = entry
                        counters = (snapshot or {}).get("counters", {})
                        progress.spec_finished(
                            planned.spec, index, cached=False,
                            wall_seconds=wall,
                            events=counters.get("events"),
                            sim_seconds=counters.get("sim_seconds"))
                        frontier += 1
            except BaseException:
                # First crash (or interrupt) wins: drop every chunk that
                # has not started yet so the sweep stops promptly
                # instead of simulating the rest of the plan first.
                pool.shutdown(cancel_futures=True)
                raise


def _plan_figure(plan: RunPlan) -> Optional[str]:
    """The figure name a plan regenerates (None for an empty plan)."""
    return plan.runs[0].spec.figure if len(plan) else None


def make_executor(jobs: int = 1, start_method: Optional[str] = None):
    """The executor for a requested parallelism level.

    ``start_method`` is forwarded to :class:`ParallelExecutor` (and
    ignored for serial): ``None`` picks fork where available.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1:
        return SerialExecutor()
    return ParallelExecutor(jobs, start_method=start_method)
