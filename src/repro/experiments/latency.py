"""Figure-level latency distributions: the results-v2 ``latency`` key.

When a figure runs with latency capture on (``--latency`` or any
:class:`~repro.obs.telemetry.TelemetrySpec` with ``latency=True``), each
(strategy, MPL) run ships back a
:class:`~repro.obs.sketch.LatencyRecorder` on its detached telemetry.
This module folds those per-run sketches into the JSON payload stored
under the optional ``latency`` key of results-v2 files (older files and
files saved without capture simply lack the key) and renders the
latency-budget tables the figure reports and ``repro-latency`` print.

Payload schema (all times in simulated seconds)::

    {
      "relative_accuracy": 0.02,
      "points": {                       # one entry per figure point
        "<strategy>": [
          {"mpl": 4,
           "by_type": {"<qtype>": {count, mean, max, p50, p95, p99}},
           "overall": {count, mean, max, p50, p95, p99},
           "sketches": <LatencyRecorder.to_dict()>},   # full histograms
          ...                            # in MPL order
        ]
      },
      "merged": {                        # all MPLs of a strategy merged
        "<strategy>": {"by_type": {...}, "overall": {...}}
      }
    }

The full per-point sketches are retained (a few hundred integers each)
so offline consumers can re-derive any quantile, re-merge across
strategies, or diff two artifacts without re-simulating.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..obs.sketch import LatencyRecorder, QUANTILES

__all__ = ["latency_payload", "latency_table", "latency_budget_lines",
           "recorders_from_payload"]


def latency_payload(telemetries: Dict[Tuple[str, int], object],
                    ) -> Optional[Dict]:
    """Build the results-v2 ``latency`` payload from a figure's telemetries.

    *telemetries* is :attr:`FigureResult.telemetries` -- ``(strategy,
    mpl) -> detached Telemetry``.  Returns None when no run carried a
    latency recorder (capture off), so callers can attach the key
    conditionally.  Iteration is sorted, making the payload -- like the
    sketches themselves -- identical under serial and parallel
    execution.
    """
    points: Dict[str, List[Dict]] = {}
    merged: Dict[str, LatencyRecorder] = {}
    accuracy = None
    for (strategy, mpl), telemetry in sorted(telemetries.items()):
        recorder = getattr(telemetry, "latency", None)
        if recorder is None:
            continue
        accuracy = recorder.relative_accuracy
        points.setdefault(strategy, []).append({
            "mpl": mpl,
            "by_type": recorder.summary(),
            "overall": recorder.overall().summary(),
            "sketches": recorder.to_dict(),
        })
        fold = merged.get(strategy)
        if fold is None:
            merged[strategy] = fold = LatencyRecorder(
                recorder.relative_accuracy, recorder.max_buckets)
        fold.merge(recorder)
    if not points:
        return None
    return {
        "relative_accuracy": accuracy,
        "points": points,
        "merged": {strategy: {"by_type": recorder.summary(),
                              "overall": recorder.overall().summary()}
                   for strategy, recorder in sorted(merged.items())},
    }


def recorders_from_payload(payload: Dict,
                           ) -> Dict[str, List[Tuple[int, LatencyRecorder]]]:
    """Rebuild live recorders from a saved ``latency`` payload.

    Returns ``strategy -> [(mpl, recorder), ...]`` in MPL order; lets
    offline tools re-derive quantiles beyond the precomputed columns.
    """
    out: Dict[str, List[Tuple[int, LatencyRecorder]]] = {}
    for strategy, entries in sorted(payload.get("points", {}).items()):
        out[strategy] = [
            (entry["mpl"], LatencyRecorder.from_dict(entry["sketches"]))
            for entry in entries]
    return out


# -- rendering -------------------------------------------------------------

_COLUMNS = ["count", "mean"] + [f"p{int(q * 100)}" for q in QUANTILES] \
    + ["max"]


def _row(label: str, summary: Dict[str, float], indent: str = "  ") -> str:
    cells = [f"{indent}{label:<22}", f"{int(summary['count']):>6}"]
    for column in _COLUMNS[1:]:
        cells.append(f"{summary[column] * 1000:>9.1f}")
    return " ".join(cells)


def _header(indent: str = "  ") -> str:
    cells = [f"{indent}{'':<22}", f"{'count':>6}"]
    for column in _COLUMNS[1:]:
        cells.append(f"{column + ' ms':>9}")
    return " ".join(cells)


def latency_table(payload: Dict, mpls: Optional[Iterable[int]] = None,
                  ) -> str:
    """Render a full latency-budget table from a ``latency`` payload.

    One block per strategy: each captured MPL's per-query-type and
    overall percentiles, plus the all-MPL merge.  *mpls* restricts the
    rendered points (the merge row always covers every captured MPL).
    """
    wanted = set(mpls) if mpls is not None else None
    lines: List[str] = [
        f"latency budget (relative accuracy "
        f"{payload['relative_accuracy']:.0%}; times in ms):"]
    for strategy, entries in sorted(payload.get("points", {}).items()):
        lines.append(f"  strategy {strategy}")
        lines.append(_header(indent="    "))
        for entry in entries:
            if wanted is not None and entry["mpl"] not in wanted:
                continue
            for qtype, summary in sorted(entry["by_type"].items()):
                lines.append(_row(f"mpl {entry['mpl']:<3} {qtype}",
                                  summary, indent="    "))
            lines.append(_row(f"mpl {entry['mpl']:<3} (all types)",
                              entry["overall"], indent="    "))
        merged = payload.get("merged", {}).get(strategy)
        if merged is not None:
            lines.append(_row("all mpls (all types)", merged["overall"],
                              indent="    "))
    return "\n".join(lines) + "\n"


def latency_budget_lines(payload: Dict) -> List[str]:
    """The compact latency-budget block for figure reports.

    Per strategy: the overall distribution at the *highest* captured
    MPL (the point where the paper states its claims and where tails
    diverge the most), one line per strategy.
    """
    lines: List[str] = [
        f"Latency budget at the highest captured MPL "
        f"(p50/p95/p99/max ms, "
        f"+/-{payload['relative_accuracy']:.0%} relative):"]
    for strategy, entries in sorted(payload.get("points", {}).items()):
        last = entries[-1]
        summary = last["overall"]
        quantiles = "/".join(
            f"{summary[f'p{int(q * 100)}'] * 1000:.1f}" for q in QUANTILES)
        lines.append(
            f"  {strategy:<8} mpl {last['mpl']:>3}: "
            f"{quantiles}/{summary['max'] * 1000:.1f} ms "
            f"over {int(summary['count'])} queries "
            f"(mean {summary['mean'] * 1000:.1f} ms)")
    return lines
