"""Cross-strategy placement-quality reports (markdown + HTML).

Fuses the static audit of :mod:`repro.obs.audit` -- per-processor heat
maps, skew statistics, M_i slice spread, per-query fan-out -- with the
runtime telemetry a traced run collected (why-table, per-node
load-balance metrics) into one side-by-side comparison artifact per
figure.  Two render targets per report: a markdown file for terminals
and diffs, and a self-contained HTML file (inline CSS, no scripts, no
external assets) whose heat-map tables shade each cell on a single-hue
ramp.

Reports never simulate.  Placements are rebuilt (or reused from the
plan layer's per-process memo) via
:func:`~repro.experiments.plan.placement_for_spec`, so ``repro-audit``
on a cached results file is pure post-processing.
"""

from __future__ import annotations

import html
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs import span_records, why_table
from ..obs.audit import PlacementAudit, audit_digest, audit_placement
from ..obs.critpath import (
    critical_paths,
    critpath_table,
    summarize_critical_paths,
)
from ..obs.sketch import QUANTILES
from ..workload import make_mix
from .config import ExperimentConfig
from .plan import compile_point, placement_for_spec
from .runner import FigureResult

__all__ = [
    "AuditReport",
    "build_audit_report",
    "build_static_report",
    "audit_payload",
    "render_markdown",
    "render_html",
    "write_report",
]

#: The two correlation levels the sensitivity probe re-audits under.
SENSITIVITY_CORRELATIONS = ("low", "high")

#: Heat-map table width (processors per row).
_HEAT_COLUMNS = 8


@dataclass
class AuditReport:
    """Everything one rendered audit report contains."""

    figure: str
    title: str
    mix_name: str
    correlation: str
    cardinality: int
    num_sites: int
    seed: int
    samples: int
    strategies: List[str]
    #: Per-strategy static audit under the figure's own correlation.
    audits: Dict[str, PlacementAudit]
    #: strategy -> correlation -> compact audit summary.
    sensitivity: Dict[str, Dict[str, Dict]] = field(default_factory=dict)
    #: strategy -> [(mpl, throughput)], empty for static reports.
    throughputs: Dict[str, List[Tuple[int, float]]] = field(
        default_factory=dict)
    #: strategy -> rendered why-table (traced runs only).
    why_tables: Dict[str, str] = field(default_factory=dict)
    #: strategy -> rendered critical-path table (traced runs only):
    #: where the wall response time actually went, shares summing to
    #: <= 100% -- the non-overlapping complement of the why-table.
    critpath_tables: Dict[str, str] = field(default_factory=dict)
    #: The figure's results-v2 ``latency`` payload (latency capture
    #: only); rendered as the latency-budget section.
    latency: Optional[Dict] = None
    #: strategy -> runtime load-balance metrics (traced runs only).
    load_balance: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def summaries(self) -> Dict[str, Dict]:
        return {name: audit.summary()
                for name, audit in self.audits.items()}

    @property
    def digest(self) -> str:
        return audit_digest(self.summaries())


def audit_payload(report: AuditReport) -> Dict:
    """The compact audit payload embedded in results-v2 artifacts."""
    return {"summary": report.summaries(), "digest": report.digest}


# -- building --------------------------------------------------------------


def _audit_one(config: ExperimentConfig, strategy: str, cardinality: int,
               num_sites: int, seed: int, samples: int,
               correlation=None) -> PlacementAudit:
    """Static audit of one (strategy, correlation) placement -- memoized
    through the plan layer, never simulated."""
    planned = compile_point(config, strategy, multiprogramming_level=1,
                            cardinality=cardinality, num_sites=num_sites,
                            correlation=correlation, seed=seed)
    placement = placement_for_spec(planned.spec, planned.params, config)
    mix = make_mix(config.mix_name, domain=cardinality,
                   qb_low_tuples=planned.spec.qb_low_tuples)
    return audit_placement(placement, mix, strategy=strategy,
                           correlation=planned.spec.correlation,
                           samples=samples, seed=seed)


def _build(config: ExperimentConfig, strategies: List[str],
           cardinality: int, num_sites: int, seed: int, samples: int,
           sensitivity: bool) -> AuditReport:
    audits = {
        strategy: _audit_one(config, strategy, cardinality, num_sites,
                             seed, samples)
        for strategy in strategies
    }
    report = AuditReport(
        figure=config.figure, title=config.title,
        mix_name=config.mix_name, correlation=config.correlation,
        cardinality=cardinality, num_sites=num_sites,
        seed=seed, samples=samples,
        strategies=list(strategies), audits=audits)
    if sensitivity:
        for strategy in strategies:
            per_corr = {}
            for corr in SENSITIVITY_CORRELATIONS:
                if corr == config.correlation:
                    per_corr[corr] = audits[strategy].summary()
                else:
                    per_corr[corr] = _audit_one(
                        config, strategy, cardinality, num_sites, seed,
                        samples, correlation=corr).summary()
            report.sensitivity[strategy] = per_corr
    return report


def _fuse_telemetry(report: AuditReport, result: FigureResult) -> None:
    """Fold a traced run's telemetry into the report (highest MPL per
    strategy): the why-table and the per-node load-balance gauges the
    machine recorded at the end of the measurement window."""
    chosen: Dict[str, Tuple[int, object]] = {}
    for (strategy, mpl), telemetry in result.telemetries.items():
        if strategy not in chosen or mpl > chosen[strategy][0]:
            chosen[strategy] = (mpl, telemetry)
    for strategy, (mpl, telemetry) in sorted(chosen.items()):
        registry = telemetry.registry
        balance: Dict[str, float] = {"mpl": float(mpl)}
        ratio = registry.get("nodes.cpu.busy_share.max_over_mean")
        if ratio is not None:
            balance["busy_share_max_over_mean"] = ratio.value
        selects = []
        for site in range(result.num_sites):
            counter = registry.get(f"node.{site}.ops.selects")
            if counter is None:
                break
            selects.append(counter.value)
        if len(selects) == result.num_sites and sum(selects):
            from ..obs.audit import skew_stats
            stats = skew_stats(selects)
            balance["selects_total"] = stats.total
            balance["selects_cv"] = stats.cv
            balance["selects_max_mean_ratio"] = stats.max_mean_ratio
        report.load_balance[strategy] = balance
        if telemetry.tracing and telemetry.spans is not None:
            report.why_tables[strategy] = why_table(telemetry.spans).rstrip()
            summaries = summarize_critical_paths(
                critical_paths(span_records(telemetry.spans)))
            if summaries:
                report.critpath_tables[strategy] = \
                    critpath_table(summaries).rstrip()


def build_audit_report(result: FigureResult, samples: int = 400,
                       sensitivity: bool = True) -> AuditReport:
    """Audit every strategy of a figure run and fuse its telemetry.

    Works identically on a freshly executed :class:`FigureResult` and
    on one reloaded from a results-v2 JSON artifact; either way no
    simulation happens here.
    """
    config = result.config
    strategies = list(result.series) or list(config.strategies)
    report = _build(config, strategies, result.cardinality,
                    result.num_sites, result.seed, samples, sensitivity)
    for strategy, runs in result.series.items():
        report.throughputs[strategy] = [
            (run.multiprogramming_level, run.throughput) for run in runs]
    report.latency = result.latency
    _fuse_telemetry(report, result)
    return report


def build_static_report(config: ExperimentConfig,
                        cardinality: int = 100_000, num_sites: int = 32,
                        seed: int = 13, samples: int = 400,
                        sensitivity: bool = True) -> AuditReport:
    """Audit a figure's placements without any run at all."""
    return _build(config, list(config.strategies), cardinality, num_sites,
                  seed, samples, sensitivity)


# -- markdown rendering ----------------------------------------------------


def _fmt(value: float, digits: int = 3) -> str:
    return f"{value:.{digits}f}"


def _heat_rows(counts: Tuple[int, ...]) -> List[Tuple[int, List[int]]]:
    """Chunk a per-processor vector into heat-map table rows."""
    return [(start, list(counts[start:start + _HEAT_COLUMNS]))
            for start in range(0, len(counts), _HEAT_COLUMNS)]


def _md_table(header: List[str], rows: List[List[str]]) -> List[str]:
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    lines += ["| " + " | ".join(row) + " |" for row in rows]
    return lines


def _skew_rows(report: AuditReport, which: str) -> List[List[str]]:
    rows = []
    for metric, attr in (("max/mean", "max_mean_ratio"), ("CV", "cv"),
                         ("Gini", "gini")):
        row = [f"{which} {metric}"]
        for strategy in report.strategies:
            audit = report.audits[strategy]
            stats = (audit.tuple_skew if which == "tuples"
                     else audit.fragment_skew)
            row.append(_fmt(getattr(stats, attr)))
        rows.append(row)
    return rows


def _fanout_rows(report: AuditReport) -> List[List[str]]:
    query_types = sorted({name for audit in report.audits.values()
                          for name in audit.fanouts})
    rows = []
    for qtype in query_types:
        for label, getter in (
                ("fan-out mean", lambda f: _fmt(f.target_mean, 2)),
                ("fan-out min..max",
                 lambda f: f"{f.target_min}..{f.target_max}"),
                ("aux probe mean", lambda f: _fmt(f.probe_mean, 2)),
                ("two-step", lambda f: "yes" if f.two_step else "no"),
                ("broadcast %",
                 lambda f: _fmt(100 * f.broadcast_fraction, 1))):
            row = [f"{qtype} {label}"]
            for strategy in report.strategies:
                fanout = report.audits[strategy].fanouts.get(qtype)
                row.append(getter(fanout) if fanout else "-")
            rows.append(row)
    return rows


_LATENCY_HEADER = ["strategy", "MPL", "queries", "mean ms"] \
    + [f"p{int(q * 100)} ms" for q in QUANTILES] + ["max ms"]


def _latency_rows(report: AuditReport) -> List[List[str]]:
    """Latency-budget rows: each strategy at its highest captured MPL."""
    rows = []
    for strategy, entries in sorted(
            (report.latency or {}).get("points", {}).items()):
        last = entries[-1]
        summary = last["overall"]
        rows.append(
            [strategy, str(last["mpl"]), str(int(summary["count"])),
             _fmt(summary["mean"] * 1000, 1)]
            + [_fmt(summary[f"p{int(q * 100)}"] * 1000, 1)
               for q in QUANTILES]
            + [_fmt(summary["max"] * 1000, 1)])
    return rows


def render_markdown(report: AuditReport) -> str:
    """The report as GitHub-flavoured markdown."""
    lines: List[str] = []
    lines.append(f"# Placement audit: figure {report.figure}")
    lines.append("")
    lines.append(f"{report.title} -- mix `{report.mix_name}`, correlation "
                 f"`{report.correlation}`, {report.cardinality} tuples on "
                 f"{report.num_sites} processors (seed {report.seed}, "
                 f"{report.samples} sampled queries per type).")
    lines.append("")
    lines.append(f"Audit digest: `{report.digest}`")
    lines.append("")

    if report.throughputs:
        lines.append("## Measured throughput (queries/second)")
        lines.append("")
        mpls = sorted({mpl for series in report.throughputs.values()
                       for mpl, _ in series})
        header = ["MPL"] + report.strategies
        rows = []
        for mpl in mpls:
            row = [str(mpl)]
            for strategy in report.strategies:
                value = dict(report.throughputs.get(strategy, [])).get(mpl)
                row.append(_fmt(value, 1) if value is not None else "-")
            rows.append(row)
        lines += _md_table(header, rows)
        lines.append("")

    lines.append("## Declustering skew (static)")
    lines.append("")
    lines.append("max/mean 1.0 = perfectly even; CV and Gini 0.0 = "
                 "perfectly even.")
    lines.append("")
    lines += _md_table([""] + report.strategies,
                       _skew_rows(report, "tuples")
                       + _skew_rows(report, "fragments"))
    lines.append("")

    lines.append("## Per-query fan-out (static)")
    lines.append("")
    lines.append("Processors touched per sampled selection; BERD's "
                 "two-step rows count the auxiliary-index probe phase "
                 "separately from the base-fragment selections it "
                 "directs.")
    lines.append("")
    lines += _md_table(["metric"] + report.strategies,
                       _fanout_rows(report))
    lines.append("")

    spread_rows = []
    for strategy in report.strategies:
        for spread in report.audits[strategy].slice_spreads:
            spread_rows.append([
                strategy, spread.attribute,
                "-" if spread.target is None else str(spread.target),
                "-" if spread.ideal_mi is None else _fmt(spread.ideal_mi, 1),
                _fmt(spread.achieved_mean, 2),
                f"{spread.achieved_min}..{spread.achieved_max}",
                {True: "yes", False: "NO", None: "-"}[spread.within_one],
            ])
    if spread_rows:
        lines.append("## MAGIC slice spread vs. M_i targets")
        lines.append("")
        lines.append("Distinct processors per grid slice vs. the integer "
                     "targets `assign_entries` aimed for.")
        lines.append("")
        lines += _md_table(["strategy", "attribute", "target", "ideal M_i",
                            "achieved mean", "achieved range", "within 1"],
                           spread_rows)
        lines.append("")

    lines.append("## Tuple heat maps (tuples per processor)")
    for strategy in report.strategies:
        audit = report.audits[strategy]
        lines.append("")
        lines.append(f"### {strategy}")
        lines.append("")
        header = ["sites"] + [f"+{i}" for i in range(_HEAT_COLUMNS)]
        rows = []
        for start, chunk in _heat_rows(audit.tuple_counts):
            rows.append([f"{start}.."]
                        + [str(v) for v in chunk]
                        + [""] * (_HEAT_COLUMNS - len(chunk)))
        lines += _md_table(header, rows)
        for attribute, counts in sorted(audit.aux_counts.items()):
            lines.append("")
            lines.append(f"Auxiliary index on `{attribute}` "
                         f"(entries per processor):")
            lines.append("")
            rows = [[f"{start}.."] + [str(v) for v in chunk]
                    + [""] * (_HEAT_COLUMNS - len(chunk))
                    for start, chunk in _heat_rows(counts)]
            lines += _md_table(header, rows)
    lines.append("")

    if report.sensitivity:
        lines.append("## Correlation sensitivity")
        lines.append("")
        lines.append("The same placements re-audited under low and high "
                     "attribute correlation (paper §4: correlation is "
                     "what breaks naive grid assignments).")
        lines.append("")
        rows = []
        for strategy in report.strategies:
            per_corr = report.sensitivity.get(strategy, {})
            for corr in SENSITIVITY_CORRELATIONS:
                summary = per_corr.get(corr)
                if not summary:
                    continue
                qb = summary["fanouts"].get("QB", {})
                rows.append([
                    strategy, corr,
                    _fmt(summary["tuple_skew"]["max_mean_ratio"]),
                    _fmt(summary["tuple_skew"]["gini"]),
                    _fmt(qb.get("target_mean", float("nan")), 2),
                ])
        lines += _md_table(["strategy", "correlation", "tuple max/mean",
                            "tuple Gini", "QB fan-out mean"], rows)
        lines.append("")

    if report.load_balance:
        lines.append("## Runtime load balance (measured)")
        lines.append("")
        lines.append("From the traced run's metrics registry, at each "
                     "strategy's highest traced MPL: per-node CPU "
                     "busy-share spread and completed selections per "
                     "node.")
        lines.append("")
        rows = []
        for strategy in report.strategies:
            balance = report.load_balance.get(strategy)
            if not balance:
                continue
            rows.append([
                strategy, str(int(balance.get("mpl", 0))),
                _fmt(balance.get("busy_share_max_over_mean",
                                 float("nan"))),
                _fmt(balance.get("selects_cv", float("nan"))),
                str(int(balance.get("selects_total", 0))),
            ])
        lines += _md_table(["strategy", "MPL", "busy max/mean",
                            "selects CV", "selects total"], rows)
        lines.append("")

    if report.latency:
        lines.append("## Query latency budget (measured)")
        lines.append("")
        lines.append(f"Response-time distribution at each strategy's "
                     f"highest captured MPL, from mergeable quantile "
                     f"sketches (relative accuracy "
                     f"{report.latency['relative_accuracy']:.0%}).")
        lines.append("")
        lines += _md_table(_LATENCY_HEADER, _latency_rows(report))
        lines.append("")

    for strategy, table in sorted(report.why_tables.items()):
        lines.append(f"## Why-table: {strategy}")
        lines.append("")
        lines.append("```")
        lines.append(table)
        lines.append("```")
        lines.append("")

    for strategy, table in sorted(report.critpath_tables.items()):
        lines.append(f"## Critical path: {strategy}")
        lines.append("")
        lines.append("Unlike the why-table's overlapping totals, these "
                     "shares partition the wall response time, so they "
                     "sum to at most 100%.")
        lines.append("")
        lines.append("```")
        lines.append(table)
        lines.append("```")
        lines.append("")

    return "\n".join(lines).rstrip() + "\n"


# -- HTML rendering --------------------------------------------------------

#: Single sequential hue for heat cells (light -> dark = low -> high).
_HEAT_RGB = (38, 99, 160)

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; padding: 0 1rem;
       color: #1f2430; background: #ffffff; }
h1, h2, h3 { color: #1f2430; }
h2 { border-bottom: 1px solid #e3e6ea; padding-bottom: 0.3rem; }
p.meta { color: #5a6372; }
table { border-collapse: collapse; margin: 0.75rem 0; }
th, td { border: 1px solid #e3e6ea; padding: 0.3rem 0.6rem;
         text-align: right; font-variant-numeric: tabular-nums; }
th { background: #f4f6f8; color: #3c4454; }
td.label, th.label { text-align: left; }
td.heat { min-width: 3.2rem; }
pre { background: #f4f6f8; padding: 0.75rem; overflow-x: auto;
      font-size: 0.85rem; }
code { background: #f4f6f8; padding: 0.1rem 0.3rem; }
.digest { color: #5a6372; font-size: 0.9rem; }
"""


def _heat_cell(value: float, maximum: float) -> str:
    """One shaded heat-map cell: single-hue ramp, value printed."""
    norm = (value / maximum) if maximum > 0 else 0.0
    alpha = 0.06 + 0.74 * norm
    r, g, b = _HEAT_RGB
    ink = "#ffffff" if alpha > 0.52 else "#1f2430"
    return (f'<td class="heat" style="background: '
            f'rgba({r},{g},{b},{alpha:.2f}); color: {ink};">'
            f'{int(value)}</td>')


def _html_table(header: List[str], rows: List[List[str]],
                label_first: bool = True) -> List[str]:
    parts = ["<table>", "<tr>"]
    for index, cell in enumerate(header):
        cls = ' class="label"' if label_first and index == 0 else ""
        parts.append(f"<th{cls}>{html.escape(cell)}</th>")
    parts.append("</tr>")
    for row in rows:
        parts.append("<tr>")
        for index, cell in enumerate(row):
            cls = ' class="label"' if label_first and index == 0 else ""
            parts.append(f"<td{cls}>{html.escape(cell)}</td>")
        parts.append("</tr>")
    parts.append("</table>")
    return parts


def _html_heat_table(counts: Tuple[int, ...]) -> List[str]:
    maximum = float(max(counts)) if counts else 0.0
    parts = ["<table>", "<tr>", '<th class="label">sites</th>']
    parts += [f"<th>+{i}</th>" for i in range(_HEAT_COLUMNS)]
    parts.append("</tr>")
    for start, chunk in _heat_rows(counts):
        parts.append("<tr>")
        parts.append(f'<td class="label">{start}..</td>')
        parts += [_heat_cell(value, maximum) for value in chunk]
        parts += ["<td></td>"] * (_HEAT_COLUMNS - len(chunk))
        parts.append("</tr>")
    parts.append("</table>")
    return parts


def render_html(report: AuditReport) -> str:
    """The report as one self-contained HTML page (no scripts/assets)."""
    parts: List[str] = []
    parts.append("<!DOCTYPE html>")
    parts.append('<html lang="en"><head><meta charset="utf-8">')
    parts.append(f"<title>Placement audit: figure "
                 f"{html.escape(report.figure)}</title>")
    parts.append(f"<style>{_CSS}</style></head><body>")
    parts.append(f"<h1>Placement audit: figure "
                 f"{html.escape(report.figure)}</h1>")
    parts.append(f'<p class="meta">{html.escape(report.title)} &mdash; '
                 f"mix <code>{html.escape(report.mix_name)}</code>, "
                 f"correlation <code>{html.escape(report.correlation)}"
                 f"</code>, {report.cardinality} tuples on "
                 f"{report.num_sites} processors (seed {report.seed}, "
                 f"{report.samples} sampled queries per type).</p>")
    parts.append(f'<p class="digest">Audit digest: '
                 f"<code>{report.digest}</code></p>")

    if report.throughputs:
        parts.append("<h2>Measured throughput (queries/second)</h2>")
        mpls = sorted({mpl for series in report.throughputs.values()
                       for mpl, _ in series})
        rows = []
        for mpl in mpls:
            row = [str(mpl)]
            for strategy in report.strategies:
                value = dict(report.throughputs.get(strategy, [])).get(mpl)
                row.append(_fmt(value, 1) if value is not None else "-")
            rows.append(row)
        parts += _html_table(["MPL"] + report.strategies, rows)

    parts.append("<h2>Declustering skew (static)</h2>")
    parts.append("<p>max/mean 1.0 = perfectly even; CV and Gini 0.0 = "
                 "perfectly even.</p>")
    parts += _html_table([""] + report.strategies,
                         _skew_rows(report, "tuples")
                         + _skew_rows(report, "fragments"))

    parts.append("<h2>Per-query fan-out (static)</h2>")
    parts.append("<p>Processors touched per sampled selection; BERD's "
                 "two-step rows count the auxiliary-index probe phase "
                 "separately from the base-fragment selections it "
                 "directs.</p>")
    parts += _html_table(["metric"] + report.strategies,
                         _fanout_rows(report))

    spread_rows = []
    for strategy in report.strategies:
        for spread in report.audits[strategy].slice_spreads:
            spread_rows.append([
                strategy, spread.attribute,
                "-" if spread.target is None else str(spread.target),
                "-" if spread.ideal_mi is None else _fmt(spread.ideal_mi, 1),
                _fmt(spread.achieved_mean, 2),
                f"{spread.achieved_min}..{spread.achieved_max}",
                {True: "yes", False: "NO", None: "-"}[spread.within_one],
            ])
    if spread_rows:
        parts.append("<h2>MAGIC slice spread vs. M<sub>i</sub> "
                     "targets</h2>")
        parts += _html_table(["strategy", "attribute", "target",
                              "ideal M_i", "achieved mean",
                              "achieved range", "within 1"], spread_rows)

    parts.append("<h2>Tuple heat maps (tuples per processor)</h2>")
    for strategy in report.strategies:
        audit = report.audits[strategy]
        parts.append(f"<h3>{html.escape(strategy)}</h3>")
        parts += _html_heat_table(audit.tuple_counts)
        for attribute, counts in sorted(audit.aux_counts.items()):
            parts.append(f"<p>Auxiliary index on <code>"
                         f"{html.escape(attribute)}</code> "
                         f"(entries per processor):</p>")
            parts += _html_heat_table(counts)

    if report.sensitivity:
        parts.append("<h2>Correlation sensitivity</h2>")
        rows = []
        for strategy in report.strategies:
            per_corr = report.sensitivity.get(strategy, {})
            for corr in SENSITIVITY_CORRELATIONS:
                summary = per_corr.get(corr)
                if not summary:
                    continue
                qb = summary["fanouts"].get("QB", {})
                rows.append([
                    strategy, corr,
                    _fmt(summary["tuple_skew"]["max_mean_ratio"]),
                    _fmt(summary["tuple_skew"]["gini"]),
                    _fmt(qb.get("target_mean", float("nan")), 2),
                ])
        parts += _html_table(["strategy", "correlation", "tuple max/mean",
                              "tuple Gini", "QB fan-out mean"], rows)

    if report.load_balance:
        parts.append("<h2>Runtime load balance (measured)</h2>")
        rows = []
        for strategy in report.strategies:
            balance = report.load_balance.get(strategy)
            if not balance:
                continue
            rows.append([
                strategy, str(int(balance.get("mpl", 0))),
                _fmt(balance.get("busy_share_max_over_mean",
                                 float("nan"))),
                _fmt(balance.get("selects_cv", float("nan"))),
                str(int(balance.get("selects_total", 0))),
            ])
        parts += _html_table(["strategy", "MPL", "busy max/mean",
                              "selects CV", "selects total"], rows)

    if report.latency:
        parts.append("<h2>Query latency budget (measured)</h2>")
        parts.append(f"<p>Response-time distribution at each strategy's "
                     f"highest captured MPL, from mergeable quantile "
                     f"sketches (relative accuracy "
                     f"{report.latency['relative_accuracy']:.0%}).</p>")
        parts += _html_table(_LATENCY_HEADER, _latency_rows(report))

    for strategy, table in sorted(report.why_tables.items()):
        parts.append(f"<h2>Why-table: {html.escape(strategy)}</h2>")
        parts.append(f"<pre>{html.escape(table)}</pre>")

    for strategy, table in sorted(report.critpath_tables.items()):
        parts.append(f"<h2>Critical path: {html.escape(strategy)}</h2>")
        parts.append("<p>Unlike the why-table's overlapping totals, "
                     "these shares partition the wall response time, so "
                     "they sum to at most 100%.</p>")
        parts.append(f"<pre>{html.escape(table)}</pre>")

    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def write_report(report: AuditReport, out_dir: str) -> Tuple[str, str]:
    """Write ``audit_<figure>.md`` and ``.html``; returns both paths."""
    os.makedirs(out_dir, exist_ok=True)
    md_path = os.path.join(out_dir, f"audit_{report.figure}.md")
    html_path = os.path.join(out_dir, f"audit_{report.figure}.html")
    with open(md_path, "w") as handle:
        handle.write(render_markdown(report))
    with open(html_path, "w") as handle:
        handle.write(render_html(report))
    return md_path, html_path
