"""``--explain``: re-run one MPL point with tracing and show *why*.

The paper's §7 explains each figure by naming the saturated resource
(MAGIC's scheduler CPU at high multiprogramming levels, BERD's
sequential auxiliary probe, range's full-broadcast disk load).  This
module compiles a single (figure, MPL) point per strategy into a
:class:`~repro.experiments.plan.RunPlan`, executes it with telemetry
enabled (optionally on a process pool -- the workers return detached
telemetry snapshots) and prints the per-query-type resource breakdown
-- the measured version of that narrative.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..gamma import GAMMA_PARAMETERS, SimulationParameters
from ..obs import Telemetry, TelemetrySpec, dominant_resource, why_table
from .config import FIGURES
from .executor import make_executor
from .plan import compile_figure

__all__ = ["explain_figure", "ExplainResult"]


class ExplainResult:
    """The traced re-run of one figure point, per strategy."""

    def __init__(self, figure: str, mpl: int):
        self.figure = figure
        self.mpl = mpl
        self.telemetry: Dict[str, Telemetry] = {}
        self.run_results: Dict[str, object] = {}

    def dominant(self, strategy: str, query_type: str) -> Optional[str]:
        """The resource with the most attributed time for one query type."""
        telemetry = self.telemetry[strategy]
        return dominant_resource(telemetry.spans, query_type)

    def saturated(self, strategy: str) -> str:
        """The machine resource with the highest busy fraction.

        Per-query attributed time sums across all sites, so 32 node
        CPUs at 50% outweigh one scheduler CPU at 90% there; the
        *saturated* resource compares per-server utilization instead,
        which is what caps throughput.
        """
        run = self.run_results[strategy]
        utilization = {
            "sched.cpu": run.scheduler_cpu_utilization,
            "node.cpu": run.cpu_utilization,
            "node.disk": run.disk_utilization,
        }
        return max(utilization, key=utilization.__getitem__)

    def render(self, top_k: int = 5) -> str:
        lines: List[str] = []
        lines.append(f"Figure {self.figure} at MPL {self.mpl}: "
                     f"where each query type's time went")
        lines.append("(wait = queued behind other work; service = using "
                     "the resource; per-site times sum across sites)")
        for strategy, telemetry in self.telemetry.items():
            run = self.run_results[strategy]
            lines.append("")
            lines.append(f"=== {strategy}: {run.throughput:.1f} q/s, "
                         f"sched cpu {run.scheduler_cpu_utilization:.0%}, "
                         f"node cpu {run.cpu_utilization:.0%}, "
                         f"disk {run.disk_utilization:.0%} ===")
            lines.append(why_table(telemetry.spans, top_k=top_k).rstrip())
            for qtype in sorted(telemetry.spans.resource_totals):
                lines.append(f"  -> {qtype} bottleneck: "
                             f"{dominant_resource(telemetry.spans, qtype)}")
            lines.append(f"  -> saturated resource: "
                         f"{self.saturated(strategy)}")
        lines.append("")
        lines.append("scheduler CPU load by strategy (the multi-attribute "
                     "strategies' coordination cost, paper §7):")
        for strategy, run in self.run_results.items():
            lines.append(f"  {strategy:<14} "
                         f"{run.scheduler_cpu_utilization:6.0%}")
        return "\n".join(lines) + "\n"


def explain_figure(figure: str, mpl: int = 64,
                   cardinality: int = 100_000, num_sites: int = 32,
                   measured_queries: int = 200, seed: int = 13,
                   params: SimulationParameters = GAMMA_PARAMETERS,
                   strategies: Optional[Sequence[str]] = None,
                   jobs: int = 1) -> ExplainResult:
    """Re-run one (figure, MPL) point per strategy with tracing on."""
    config = FIGURES[figure]
    plan = compile_figure(config, cardinality=cardinality,
                          num_sites=num_sites,
                          measured_queries=measured_queries,
                          mpls=(mpl,), seed=seed, params=params,
                          strategies=strategies)
    outcomes = make_executor(jobs).execute(
        plan, telemetry_spec=TelemetrySpec())

    result = ExplainResult(figure, mpl)
    for outcome in outcomes:
        result.run_results[outcome.spec.strategy] = outcome.result
        result.telemetry[outcome.spec.strategy] = outcome.telemetry
    return result
