"""Plain-text reporting of regenerated figures and auxiliary tables.

Produces the same information the paper's figures and in-text numbers
convey: throughput-vs-MPL series per strategy, the average number of
processors each strategy uses per query type (the §7 in-text numbers),
and the §4 rebalancing worst case.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core import (
    Placement,
    RangePredicate,
    assign_entries,
    build_from_shape,
    load_spread,
    rebalance_assignment,
)
from ..storage import make_wisconsin
from ..workload import make_mix
from .config import ATTR_A, ATTR_B, ExperimentConfig
from .runner import FigureResult, build_strategy, check_expectation

__all__ = [
    "format_figure",
    "average_processors_table",
    "rebalance_worst_case",
    "format_processor_table",
]


def format_figure(result: FigureResult) -> str:
    """Render one figure's series as an aligned text table."""
    config = result.config
    lines = [config.describe(),
             f"(relation: {result.cardinality} tuples on "
             f"{result.num_sites} processors; "
             f"{result.measured_queries} measured queries per point)"]
    strategies = list(result.series)
    header = "MPL".rjust(5) + "".join(s.rjust(12) for s in strategies)
    lines.append(header)
    lines.append("-" * len(header))
    mpls = [run.multiprogramming_level
            for run in result.series[strategies[0]]]
    for i, mpl in enumerate(mpls):
        row = f"{mpl:5d}"
        for s in strategies:
            row += f"{result.series[s][i].throughput:12.1f}"
        lines.append(row)
    ok, detail = check_expectation(result)
    verdict = "MATCHES PAPER" if ok else "DEVIATES FROM PAPER"
    lines.append(f"paper expectation [{verdict}]: {detail}")
    if config.expected and config.expected.note:
        lines.append(f"paper note: {config.expected.note}")
    if result.latency is not None:
        from .latency import latency_budget_lines
        lines.extend(latency_budget_lines(result.latency))
    return "\n".join(lines)


def average_processors_table(config: ExperimentConfig,
                             cardinality: int = 100_000,
                             num_sites: int = 32,
                             samples: int = 300,
                             seed: int = 13) -> Dict[str, Dict[str, float]]:
    """Average processors used per query type, per strategy (§7 numbers).

    Purely routing-level (no simulation): draws predicates from the mix
    and averages :meth:`RoutingDecision.site_count`.
    """
    relation = make_wisconsin(cardinality, correlation=config.correlation,
                              seed=seed)
    mix = make_mix(config.mix_name, domain=cardinality)
    table: Dict[str, Dict[str, float]] = {}
    for name in config.strategies:
        strategy = build_strategy(name, config, cardinality)
        placement = strategy.partition(relation, num_sites)
        rng = random.Random(seed)
        widths: Dict[str, List[int]] = {}
        for _ in range(samples):
            spec = mix.sample_spec(rng)
            predicate = spec.make_predicate(rng)
            decision = placement.route(predicate)
            widths.setdefault(spec.name, []).append(decision.site_count)
        table[name] = {
            qtype: float(np.mean(values))
            for qtype, values in sorted(widths.items())
        }
        all_widths = [w for values in widths.values() for w in values]
        table[name]["average"] = float(np.mean(all_widths))
    return table


def format_processor_table(config: ExperimentConfig,
                           table: Dict[str, Dict[str, float]]) -> str:
    """Render an :func:`average_processors_table` result."""
    lines = [f"Average processors per query -- {config.describe()}"]
    for strategy, stats in table.items():
        parts = ", ".join(f"{k}={v:.2f}" for k, v in stats.items())
        lines.append(f"  {strategy:14s} {parts}")
    return "\n".join(lines)


def rebalance_worst_case(num_sites: int = 32, cardinality: int = 32_000,
                         grid: int = 32, seed: int = 12) -> Dict[str, float]:
    """The §4 experiment: identical partitioning attribute values.

    Returns the empty-processor counts and load spreads before/after the
    hill-climbing heuristic, mirroring the paper's "12 processors
    containing no tuples ... only a 20% difference" discussion.
    """
    relation = make_wisconsin(cardinality, correlation="identical",
                              seed=seed)
    directory = build_from_shape(relation, [ATTR_A, ATTR_B], (grid, grid))
    directory.set_assignment(
        assign_entries((grid, grid), [5.0, 5.0], num_sites))

    before = directory.tuples_per_site(num_sites)
    swaps = rebalance_assignment(directory, num_sites, max_iterations=500)
    after = directory.tuples_per_site(num_sites)
    mean = float(after.mean()) if after.mean() else 1.0
    return {
        "empty_before": int((before == 0).sum()),
        "empty_after": int((after == 0).sum()),
        "spread_before": int(load_spread(before)),
        "spread_after": int(load_spread(after)),
        "relative_spread_after": float(load_spread(after) / mean),
        "swaps": swaps,
    }
