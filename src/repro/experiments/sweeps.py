"""General parameter sweeps over the simulation model.

Beyond the figure regeneration (fixed Table 2 parameters, MPL on the
x-axis), a systems study wants sensitivity analyses: how does the
comparison move when a hardware or workload parameter changes?
:func:`sweep` runs a (strategy x value) grid over any knob expressible
as a :class:`SweepAxis` and returns a tidy result table.

Built-in axes cover the sweeps the extension benchmarks use:
machine size, QB selectivity, attribute correlation, buffer-pool size
and CPU speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..gamma import GAMMA_PARAMETERS, GammaMachine, RunResult, SimulationParameters
from ..storage import make_wisconsin
from ..workload import make_mix
from .config import ATTR_A, ATTR_B, ExperimentConfig, FIGURES
from .runner import PAPER_INDEXES, build_strategy

__all__ = ["SweepAxis", "SweepPoint", "SweepResult", "sweep",
           "AXES"]


@dataclass(frozen=True)
class SweepAxis:
    """One sweepable knob.

    ``apply(value)`` returns the keyword overrides for
    :func:`run_point`: any of ``params`` (a SimulationParameters),
    ``correlation``, ``qb_low_tuples``, ``num_sites``.
    """

    name: str
    apply: Callable[[float], Dict]
    description: str = ""


def _params_axis(field_name: str, description: str) -> SweepAxis:
    def apply(value):
        return {"params": GAMMA_PARAMETERS.with_overrides(
            **{field_name: value})}
    return SweepAxis(name=field_name, apply=apply, description=description)


AXES: Dict[str, SweepAxis] = {
    "processors": SweepAxis(
        "processors", lambda v: {"num_sites": int(v)},
        "machine size (number of processors)"),
    "qb_selectivity": SweepAxis(
        "qb_selectivity", lambda v: {"qb_low_tuples": int(v)},
        "tuples retrieved by the low QB query (Figure 9 axis)"),
    "correlation": SweepAxis(
        "correlation", lambda v: {"correlation": float(v)},
        "rank correlation of the partitioning attributes"),
    "buffer_pool": SweepAxis(
        "buffer_pool",
        lambda v: {"params": GAMMA_PARAMETERS.with_overrides(
            buffer_pool_pages=(int(v) or None))},
        "explicit buffer pool pages per node (0 = analytic model)"),
    "cpu_mips": _params_axis(
        "cpu_instructions_per_second", "CPU speed in instructions/second"),
}


@dataclass(frozen=True)
class SweepPoint:
    """One (strategy, axis value) measurement."""

    strategy: str
    value: float
    result: RunResult


@dataclass
class SweepResult:
    """All points of one sweep."""

    axis: str
    figure: str
    multiprogramming_level: int
    points: List[SweepPoint] = field(default_factory=list)

    def series(self, strategy: str) -> List[Tuple[float, float]]:
        """(value, throughput) pairs of one strategy, in sweep order."""
        return [(p.value, p.result.throughput)
                for p in self.points if p.strategy == strategy]

    def ratio_series(self, numerator: str,
                     denominator: str) -> List[Tuple[float, float]]:
        """Throughput ratio of two strategies along the axis."""
        num = dict(self.series(numerator))
        den = dict(self.series(denominator))
        return [(v, num[v] / den[v]) for v in num if v in den and den[v]]


def run_point(config: ExperimentConfig, strategy_name: str,
              multiprogramming_level: int,
              cardinality: int = 100_000,
              num_sites: int = 32,
              measured_queries: int = 250,
              correlation: Optional[float] = None,
              qb_low_tuples: int = 10,
              params: SimulationParameters = GAMMA_PARAMETERS,
              seed: int = 13) -> RunResult:
    """One simulation run with arbitrary overrides."""
    corr = correlation if correlation is not None else config.correlation
    relation = make_wisconsin(cardinality, correlation=corr, seed=seed)
    mix = make_mix(config.mix_name, domain=cardinality,
                   qb_low_tuples=qb_low_tuples)
    strategy = build_strategy(strategy_name, config, cardinality, params)
    placement = strategy.partition(relation, num_sites)
    machine = GammaMachine(placement, indexes=PAPER_INDEXES, params=params,
                           seed=seed)
    return machine.run(mix, multiprogramming_level=multiprogramming_level,
                       measured_queries=measured_queries)


def sweep(axis: str, values: Sequence[float],
          figure: str = "8a",
          strategies: Sequence[str] = ("range", "berd", "magic"),
          multiprogramming_level: int = 32,
          cardinality: int = 100_000,
          measured_queries: int = 250,
          seed: int = 13) -> SweepResult:
    """Run a (strategy x value) grid along one named axis."""
    try:
        sweep_axis = AXES[axis]
    except KeyError:
        raise ValueError(
            f"unknown axis {axis!r}; available: {sorted(AXES)}") from None
    config = FIGURES[figure]
    result = SweepResult(axis=axis, figure=figure,
                         multiprogramming_level=multiprogramming_level)
    for value in values:
        overrides = sweep_axis.apply(value)
        for name in strategies:
            run = run_point(config, name,
                            multiprogramming_level=multiprogramming_level,
                            cardinality=cardinality,
                            measured_queries=measured_queries,
                            seed=seed, **overrides)
            result.points.append(SweepPoint(strategy=name, value=value,
                                            result=run))
    return result
