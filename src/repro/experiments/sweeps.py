"""General parameter sweeps over the simulation model.

Beyond the figure regeneration (fixed Table 2 parameters, MPL on the
x-axis), a systems study wants sensitivity analyses: how does the
comparison move when a hardware or workload parameter changes?
:func:`sweep` compiles a (strategy x value) grid over any knob
expressible as a :class:`SweepAxis` into a
:class:`~repro.experiments.plan.RunPlan`, executes it on a serial or
process-pool backend (``jobs``), and returns a tidy result table.

Built-in axes cover the sweeps the extension benchmarks use:
machine size, QB selectivity, attribute correlation, buffer-pool size
and CPU speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..gamma import GAMMA_PARAMETERS, RunResult, SimulationParameters
from .cache import ResultCache
from .config import ExperimentConfig, FIGURES
from .executor import make_executor
from .plan import RunPlan, compile_point, execute_run

__all__ = ["SweepAxis", "SweepPoint", "SweepResult", "sweep",
           "AXES"]


@dataclass(frozen=True)
class SweepAxis:
    """One sweepable knob.

    ``apply(value)`` returns the keyword overrides for
    :func:`run_point`: any of ``params`` (a SimulationParameters),
    ``correlation``, ``qb_low_tuples``, ``num_sites``.
    """

    name: str
    apply: Callable[[float], Dict]
    description: str = ""


def _params_axis(field_name: str, description: str) -> SweepAxis:
    def apply(value):
        return {"params": GAMMA_PARAMETERS.with_overrides(
            **{field_name: value})}
    return SweepAxis(name=field_name, apply=apply, description=description)


AXES: Dict[str, SweepAxis] = {
    "processors": SweepAxis(
        "processors", lambda v: {"num_sites": int(v)},
        "machine size (number of processors)"),
    "num_sites": SweepAxis(
        "num_sites", lambda v: {"num_sites": int(v)},
        "machine size (alias of processors; the scale-up figure axis)"),
    "qb_selectivity": SweepAxis(
        "qb_selectivity", lambda v: {"qb_low_tuples": int(v)},
        "tuples retrieved by the low QB query (Figure 9 axis)"),
    "correlation": SweepAxis(
        "correlation", lambda v: {"correlation": float(v)},
        "rank correlation of the partitioning attributes"),
    "buffer_pool": SweepAxis(
        "buffer_pool",
        lambda v: {"params": GAMMA_PARAMETERS.with_overrides(
            buffer_pool_pages=(int(v) or None))},
        "explicit buffer pool pages per node (0 = analytic model)"),
    "cpu_mips": _params_axis(
        "cpu_instructions_per_second", "CPU speed in instructions/second"),
}


@dataclass(frozen=True)
class SweepPoint:
    """One (strategy, axis value) measurement."""

    strategy: str
    value: float
    result: RunResult


@dataclass
class SweepResult:
    """All points of one sweep."""

    axis: str
    figure: str
    multiprogramming_level: int
    points: List[SweepPoint] = field(default_factory=list)
    #: Aggregate execution accounting (mirrors FigureResult semantics).
    cpu_seconds: float = 0.0
    jobs: int = 1
    executed_runs: int = 0
    cached_runs: int = 0

    def series(self, strategy: str) -> List[Tuple[float, float]]:
        """(value, throughput) pairs of one strategy, in sweep order."""
        return [(p.value, p.result.throughput)
                for p in self.points if p.strategy == strategy]

    def ratio_series(self, numerator: str,
                     denominator: str) -> List[Tuple[float, float]]:
        """Throughput ratio of two strategies along the axis."""
        num = dict(self.series(numerator))
        den = dict(self.series(denominator))
        return [(v, num[v] / den[v]) for v in num if v in den and den[v]]


def run_point(config: ExperimentConfig, strategy_name: str,
              multiprogramming_level: int,
              cardinality: int = 100_000,
              num_sites: int = 32,
              measured_queries: int = 250,
              correlation: Optional[float] = None,
              qb_low_tuples: int = 10,
              params: SimulationParameters = GAMMA_PARAMETERS,
              seed: int = 13) -> RunResult:
    """One simulation run with arbitrary overrides."""
    planned = compile_point(
        config, strategy_name,
        multiprogramming_level=multiprogramming_level,
        cardinality=cardinality, num_sites=num_sites,
        measured_queries=measured_queries, correlation=correlation,
        qb_low_tuples=qb_low_tuples, params=params, seed=seed)
    return execute_run(planned.spec, planned.params, config=config)


def sweep(axis: str, values: Sequence[float],
          figure: str = "8a",
          strategies: Sequence[str] = ("range", "berd", "magic"),
          multiprogramming_level: int = 32,
          cardinality: int = 100_000,
          measured_queries: int = 250,
          seed: int = 13,
          jobs: int = 1,
          cache: Optional[ResultCache] = None) -> SweepResult:
    """Run a (strategy x value) grid along one named axis."""
    try:
        sweep_axis = AXES[axis]
    except KeyError:
        raise ValueError(
            f"unknown axis {axis!r}; available: {sorted(AXES)}") from None
    config = FIGURES[figure]
    labels: List[Tuple[float, str]] = []
    runs = []
    for value in values:
        overrides = sweep_axis.apply(value)
        for name in strategies:
            runs.append(compile_point(
                config, name,
                multiprogramming_level=multiprogramming_level,
                cardinality=cardinality,
                measured_queries=measured_queries,
                seed=seed, **overrides))
            labels.append((value, name))

    executor = make_executor(jobs)
    outcomes = executor.execute(RunPlan(runs=tuple(runs)), cache=cache)

    result = SweepResult(axis=axis, figure=figure,
                         multiprogramming_level=multiprogramming_level,
                         jobs=executor.jobs)
    for (value, name), outcome in zip(labels, outcomes):
        result.points.append(SweepPoint(strategy=name, value=value,
                                        result=outcome.result))
        result.cpu_seconds += outcome.wall_seconds
        if outcome.cached:
            result.cached_runs += 1
        else:
            result.executed_runs += 1
    return result
