"""Command-line entry point: ``repro-experiments``.

Examples::

    repro-experiments --figure 8a                # one figure, full sweep
    repro-experiments --all --quick              # every figure, small runs
    repro-experiments --figure 8a --jobs 4       # grid on 4 worker processes
    repro-experiments --figure 8a --cache runs/cache
                                                 # resumable: re-runs load
                                                 # completed points from disk
    repro-experiments --processors               # §7 processor counts
    repro-experiments --rebalance                # §4 worst-case heuristic
    repro-experiments --explain 8a               # traced re-run: where did
                                                 # each query type's time go?
    repro-experiments --figure 8a --trace --metrics-out runs/8a
                                                 # span/metric artifacts
    repro-experiments --figure 8a --audit        # placement-quality audit
                                                 # report (md + HTML) next
                                                 # to the figure run
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .cache import ResultCache
from .config import FIGURES
from .plot import plot_figure
from .report import (
    average_processors_table,
    format_figure,
    format_processor_table,
    rebalance_worst_case,
)
from .results_io import save_figure_json
from .runner import run_experiment

__all__ = ["main", "build_parser"]

#: Reduced settings for --quick runs (smoke-level fidelity).
QUICK_MPLS = (1, 16, 64)
QUICK_MEASURED = 200


def _mpl_list(text: str):
    """Parse a comma-separated multiprogramming-level list."""
    try:
        values = tuple(int(v) for v in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}")
    if not values or any(v < 1 for v in values):
        raise argparse.ArgumentTypeError(
            f"multiprogramming levels must be >= 1, got {text!r}")
    return values


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of 'A Performance Analysis of "
                    "Alternative Multi-Attribute Declustering Strategies' "
                    "(SIGMOD 1992).")
    parser.add_argument("--figure", choices=sorted(FIGURES),
                        help="regenerate a single figure")
    parser.add_argument("--all", action="store_true",
                        help="regenerate every figure")
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweeps for a fast smoke run")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for figure/sweep/explain "
                             "grids (default: 1 = serial; results are "
                             "bit-identical at any N).  The parent "
                             "prewarms every relation/placement the "
                             "plan needs, then forks a warm pool that "
                             "inherits them copy-on-write")
    parser.add_argument("--start-method",
                        choices=("fork", "spawn", "forkserver"),
                        help="multiprocessing start method for --jobs "
                             "(default: fork where available, which "
                             "shares the prewarmed memos with workers "
                             "for free; spawn/forkserver prewarm once "
                             "per worker instead; results are "
                             "bit-identical across methods)")
    parser.add_argument("--cache", metavar="DIR",
                        help="content-addressed result cache: completed "
                             "(strategy, MPL, seed, ...) points are loaded "
                             "from DIR instead of re-simulated, and new "
                             "points are stored there, so interrupted "
                             "sweeps resume")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache (force fresh simulation)")
    parser.add_argument("--processors", action="store_true",
                        help="print the per-figure average-processor table")
    parser.add_argument("--rebalance", action="store_true",
                        help="run the section-4 rebalancing worst case")
    parser.add_argument("--trace", action="store_true",
                        help="collect telemetry (spans, metrics, "
                             "utilization timelines) during figure runs")
    parser.add_argument("--latency", action="store_true",
                        help="capture per-query-type response-time "
                             "distributions (mergeable quantile "
                             "sketches): p50/p95/p99/max per figure "
                             "point in reports and saved JSON; series "
                             "are bit-identical either way")
    parser.add_argument("--metrics-out", metavar="DIR",
                        help="write spans.jsonl / metrics.jsonl / "
                             "metrics.prom / summary.txt per run into DIR "
                             "(implies --trace)")
    parser.add_argument("--explain", metavar="FIG", choices=sorted(FIGURES),
                        help="re-run one MPL point of FIG with tracing on "
                             "and print the per-query-type resource "
                             "breakdown")
    parser.add_argument("--explain-mpl", type=int, default=64,
                        help="multiprogramming level for --explain "
                             "(default: 64)")
    parser.add_argument("--explain-top-k", type=int, default=5,
                        metavar="K",
                        help="rows per query type in the --explain "
                             "why-table (default: 5)")
    parser.add_argument("--audit", action="store_true",
                        help="run the placement-quality audit after each "
                             "figure: heat maps, skew, M_i slice spread, "
                             "per-query fan-out, rendered as markdown + "
                             "HTML (simulated results are untouched)")
    parser.add_argument("--audit-out", metavar="DIR",
                        help="directory for audit_<figure>.{md,html} "
                             "(default: audit-reports; implies --audit)")
    parser.add_argument("--audit-samples", type=int, default=400,
                        metavar="N",
                        help="sampled predicates per query type in the "
                             "audit (default: 400)")
    parser.add_argument("--progress", choices=("line", "jsonl"),
                        help="live run progress on stderr: 'line' keeps "
                             "one status line (done/total, events/sec, "
                             "cache-aware ETA, worker heartbeats); "
                             "'jsonl' streams one JSON event per line "
                             "for machines")
    parser.add_argument("--no-phases", action="store_true",
                        help="skip wall-clock phase attribution "
                             "(plan-compile / relation-build / "
                             "placement-build / simulate / cache I/O "
                             "seconds recorded into saved results; "
                             "results are bit-identical either way)")
    parser.add_argument("--check-invariants", action="store_true",
                        help="run every simulated point under the "
                             "conservation-law invariant checker (first "
                             "breach aborts with InvariantViolation; "
                             "results are bit-identical either way, but "
                             "cached points are re-simulated so they are "
                             "actually checked)")
    parser.add_argument("--mpls", metavar="M1,M2,...", type=_mpl_list,
                        help="override the multiprogramming levels swept")
    parser.add_argument("--sweep", metavar="AXIS",
                        help="run a parameter sweep (see --sweep-values); "
                             "axes: processors, qb_selectivity, "
                             "correlation, buffer_pool, cpu_mips")
    parser.add_argument("--sweep-values", metavar="V1,V2,...",
                        help="comma-separated axis values for --sweep")
    parser.add_argument("--sweep-figure", default="8a",
                        help="figure config the sweep is based on")
    parser.add_argument("--scaleup", action="store_true",
                        help="run the scale-up experiment: machine sizes "
                             "32..1024 at a fixed MPL, reporting "
                             "throughput, placement-build seconds and DES "
                             "events/sec per size (see docs/scaling.md)")
    parser.add_argument("--scaleup-figure", default="8a",
                        choices=sorted(FIGURES),
                        help="figure config the scale-up run is based on "
                             "(default: 8a)")
    parser.add_argument("--scaleup-sites", metavar="P1,P2,...",
                        type=_mpl_list,
                        help="override the machine sizes swept "
                             "(default: 32,128,512,1024)")
    parser.add_argument("--scaleup-mpl", type=int, default=8,
                        help="multiprogramming level for --scaleup "
                             "(default: 8)")
    parser.add_argument("--dynamics", action="store_true",
                        help="run the dynamics scenarios: per-strategy "
                             "baseline, mid-run site failure (p99 "
                             "degradation), elastic rescale with audit "
                             "before/after, and online-insert churn "
                             "with live MAGIC grid splits (see "
                             "docs/dynamics.md)")
    parser.add_argument("--dynamics-figure", default="8a",
                        choices=sorted(FIGURES),
                        help="figure config the dynamics run is based "
                             "on (default: 8a)")
    parser.add_argument("--dynamics-scenarios", metavar="S1,S2,...",
                        help="comma-separated subset of "
                             "failure,rescale,churn (default: all)")
    parser.add_argument("--dynamics-strategies", metavar="N1,N2,...",
                        help="comma-separated subset of "
                             "range,hash,berd,magic (default: all)")
    parser.add_argument("--dynamics-grow-to", type=int, default=64,
                        help="machine size the rescale scenario grows "
                             "to (default: 64)")
    parser.add_argument("--dynamics-mpl", type=int, default=8,
                        help="multiprogramming level for --dynamics "
                             "(default: 8)")
    parser.add_argument("--report", metavar="DIR",
                        help="render a markdown report from figure_*.json "
                             "files previously saved with --save-json")
    parser.add_argument("--plot", action="store_true",
                        help="also render each figure as an ASCII plot")
    parser.add_argument("--save-json", metavar="DIR",
                        help="save each figure's results as JSON in DIR")
    parser.add_argument("--measured", type=int, default=400,
                        help="measured queries per (strategy, MPL) point")
    parser.add_argument("--cardinality", type=int, default=100_000,
                        help="relation cardinality")
    parser.add_argument("--processors-count", type=int, default=32,
                        dest="num_sites", help="number of processors")
    parser.add_argument("--seed", type=int, default=13)
    return parser


def _cache_from_args(args) -> Optional[ResultCache]:
    if args.no_cache or not args.cache:
        return None
    return ResultCache(args.cache)


def _progress_from_args(args):
    """A ProgressTracker on stderr when --progress was requested."""
    if not args.progress:
        return None
    from ..obs.progress import ProgressTracker
    return ProgressTracker(stream=sys.stderr, mode=args.progress)


def _telemetry_spec(args):
    """The picklable telemetry recipe when --trace/--metrics-out/
    --latency is on.  --latency alone skips spans and timelines (the
    sketches need neither), keeping capture overhead near zero."""
    tracing = bool(args.trace or args.metrics_out)
    latency = bool(getattr(args, "latency", False))
    if not (tracing or latency):
        return None
    from ..obs import TelemetrySpec
    return TelemetrySpec(trace=tracing,
                         timeline_interval=0.5 if tracing else 0.0,
                         latency=latency)


def _export_run_artifacts(out_dir: str, figure: str, telemetries) -> List[str]:
    """Write span/metric artifacts for every traced run; returns notes."""
    import os

    from ..obs import (render_prometheus, why_table, write_metrics_jsonl,
                       write_spans_jsonl)
    os.makedirs(out_dir, exist_ok=True)
    notes = []
    for (strategy, mpl), telemetry in sorted(telemetries.items()):
        if telemetry.spans is None:
            # Latency-only capture: no spans/metrics to export.
            continue
        stem = os.path.join(out_dir, f"{figure}_{strategy}_mpl{mpl}")
        spans = write_spans_jsonl(telemetry.spans, f"{stem}.spans.jsonl")
        write_metrics_jsonl(telemetry.registry, f"{stem}.metrics.jsonl")
        with open(f"{stem}.metrics.prom", "w") as handle:
            handle.write(render_prometheus(telemetry.registry))
        with open(f"{stem}.summary.txt", "w") as handle:
            handle.write(why_table(telemetry.spans))
        notes.append(f"(wrote {stem}.{{spans.jsonl,metrics.jsonl,"
                     f"metrics.prom,summary.txt}}; {spans} spans)")
    return notes


def _execution_note(result) -> str:
    """One line of execution accounting for a figure run."""
    return (f"(wall time {result.wall_seconds:.1f}s, "
            f"sim time {result.cpu_seconds:.1f}s, "
            f"jobs {result.jobs}; "
            f"{result.executed_runs} simulated, "
            f"{result.cached_runs} from cache)")


def _run_figures(names: List[str], args) -> List[str]:
    blocks = []
    if args.mpls:
        mpls = args.mpls
    else:
        mpls = QUICK_MPLS if args.quick else None
    measured = QUICK_MEASURED if args.quick else args.measured
    cache = _cache_from_args(args)
    telemetry_spec = _telemetry_spec(args)
    progress = _progress_from_args(args)
    try:
        return _run_figures_inner(names, args, blocks, mpls, measured,
                                  cache, telemetry_spec, progress)
    finally:
        if progress is not None:
            progress.close()


def _run_figures_inner(names, args, blocks, mpls, measured, cache,
                       telemetry_spec, progress) -> List[str]:
    for name in names:
        config = FIGURES[name]
        result = run_experiment(
            config, cardinality=args.cardinality,
            num_sites=args.num_sites,
            measured_queries=measured, mpls=mpls, seed=args.seed,
            jobs=args.jobs, start_method=args.start_method,
            cache=cache, telemetry_spec=telemetry_spec,
            check_invariants=args.check_invariants,
            progress=progress, collect_phases=not args.no_phases)
        if args.audit or args.audit_out:
            # Post-processing only: the audit reads the finished result
            # (and the plan layer's memoized placements), so the series
            # above are bit-identical with or without it.
            from .audit_report import (audit_payload, build_audit_report,
                                       write_report)
            report = build_audit_report(result, samples=args.audit_samples)
            result.audit = audit_payload(report)
            md_path, html_path = write_report(
                report, args.audit_out or "audit-reports")
            blocks.append(f"(audit: wrote {md_path} and {html_path}; "
                          f"digest {report.digest})")
        blocks.append(format_figure(result))
        if args.metrics_out:
            blocks += _export_run_artifacts(args.metrics_out, name,
                                            result.telemetries)
        if args.plot:
            blocks.append("")
            blocks.append(plot_figure(result))
        if args.save_json:
            import os
            os.makedirs(args.save_json, exist_ok=True)
            path = os.path.join(args.save_json, f"figure_{name}.json")
            save_figure_json(result, path)
            blocks.append(f"(saved {path})")
        blocks.append(_execution_note(result))
        blocks.append("")
    return blocks


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    out: List[str] = []

    did_something = False
    if args.figure:
        out += _run_figures([args.figure], args)
        did_something = True
    if args.all:
        out += _run_figures(sorted(FIGURES), args)
        did_something = True
    if args.processors:
        for name in sorted(FIGURES):
            config = FIGURES[name]
            table = average_processors_table(
                config, cardinality=args.cardinality,
                num_sites=args.num_sites, seed=args.seed)
            out.append(format_processor_table(config, table))
            out.append("")
        did_something = True
    if args.rebalance:
        stats = rebalance_worst_case(num_sites=args.num_sites)
        out.append("Section 4 worst case (identical attribute values):")
        for key, value in stats.items():
            out.append(f"  {key}: {value}")
        did_something = True
    if args.sweep:
        if not args.sweep_values:
            print("--sweep requires --sweep-values", file=sys.stderr)
            return 2
        from .sweeps import sweep
        values = [float(v) for v in args.sweep_values.split(",")]
        result = sweep(args.sweep, values, figure=args.sweep_figure,
                       measured_queries=(QUICK_MEASURED if args.quick
                                         else args.measured),
                       seed=args.seed, jobs=args.jobs,
                       cache=_cache_from_args(args))
        out.append(f"Sweep over {result.axis} (figure {result.figure}, "
                   f"MPL {result.multiprogramming_level}):")
        strategies = sorted({p.strategy for p in result.points})
        header = f"{'value':>12}" + "".join(f"{s:>12}" for s in strategies)
        out.append(header)
        for value in values:
            row = f"{value:12g}"
            series = {s: dict(result.series(s)) for s in strategies}
            for s in strategies:
                row += f"{series[s].get(value, float('nan')):12.1f}"
            out.append(row)
        out.append(f"(jobs {result.jobs}; {result.executed_runs} simulated, "
                   f"{result.cached_runs} from cache)")
        did_something = True
    if args.scaleup:
        from .config import SCALEUP_SITES
        from .scaleup import run_scaleup
        sites = args.scaleup_sites or SCALEUP_SITES

        def note_point(point):
            print(f"  P={point.num_sites:5d} {point.strategy:>6}: "
                  f"build {point.placement_build_seconds:6.2f}s  "
                  f"simulate {point.simulate_seconds:6.2f}s  "
                  f"{point.events_per_sec:9.0f} events/s",
                  file=sys.stderr)

        result = run_scaleup(
            figure=args.scaleup_figure, sites=sites,
            multiprogramming_level=args.scaleup_mpl,
            cardinality=args.cardinality,
            measured_queries=(QUICK_MEASURED if args.quick
                              else args.measured),
            seed=args.seed, check_invariants=args.check_invariants,
            on_point=note_point)
        out.append(f"Scale-up (figure {result.figure}, "
                   f"MPL {result.multiprogramming_level}):")
        strategies = list(result.strategies)
        header = f"{'sites':>8}" + "".join(f"{s:>10}" for s in strategies)
        header += f"{'build(s)':>12}{'events/s':>12}"
        out.append(header)
        for num_sites in result.sites:
            row = f"{num_sites:8d}"
            at_size = [p for p in result.points
                       if p.num_sites == num_sites]
            series = {p.strategy: p.result.throughput for p in at_size}
            for s in strategies:
                row += f"{series.get(s, float('nan')):10.1f}"
            rates = [p.events_per_sec for p in at_size
                     if p.events_per_sec > 0]
            row += (f"{result.placement_build_seconds(num_sites):12.2f}"
                    f"{(sum(rates) / len(rates)) if rates else 0.0:12.0f}")
            out.append(row)
        if args.save_json:
            import json
            import os
            os.makedirs(args.save_json, exist_ok=True)
            path = os.path.join(args.save_json,
                                f"scaleup_{result.figure}.json")
            with open(path, "w") as handle:
                json.dump(result.to_json_dict(), handle, indent=1)
            out.append(f"(saved {path})")
        did_something = True
    if args.dynamics:
        from ..dynamics import run_dynamics
        from .results_io import save_figure_json

        scenarios = (tuple(args.dynamics_scenarios.split(","))
                     if args.dynamics_scenarios else None)
        strategies = (tuple(args.dynamics_strategies.split(","))
                      if args.dynamics_strategies else None)
        result = run_dynamics(
            args.dynamics_figure,
            strategies=strategies, scenarios=scenarios,
            cardinality=(min(args.cardinality, 20_000) if args.quick
                         else args.cardinality),
            num_sites=args.num_sites, grow_to=args.dynamics_grow_to,
            multiprogramming_level=args.dynamics_mpl,
            measured_queries=(QUICK_MEASURED if args.quick
                              else args.measured),
            seed=args.seed, check_invariants=args.check_invariants,
            progress=lambda line: print(f"  {line}", file=sys.stderr))
        dyn = result.dynamics
        out.append(f"Dynamics (figure {dyn['figure']}, "
                   f"{dyn['num_sites']} sites, MPL "
                   f"{dyn['multiprogramming_level']}, scenarios "
                   f"{','.join(dyn['scenarios'])}):")
        header = (f"{'strategy':>10}{'base q/s':>10}{'fail q/s':>10}"
                  f"{'p99 x':>8}{'moved%':>8}{'grow q/s':>10}"
                  f"{'splits':>8}")
        out.append(header)
        for name, payload in dyn["per_strategy"].items():
            base = payload["baseline"]["throughput"]
            row = f"{name:>10}{base:10.1f}"
            failure = payload.get("failure")
            if failure:
                worst = max((d for d in failure["p99_degradation"].values()
                             if d is not None), default=float("nan"))
                row += f"{failure['throughput']:10.1f}{worst:8.2f}"
            else:
                row += f"{'-':>10}{'-':>8}"
            rescale = payload.get("rescale")
            if rescale:
                moved = (100.0 * rescale["report"]["tuples_moved"]
                         / rescale["report"]["total_tuples"])
                row += f"{moved:8.1f}{rescale['throughput_after']:10.1f}"
            else:
                row += f"{'-':>8}{'-':>10}"
            churn = payload.get("churn")
            if churn and churn.get("maintainer"):
                row += f"{churn['maintainer']['splits_performed']:8d}"
            else:
                row += f"{'-':>8}"
            out.append(row)
        if args.save_json:
            import os
            os.makedirs(args.save_json, exist_ok=True)
            path = os.path.join(args.save_json,
                                f"dynamics_{dyn['figure']}.json")
            save_figure_json(result, path)
            out.append(f"(saved {path})")
        did_something = True
    if args.explain:
        from .explain import explain_figure
        explained = explain_figure(
            args.explain, mpl=args.explain_mpl,
            cardinality=args.cardinality, num_sites=args.num_sites,
            measured_queries=(QUICK_MEASURED if args.quick
                              else min(args.measured, 200)),
            seed=args.seed, jobs=args.jobs)
        out.append(explained.render(top_k=args.explain_top_k))
        did_something = True
    if args.report:
        from .markdown import report_from_directory
        out.append(report_from_directory(args.report))
        did_something = True

    if not did_something:
        build_parser().print_help()
        return 2

    print("\n".join(out))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
