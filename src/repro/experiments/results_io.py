"""Persisting and reloading experiment results (JSON and CSV).

Long sweeps are expensive; this module lets the harness save every
:class:`~repro.gamma.metrics.RunResult` of a figure and reload it later
for reporting, plotting or regression comparison, with a round-trip
guarantee tested in the suite.

Format version 2 additionally records how the figure was *executed* --
the executor backend, parallelism level, wall vs. summed simulation
seconds, cache hit counts -- and the content digest of every run's
:class:`~repro.experiments.plan.RunSpec`, so an artifact point can be
matched against the result cache that produced it.  Version-1 files
(pre-plan-layer) still load, with the execution metadata defaulted.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict

from ..gamma.metrics import RunResult
from .config import FIGURES, ExperimentConfig
from .runner import FigureResult

__all__ = [
    "figure_to_dict",
    "figure_from_dict",
    "save_figure_json",
    "load_figure_json",
    "figure_to_csv",
]

#: Format identifier embedded in saved files.
FORMAT_VERSION = 2

#: Older formats :func:`figure_from_dict` still understands.
SUPPORTED_VERSIONS = (1, 2)


def figure_to_dict(result: FigureResult) -> Dict:
    """A JSON-serializable dictionary of one figure's results."""
    payload = {
        "format_version": FORMAT_VERSION,
        "figure": result.config.figure,
        "seed": result.seed,
        "cardinality": result.cardinality,
        "num_sites": result.num_sites,
        "measured_queries": result.measured_queries,
        "wall_seconds": result.wall_seconds,
        "cpu_seconds": result.cpu_seconds,
        "process_cpu_seconds": result.process_cpu_seconds,
        "executor": {
            "name": result.executor,
            "jobs": result.jobs,
            "executed_runs": result.executed_runs,
            "cached_runs": result.cached_runs,
        },
        "spec_digests": {name: list(digests)
                         for name, digests in result.spec_digests.items()},
        "series": {
            name: [run.to_json_dict() for run in runs]
            for name, runs in result.series.items()
        },
    }
    if result.audit is not None:
        payload["audit"] = result.audit
    if result.phases is not None:
        payload["phases"] = result.phases
    if result.latency is not None:
        payload["latency"] = result.latency
    if result.dynamics is not None:
        payload["dynamics"] = result.dynamics
    return payload


def figure_from_dict(payload: Dict) -> FigureResult:
    """Rebuild a :class:`FigureResult` from :func:`figure_to_dict` output.

    The experiment config is resolved by figure name from the registry,
    so loaded results carry their expectations for re-checking.
    """
    version = payload.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported results format {version!r}")
    figure = payload["figure"]
    try:
        config: ExperimentConfig = FIGURES[figure]
    except KeyError:
        raise ValueError(f"unknown figure {figure!r} in results file") \
            from None
    executor = payload.get("executor", {})
    result = FigureResult(
        config=config,
        cardinality=payload["cardinality"],
        num_sites=payload["num_sites"],
        measured_queries=payload["measured_queries"],
        wall_seconds=payload.get("wall_seconds", 0.0),
        cpu_seconds=payload.get("cpu_seconds", 0.0),
        # Absent in files saved before the warm-pool executor; those
        # runs did not measure per-run process CPU.
        process_cpu_seconds=payload.get("process_cpu_seconds", 0.0),
        jobs=executor.get("jobs", 1),
        executor=executor.get("name", "serial"),
        executed_runs=executor.get("executed_runs", 0),
        cached_runs=executor.get("cached_runs", 0),
        spec_digests={name: list(digests)
                      for name, digests
                      in payload.get("spec_digests", {}).items()},
        # Files written before the seed echo existed load as seed 13,
        # the harness-wide default they were in fact produced with.
        seed=payload.get("seed", 13),
        # Optional placement-audit summary+digest (absent unless the
        # figure ran under --audit); kept verbatim so an offline
        # re-report can verify it against a freshly computed audit.
        audit=payload.get("audit"),
        # Optional wall-clock phase attribution (absent in files saved
        # before the observability layer, or with phases off); kept
        # verbatim for repro-trace and offline reporting.
        phases=payload.get("phases"),
        # Optional response-time distributions (absent in files saved
        # before the latency observatory, or with capture off); the
        # embedded sketches let repro-latency re-derive any quantile.
        latency=payload.get("latency"),
        # Optional dynamics-scenario payload (absent in every static
        # figure file; present only for --dynamics runs); carries the
        # fault seed and fault plan so a degradation curve is
        # replayable from the artifact alone.
        dynamics=payload.get("dynamics"))
    for name, runs in payload["series"].items():
        result.series[name] = [RunResult.from_json_dict(run)
                               for run in runs]
    return result


def save_figure_json(result: FigureResult, path: str) -> None:
    """Write one figure's results to *path* as JSON."""
    with open(path, "w") as handle:
        json.dump(figure_to_dict(result), handle, indent=2, sort_keys=True)


def load_figure_json(path: str) -> FigureResult:
    """Load a figure saved by :func:`save_figure_json`."""
    with open(path) as handle:
        return figure_from_dict(json.load(handle))


def figure_to_csv(result: FigureResult) -> str:
    """Flatten one figure's series to CSV (one row per strategy x MPL)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([
        "figure", "strategy", "mpl", "throughput_qps",
        "response_time_ms", "cpu_utilization", "disk_utilization",
        "scheduler_cpu_utilization", "completed", "messages_sent",
    ])
    for strategy, runs in result.series.items():
        for run in runs:
            writer.writerow([
                result.config.figure, strategy,
                run.multiprogramming_level,
                f"{run.throughput:.3f}",
                f"{run.response_time_mean * 1000:.2f}",
                f"{run.cpu_utilization:.4f}",
                f"{run.disk_utilization:.4f}",
                f"{run.scheduler_cpu_utilization:.4f}",
                run.completed, run.messages_sent,
            ])
    return buffer.getvalue()
