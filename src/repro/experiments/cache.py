"""A content-addressed, resumable on-disk store of run results.

Long sweeps are embarrassingly parallel grids of independent
simulations; when one is interrupted, everything already computed
should survive.  :class:`ResultCache` stores one JSON file per
completed :class:`~repro.experiments.plan.RunSpec`, addressed by the
spec's content digest, so a re-run of the same plan (``--cache DIR``)
loads finished points instead of simulating them -- regardless of which
executor, process or session produced them.

The layout is two-level (``DIR/ab/abcdef....json``) to keep directory
fan-out sane for multi-thousand-point sweeps, writes are atomic
(temp file + :func:`os.replace`) so a killed run never leaves a
half-written entry, and every entry embeds the full spec it was keyed
by: a digest collision or hand-edited file is detected on read, not
silently returned.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict
from typing import Dict, Optional

from ..gamma.metrics import RunResult
from .plan import RunSpec

__all__ = ["ResultCache", "CACHE_FORMAT_VERSION"]

#: Format identifier embedded in every cache entry.
CACHE_FORMAT_VERSION = 1


class ResultCache:
    """One directory of content-addressed run results."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        #: Lookups satisfied from disk since this object was created.
        self.hits = 0
        #: Lookups that found no (valid) entry.
        self.misses = 0

    # -- addressing --------------------------------------------------------

    def path_for(self, spec: RunSpec) -> str:
        digest = spec.digest()
        return os.path.join(self.root, digest[:2], f"{digest}.json")

    # -- store / load ------------------------------------------------------

    def get(self, spec: RunSpec) -> Optional[RunResult]:
        """The cached result of *spec*, or None.

        Corrupt or mismatched entries (truncated writes from an older
        crash, digest collisions, format changes) count as misses.
        """
        path = self.path_for(spec)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if (payload.get("cache_format") != CACHE_FORMAT_VERSION
                or payload.get("spec") != _spec_dict(spec)):
            self.misses += 1
            return None
        try:
            result = RunResult.from_json_dict(payload["result"])
        except (KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: RunSpec, result: RunResult,
            executor: str = "serial", jobs: int = 1) -> str:
        """Store *result* under *spec*'s digest; returns the entry path."""
        path = self.path_for(spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {
            "cache_format": CACHE_FORMAT_VERSION,
            "spec_digest": spec.digest(),
            "spec": _spec_dict(spec),
            "executor": {"name": executor, "jobs": jobs},
            "result": result.to_json_dict(),
        }
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    def __contains__(self, spec: RunSpec) -> bool:
        return os.path.exists(self.path_for(spec))

    def __len__(self) -> int:
        total = 0
        for _, _, files in os.walk(self.root):
            total += sum(1 for name in files if name.endswith(".json"))
        return total


def _spec_dict(spec: RunSpec) -> Dict:
    """The spec as it appears in a JSON entry (round-trips via json)."""
    return json.loads(json.dumps(asdict(spec)))
