"""Command-line entry point: ``repro-audit``.

Renders placement-quality audit reports *offline* -- from figure JSON
artifacts previously saved with ``repro-experiments --save-json``, or
statically from a figure configuration -- without running a single
simulated query.  Examples::

    repro-audit runs/figure_8a.json             # audit a cached run
    repro-audit runs/*.json --out reports       # batch, custom directory
    repro-audit --figure 8a                     # static audit, no run
    repro-audit --figure 8a --processors-count 32 --samples 1000
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .audit_report import build_audit_report, build_static_report, write_report
from .config import FIGURES
from .results_io import load_figure_json

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-audit",
        description="Placement-quality audit reports (heat maps, skew, "
                    "M_i slice spread, per-query fan-out) for the "
                    "declustering strategies, rendered as markdown + "
                    "self-contained HTML without any simulation.")
    parser.add_argument("results", nargs="*", metavar="RESULTS.json",
                        help="figure artifacts saved with "
                             "'repro-experiments --save-json'")
    parser.add_argument("--figure", choices=sorted(FIGURES),
                        help="audit a figure's placements statically, "
                             "without a saved run")
    parser.add_argument("--out", metavar="DIR", default="audit-reports",
                        help="directory for audit_<figure>.{md,html} "
                             "(default: audit-reports)")
    parser.add_argument("--samples", type=int, default=400,
                        help="sampled predicates per query type "
                             "(default: 400)")
    parser.add_argument("--no-sensitivity", action="store_true",
                        help="skip the low/high correlation-sensitivity "
                             "re-audit (faster: avoids building the "
                             "placements for the other correlation)")
    parser.add_argument("--cardinality", type=int, default=100_000,
                        help="relation cardinality for --figure "
                             "(default: 100000)")
    parser.add_argument("--processors-count", type=int, default=32,
                        dest="num_sites",
                        help="processor count for --figure (default: 32)")
    parser.add_argument("--seed", type=int, default=13,
                        help="seed for --figure static audits "
                             "(default: 13)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if not args.results and not args.figure:
        build_parser().print_help()
        return 2
    sensitivity = not args.no_sensitivity
    for path in args.results:
        result = load_figure_json(path)
        report = build_audit_report(result, samples=args.samples,
                                    sensitivity=sensitivity)
        md_path, html_path = write_report(report, args.out)
        print(f"audited {path}: wrote {md_path} and {html_path}")
    if args.figure:
        report = build_static_report(
            FIGURES[args.figure], cardinality=args.cardinality,
            num_sites=args.num_sites, seed=args.seed,
            samples=args.samples, sensitivity=sensitivity)
        md_path, html_path = write_report(report, args.out)
        print(f"audited figure {args.figure} statically: "
              f"wrote {md_path} and {html_path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
