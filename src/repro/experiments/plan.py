"""The declarative run-plan layer every experiment entry point compiles into.

Figures (:func:`~repro.experiments.runner.run_experiment`), parameter
sweeps (:func:`~repro.experiments.sweeps.sweep`) and ``--explain`` used
to carry three divergent copies of the same strategy-build /
relation-build / machine-run loop, all strictly serial.  This module
replaces them with one vocabulary:

* :class:`RunSpec` -- a frozen, hashable description of exactly one
  simulation point: (figure, strategy, cardinality, correlation,
  machine size, MPL, seed, workload knobs, parameter fingerprint).
  Its :meth:`~RunSpec.digest` content-addresses the run for the result
  cache, and every seed used during execution derives from the spec --
  never from executor or worker state -- which is what makes
  ``--jobs N`` bit-identical to a serial run.
* :class:`RunPlan` -- an ordered tuple of :class:`PlannedRun` (spec +
  the concrete :class:`~repro.gamma.params.SimulationParameters` it
  fingerprints), produced by :func:`compile_figure` /
  :func:`compile_point` and consumed by
  :mod:`~repro.experiments.executor`.
* :func:`execute_run` -- the one place a spec becomes a simulation.
  Relations and placements are memoized per process, keyed by
  ``(cardinality, correlation, seed)`` and ``(strategy, num_sites, ...)``
  respectively, so a 5-strategy x 7-MPL figure builds each placement
  once per worker instead of 35 times.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core import (
    BerdStrategy,
    HashStrategy,
    MagicStrategy,
    MagicTuning,
    Placement,
    RangeStrategy,
)
from ..gamma import GAMMA_PARAMETERS, GammaMachine, RunResult, SimulationParameters
from ..obs import Telemetry, phases
from ..storage import make_wisconsin
from ..workload import cost_model_for_mix, make_mix
from .config import ATTR_A, ATTR_B, ExperimentConfig, FIGURES

__all__ = [
    "RunSpec",
    "PlannedRun",
    "RunPlan",
    "PAPER_INDEXES",
    "params_fingerprint",
    "build_strategy",
    "compile_figure",
    "compile_point",
    "execute_run",
    "placement_for_spec",
    "prewarm",
    "clear_memos",
]

#: Indexes of §6: non-clustered on A, clustered on B.
PAPER_INDEXES = {ATTR_A: False, ATTR_B: True}


def params_fingerprint(params: SimulationParameters) -> str:
    """A stable content digest of a full simulation-parameter set.

    Two parameter objects with equal field values fingerprint
    identically across processes and sessions, so cached results keyed
    by a :class:`RunSpec` survive restarts but never alias a run made
    under different Table 2 knobs.
    """
    payload = json.dumps(asdict(params), sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


#: Fingerprint of the unmodified Table 2 configuration.
DEFAULT_PARAMS_DIGEST = params_fingerprint(GAMMA_PARAMETERS)


@dataclass(frozen=True)
class RunSpec:
    """Everything identifying one (strategy, workload, MPL) simulation.

    The spec is the *only* input :func:`execute_run` consults besides
    the concrete parameter object it fingerprints, which is what lets
    serial and parallel executors produce bit-identical results: a
    worker reconstructs relation, placement and machine from the spec
    alone, with no ordering- or process-dependent state.
    """

    figure: str
    strategy: str
    cardinality: int
    correlation: Union[str, float]
    num_sites: int
    multiprogramming_level: int
    measured_queries: int
    seed: int
    mix_name: str
    qb_low_tuples: int = 10
    params_digest: str = DEFAULT_PARAMS_DIGEST

    def digest(self) -> str:
        """Content address of this run (cache key, artifact metadata)."""
        payload = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    @property
    def machine_seed(self) -> int:
        """Root seed for the simulated machine, derived from the spec.

        Workers must never seed from pool or process state; routing the
        seed through the spec is the determinism guarantee ``--jobs``
        relies on.
        """
        return self.seed

    def relation_key(self) -> Tuple:
        """Memo key for the benchmark relation this run scans."""
        return (self.cardinality, self.correlation, self.seed)

    def placement_key(self) -> Tuple:
        """Memo key for the declustered placement this run loads."""
        return (self.figure, self.strategy, self.num_sites,
                self.mix_name, self.params_digest) + self.relation_key()


@dataclass(frozen=True)
class PlannedRun:
    """One spec paired with the concrete parameters it fingerprints."""

    spec: RunSpec
    params: SimulationParameters = GAMMA_PARAMETERS


@dataclass(frozen=True)
class RunPlan:
    """An ordered batch of planned runs (one figure, sweep, or explain)."""

    runs: Tuple[PlannedRun, ...]

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self):
        return iter(self.runs)

    def specs(self) -> List[RunSpec]:
        return [run.spec for run in self.runs]

    def digests(self) -> List[str]:
        return [run.spec.digest() for run in self.runs]


def build_strategy(name: str, config: ExperimentConfig,
                   cardinality: int,
                   params: SimulationParameters = GAMMA_PARAMETERS):
    """Instantiate a declustering strategy by experiment name.

    ``magic`` pins the paper-reported directory shape and M_i values;
    ``magic-derived`` lets the cost model (fed by the analytic workload
    profiles) choose everything, the fully self-contained pipeline.
    """
    if name == "range":
        return RangeStrategy(ATTR_A)
    if name == "hash":
        return HashStrategy(ATTR_A)
    if name == "berd":
        return BerdStrategy(ATTR_A, [ATTR_B])
    if name == "magic":
        return MagicStrategy(
            [ATTR_A, ATTR_B],
            tuning=MagicTuning(shape=dict(config.magic_shape),
                               mi=dict(config.magic_mi)))
    if name == "magic-derived":
        mix = make_mix(config.mix_name, domain=cardinality)
        model = cost_model_for_mix(mix, params, cardinality)
        return MagicStrategy([ATTR_A, ATTR_B], cost_model=model)
    raise ValueError(f"unknown strategy {name!r}")


# -- compilation -----------------------------------------------------------

def compile_point(config: ExperimentConfig, strategy: str,
                  multiprogramming_level: int,
                  cardinality: int = 100_000,
                  num_sites: int = 32,
                  measured_queries: int = 250,
                  correlation: Optional[Union[str, float]] = None,
                  qb_low_tuples: int = 10,
                  params: SimulationParameters = GAMMA_PARAMETERS,
                  seed: int = 13) -> PlannedRun:
    """Compile one simulation point with arbitrary overrides.

    The override surface matches what sweep axes produce: ``params``,
    ``correlation``, ``qb_low_tuples`` and ``num_sites``.
    """
    corr = correlation if correlation is not None else config.correlation
    spec = RunSpec(
        figure=config.figure,
        strategy=strategy,
        cardinality=cardinality,
        correlation=corr,
        num_sites=num_sites,
        multiprogramming_level=multiprogramming_level,
        measured_queries=measured_queries,
        seed=seed,
        mix_name=config.mix_name,
        qb_low_tuples=qb_low_tuples,
        params_digest=params_fingerprint(params))
    return PlannedRun(spec=spec, params=params)


def compile_figure(config: ExperimentConfig,
                   cardinality: int = 100_000,
                   num_sites: int = 32,
                   measured_queries: int = 400,
                   mpls: Optional[Sequence[int]] = None,
                   seed: int = 13,
                   params: SimulationParameters = GAMMA_PARAMETERS,
                   strategies: Optional[Sequence[str]] = None) -> RunPlan:
    """Compile one figure's (strategy x MPL) grid into a plan.

    Runs are ordered strategy-major, MPL-minor -- the order the serial
    harness has always executed and reported them in.
    """
    mpls = tuple(mpls if mpls is not None else config.mpls)
    strategies = tuple(strategies if strategies is not None
                       else config.strategies)
    runs = [
        compile_point(config, name, multiprogramming_level=mpl,
                      cardinality=cardinality, num_sites=num_sites,
                      measured_queries=measured_queries, params=params,
                      seed=seed)
        for name in strategies for mpl in mpls
    ]
    return RunPlan(runs=tuple(runs))


# -- execution -------------------------------------------------------------

#: Per-process memo caps; small because entries hold full relations.
_MAX_RELATIONS = 8
_MAX_PLACEMENTS = 64

_relation_memo: Dict[Tuple, object] = {}
_placement_memo: Dict[Tuple, Placement] = {}


def clear_memos() -> None:
    """Drop the per-process relation/placement memos (tests, workers)."""
    _relation_memo.clear()
    _placement_memo.clear()


def _evict_oldest(memo: Dict, cap: int) -> None:
    """Make room for one more entry by dropping the oldest-inserted.

    Python dicts iterate in insertion order, so ``next(iter(memo))`` is
    the entry that has been resident longest.  Clearing the whole dict
    here (the previous behavior) made a sweep that cycles through
    ``cap + 1`` keys rebuild *every* entry on *every* lap; FIFO
    eviction keeps the ``cap - 1`` most recent entries live.
    """
    while len(memo) >= cap:
        memo.pop(next(iter(memo)))


def _relation_for(spec: RunSpec):
    key = spec.relation_key()
    relation = _relation_memo.get(key)
    if relation is None:
        _evict_oldest(_relation_memo, _MAX_RELATIONS)
        # Memo hits deliberately record no phase: a 0-cost lookup would
        # only pad the relation-build entry count with noise.
        with phases.phase("relation-build"):
            relation = make_wisconsin(spec.cardinality,
                                      correlation=spec.correlation,
                                      seed=spec.seed)
        _relation_memo[key] = relation
    return relation


def _placement_for(spec: RunSpec, params: SimulationParameters,
                   config: Optional[ExperimentConfig] = None) -> Placement:
    key = spec.placement_key()
    placement = _placement_memo.get(key)
    if placement is None:
        _evict_oldest(_placement_memo, _MAX_PLACEMENTS)
        if config is None:
            config = FIGURES[spec.figure]
        relation = _relation_for(spec)
        with phases.phase("placement-build"):
            strategy = build_strategy(spec.strategy, config,
                                      spec.cardinality, params)
            placement = strategy.partition(relation, spec.num_sites)
        _placement_memo[key] = placement
    return placement


def placement_for_spec(spec: RunSpec,
                       params: SimulationParameters = GAMMA_PARAMETERS,
                       config: Optional[ExperimentConfig] = None
                       ) -> Placement:
    """The declustered placement a spec's run loads -- no simulation.

    Shares the per-process memo with :func:`execute_run`; since
    :meth:`RunSpec.placement_key` excludes the multiprogramming level,
    auditing a figure that just ran in this process reuses its
    placements for free.  The static audit layer goes through here so
    re-reporting a cached run never touches the machine model.
    """
    return _placement_for(spec, params, config)


def prewarm(runs, strict: bool = True) -> Dict[str, int]:
    """Build every distinct relation/placement *runs* will need, once.

    *runs* is a :class:`RunPlan` or any iterable of
    :class:`PlannedRun`.  Specs are de-duplicated by
    :meth:`RunSpec.relation_key` / :meth:`RunSpec.placement_key` (the
    first planned run per key is the representative), and each missing
    memo entry is built here -- with the usual ``relation-build`` /
    ``placement-build`` phase attribution -- instead of lazily inside
    :func:`execute_run`.

    This is the warm half of the parallel executor's fork-shared pool:
    the parent prewarms before forking workers, so every worker
    inherits the populated memos copy-on-write and pays zero rebuild
    cost per task.  Spawn-start pools call it from the per-worker
    initializer instead (once per process, not once per task).

    With ``strict=False`` individual build failures are swallowed and
    counted: prewarming is an optimization, and a spec that cannot
    build is left to fail inside a worker, where the failure is wrapped
    with full spec/traceback context.

    Returns counters: relations/placements built here, memo hits
    skipped, and (non-strict only) builds that errored.
    """
    stats = {"relations_built": 0, "relations_hit": 0,
             "placements_built": 0, "placements_hit": 0, "errors": 0}
    seen_placements = set()
    for planned in runs:
        spec = planned.spec
        key = spec.placement_key()
        if key in seen_placements:
            continue
        seen_placements.add(key)
        relation_hit = spec.relation_key() in _relation_memo
        placement_hit = key in _placement_memo
        try:
            # _placement_for builds the relation on the way when needed,
            # so one call covers both memos.
            _placement_for(spec, planned.params)
        except Exception:
            if strict:
                raise
            stats["errors"] += 1
            continue
        stats["relations_hit" if relation_hit else "relations_built"] += 1
        stats["placements_hit" if placement_hit else "placements_built"] += 1
    return stats


def execute_run(spec: RunSpec,
                params: SimulationParameters = GAMMA_PARAMETERS,
                telemetry: Optional[Telemetry] = None,
                config: Optional[ExperimentConfig] = None,
                check_invariants: bool = False) -> RunResult:
    """Run one spec on a freshly built machine and return its result.

    Deterministic given (spec, params): the relation, placement and
    machine seeds all derive from spec fields, so any executor -- or any
    process -- produces the same :class:`~repro.gamma.metrics.RunResult`.
    ``config`` is only needed for experiment configs not registered in
    :data:`FIGURES` (the spec's ``figure`` resolves registered ones).
    ``check_invariants`` runs the simulation under a
    :class:`~repro.validation.InvariantChecker` (conservation laws
    enforced, first breach raises); the flag is deliberately NOT part of
    the spec -- results and digests are bit-identical either way.
    """
    placement = _placement_for(spec, params, config)
    mix = make_mix(spec.mix_name, domain=spec.cardinality,
                   qb_low_tuples=spec.qb_low_tuples)
    invariants = None
    if check_invariants:
        # Imported here, not at module scope: the validation package's
        # trend layer consumes this module, so a top-level import would
        # be circular.
        from ..validation.invariants import InvariantChecker
        invariants = InvariantChecker()
    machine = GammaMachine(placement, indexes=PAPER_INDEXES, params=params,
                           seed=spec.machine_seed, telemetry=telemetry,
                           invariants=invariants)
    with phases.phase("simulate"):
        result = machine.run(
            mix, multiprogramming_level=spec.multiprogramming_level,
            measured_queries=spec.measured_queries)
        # Wall-clock attribution reads the machine, never steers it:
        # these counters feed the progress line's events/sec figure.
        phases.annotate(events=machine.env.events_scheduled,
                        sim_seconds=machine.env.now)
    return result
