"""Command-line entry point: ``repro-profile``.

Profiles one simulated figure point under :mod:`cProfile` and prints
the top functions, so kernel and model hot spots are visible without
hand-rolling a harness.  The workload is the same single-point
simulation the throughput benchmark times: one strategy at one
multiprogramming level of the figure-8a query mix, with relation
generation and placement construction excluded from the profile.
Examples::

    repro-profile                                # range @ mpl 16
    repro-profile --strategy magic --mpl 64
    repro-profile --sort cumulative --top 40
    repro-profile --json profile.json            # machine-readable dump
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys
import time
from typing import List, Optional

from .config import FIGURES
from .plan import (
    GAMMA_PARAMETERS,
    PAPER_INDEXES,
    compile_point,
    make_mix,
    placement_for_spec,
)

__all__ = ["main", "build_parser", "profile_point"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-profile",
        description="cProfile one simulated figure point (the workload "
                    "the DES throughput benchmark times) and print the "
                    "hottest functions.")
    parser.add_argument("--figure", choices=sorted(FIGURES), default="8a",
                        help="figure configuration (default: 8a)")
    parser.add_argument("--strategy", default="range",
                        help="declustering strategy (default: range)")
    parser.add_argument("--mpl", type=int, default=16,
                        help="multiprogramming level (default: 16)")
    parser.add_argument("--cardinality", type=int, default=100_000,
                        help="relation cardinality (default: 100000)")
    parser.add_argument("--processors-count", type=int, default=32,
                        dest="num_sites",
                        help="processor count (default: 32)")
    parser.add_argument("--measured", type=int, default=100,
                        help="measured queries (default: 100)")
    parser.add_argument("--seed", type=int, default=13,
                        help="workload seed (default: 13)")
    parser.add_argument("--top", type=int, default=25,
                        help="rows to print per table (default: 25)")
    parser.add_argument("--sort", choices=["tottime", "cumulative"],
                        default="tottime",
                        help="stat the table is ordered by "
                             "(default: tottime)")
    parser.add_argument("--json", metavar="PATH",
                        help="also dump the rows (plus run metadata) "
                             "as JSON; '-' for stdout")
    return parser


def profile_point(figure: str, strategy: str, mpl: int, cardinality: int,
                  num_sites: int, measured: int, seed: int):
    """Run one point under cProfile; returns ``(stats, result, wall)``.

    ``wall`` is the profiled run's total wall-clock seconds -- the
    denominator that puts per-function tottime in context.
    """
    from ..gamma.machine import GammaMachine

    spec = compile_point(
        FIGURES[figure], strategy, multiprogramming_level=mpl,
        cardinality=cardinality, num_sites=num_sites,
        measured_queries=measured, seed=seed).spec
    # Built outside the profile: the simulation is the subject, not the
    # NumPy relation/placement construction.
    placement = placement_for_spec(spec)
    mix = make_mix(spec.mix_name, domain=spec.cardinality,
                   qb_low_tuples=spec.qb_low_tuples)
    machine = GammaMachine(placement, indexes=PAPER_INDEXES,
                           params=GAMMA_PARAMETERS, seed=spec.machine_seed)
    # The confidence-interval code lazily imports scipy inside run();
    # pull it in now so a one-time import doesn't dominate the profile.
    try:
        import scipy.stats  # noqa: F401
    except ImportError:  # pragma: no cover - scipy is optional there
        pass
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    result = machine.run(mix, multiprogramming_level=mpl,
                         measured_queries=measured)
    profiler.disable()
    wall = time.perf_counter() - started
    return pstats.Stats(profiler), result, wall


def _rows(stats: pstats.Stats, sort: str, top: int):
    """The top *top* rows of *stats* ordered by *sort*, as dicts."""
    # The CLI speaks pstats vocabulary ("cumulative"); the row dicts
    # carry the stat-tuple field name ("cumtime").
    sort_key = "cumtime" if sort == "cumulative" else sort
    items = []
    for (filename, lineno, name), (cc, nc, tottime, cumtime, _callers) \
            in stats.stats.items():
        items.append({
            "function": name,
            "location": f"{filename}:{lineno}",
            "calls": nc,
            "primitive_calls": cc,
            "tottime": tottime,
            "cumtime": cumtime,
        })
    items.sort(key=lambda row: row[sort_key], reverse=True)
    return items[:top]


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    stats, result, wall = profile_point(
        args.figure, args.strategy, args.mpl, args.cardinality,
        args.num_sites, args.measured, args.seed)
    rows = _rows(stats, args.sort, args.top)

    header = (f"figure {args.figure}, strategy {args.strategy}, "
              f"mpl {args.mpl}, {args.measured} measured queries "
              f"(throughput {result.throughput:.2f} q/s, "
              f"wall {wall:.2f}s)")
    print(header)
    print(f"top {len(rows)} by {args.sort}:")
    print(f"{'calls':>9}  {'tottime':>9}  {'cumtime':>9}  function")
    for row in rows:
        print(f"{row['calls']:>9}  {row['tottime']:>9.4f}  "
              f"{row['cumtime']:>9.4f}  {row['function']}  "
              f"[{row['location']}]")

    if args.json:
        payload = {
            "figure": args.figure,
            "strategy": args.strategy,
            "multiprogramming_level": args.mpl,
            "cardinality": args.cardinality,
            "num_sites": args.num_sites,
            "measured_queries": args.measured,
            "seed": args.seed,
            "sort": args.sort,
            "throughput": result.throughput,
            "wall_seconds": wall,
            "rows": rows,
        }
        if args.json == "-":
            json.dump(payload, sys.stdout, indent=2)
            sys.stdout.write("\n")
        else:
            with open(args.json, "w") as handle:
                json.dump(payload, handle, indent=2)
            print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
