"""Experiment harness: regenerate every table and figure of the paper.

* :mod:`~repro.experiments.config` -- one :class:`ExperimentConfig` per
  figure (8a/8b, 9, 10a/10b, 11a/11b, 12a/12b) with the paper's
  directory shapes and expected outcomes;
* :mod:`~repro.experiments.plan` -- the declarative job layer: frozen
  :class:`RunSpec` points, :class:`RunPlan` batches, and the one
  :func:`execute_run` every entry point funnels through;
* :mod:`~repro.experiments.executor` -- serial and process-pool plan
  executors (``--jobs N``, bit-identical to serial);
* :mod:`~repro.experiments.cache` -- the content-addressed result
  cache that makes interrupted sweeps resumable (``--cache DIR``);
* :mod:`~repro.experiments.runner` -- strategy x mix x correlation x MPL
  figure sweeps on the Gamma machine model;
* :mod:`~repro.experiments.report` -- text tables, §7 processor-count
  numbers, the §4 rebalancing worst case;
* :mod:`~repro.experiments.audit_report` -- placement-quality audit
  reports (markdown + self-contained HTML) fusing the static
  :mod:`repro.obs.audit` metrics with runtime telemetry;
* :mod:`~repro.experiments.cli` -- the ``repro-experiments`` command;
* :mod:`~repro.experiments.audit_cli` -- the offline ``repro-audit``
  command (cached results in, reports out, zero simulation).
"""

from .markdown import (
    figure_section,
    report_from_directory,
    scoreboard_row,
    series_table,
)
from .plot import ascii_plot, plot_figure
from .results_io import (
    figure_from_dict,
    figure_to_csv,
    figure_to_dict,
    load_figure_json,
    save_figure_json,
)
from .cache import ResultCache
from .config import (ATTR_A, ATTR_B, DEFAULT_MPLS, SCALEUP_SITES,
                     ExperimentConfig, FIGURES)
from .executor import (
    ExecutionOutcome,
    ParallelExecutor,
    SerialExecutor,
    WorkerCrash,
    default_start_method,
    make_executor,
)
from .plan import (
    PAPER_INDEXES,
    PlannedRun,
    RunPlan,
    RunSpec,
    build_strategy,
    compile_figure,
    compile_point,
    execute_run,
    params_fingerprint,
    prewarm,
)
from .report import (
    average_processors_table,
    format_figure,
    format_processor_table,
    rebalance_worst_case,
)
from .sweeps import AXES, SweepAxis, SweepPoint, SweepResult, sweep
from .audit_report import (
    AuditReport,
    audit_payload,
    build_audit_report,
    build_static_report,
    render_html,
    render_markdown,
    write_report,
)
from .explain import ExplainResult, explain_figure
from .scaleup import ScaleupPoint, ScaleupResult, run_scaleup
from .runner import (
    FigureResult,
    TelemetryFactory,
    check_expectation,
    run_experiment,
)

__all__ = [
    "ExperimentConfig",
    "FIGURES",
    "DEFAULT_MPLS",
    "SCALEUP_SITES",
    "ATTR_A",
    "ATTR_B",
    "ScaleupPoint",
    "ScaleupResult",
    "run_scaleup",
    "RunSpec",
    "PlannedRun",
    "RunPlan",
    "compile_figure",
    "compile_point",
    "execute_run",
    "params_fingerprint",
    "SerialExecutor",
    "ParallelExecutor",
    "ExecutionOutcome",
    "WorkerCrash",
    "default_start_method",
    "make_executor",
    "prewarm",
    "ResultCache",
    "FigureResult",
    "PAPER_INDEXES",
    "build_strategy",
    "run_experiment",
    "check_expectation",
    "format_figure",
    "average_processors_table",
    "format_processor_table",
    "rebalance_worst_case",
    "ascii_plot",
    "plot_figure",
    "figure_to_dict",
    "figure_from_dict",
    "save_figure_json",
    "load_figure_json",
    "figure_to_csv",
    "sweep",
    "SweepAxis",
    "SweepPoint",
    "SweepResult",
    "AXES",
    "scoreboard_row",
    "series_table",
    "figure_section",
    "report_from_directory",
    "ExplainResult",
    "explain_figure",
    "TelemetryFactory",
    "AuditReport",
    "build_audit_report",
    "build_static_report",
    "audit_payload",
    "render_markdown",
    "render_html",
    "write_report",
]
