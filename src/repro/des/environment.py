"""The discrete-event simulation environment (event loop and clock).

:class:`Environment` owns the simulation clock and the agenda (a priority
queue of triggered events ordered by firing time).  It is deliberately
minimal -- the entire Gamma machine model in :mod:`repro.gamma` is built
from processes and resources running inside one environment.

Determinism
-----------
Two events scheduled for the same instant are processed in the order they
were scheduled (FIFO tie-break via a monotonically increasing sequence
number), with an optional integer *priority* that lets urgent work (e.g.
the disk DMA transfers of the paper's CPU model) jump ahead of same-time
normal events.  Given the same seed for workload randomness, a simulation
run is exactly reproducible.

Agenda representation
---------------------
The agenda holds two kinds of heap entries, discriminated by length:

* ``(time, priority, seq, event)`` -- a triggered :class:`Event` whose
  callbacks run when the entry is popped;
* ``(time, priority, seq, callback, argument)`` -- an *immediate
  dispatch* scheduled via :meth:`Environment._dispatch`: ``callback``
  is invoked with ``argument`` directly, with no event object in
  between.  Process bootstraps, interrupts and late callback
  registrations use this path; it exists purely to avoid allocating
  proxy events on the hot path.

Both entry kinds share the same ``(time, priority, seq)`` ordering key,
and ``seq`` is unique, so mixed entries never compare beyond the key and
the processing order is identical to a proxy-event design.  The run
loops in :meth:`Environment.run` inline the body of :meth:`step` with
the agenda and ``heappop`` bound locally -- worth ~10% of the event loop
on its own; :meth:`step` remains the single-event public API.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, List, Optional, Tuple

from .events import (
    NORMAL,
    URGENT,
    AgendaEmptyError,
    AllOf,
    AnyOf,
    Event,
    Process,
    SimulationError,
    Timeout,
)

__all__ = ["Environment", "URGENT", "NORMAL"]


class Environment:
    """A discrete-event simulation environment.

    Example
    -------
    >>> env = Environment()
    >>> def clock(env, results):
    ...     while env.now < 3:
    ...         results.append(env.now)
    ...         yield env.timeout(1)
    >>> ticks = []
    >>> _ = env.process(clock(env, ticks))
    >>> env.run()
    >>> ticks
    [0, 1, 2]
    """

    # The clock, agenda and sequence counter are read and written on
    # every scheduled entry; __slots__ turns those into fixed-offset
    # loads instead of instance-dict lookups.
    __slots__ = ("_now", "_agenda", "_seq", "_active_process",
                 "invariants", "_tolerate_process_failures")

    def __init__(self, initial_time: float = 0.0,
                 tolerate_process_failures: bool = False):
        self._now = float(initial_time)
        self._agenda: List[Tuple] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        # Optional conservation-law observer (see repro.validation): when
        # attached, the event loop reports each popped entry's firing
        # time so the checker can assert clock monotonicity.  None costs
        # one attribute load per event.
        self.invariants: Optional[Any] = None
        # When True, a process that dies with an unhandled exception fails
        # its Process event instead of crashing the whole simulation --
        # failure-injection experiments wait on the Process event and
        # observe the exception.  The Gamma model keeps the default
        # (False): a crashing component is a bug and should surface
        # immediately.
        self._tolerate_process_failures = bool(tolerate_process_failures)

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    @property
    def events_scheduled(self) -> int:
        """Total agenda entries scheduled so far (the throughput unit)."""
        return self._seq

    # -- event factories -----------------------------------------------------

    def event(self) -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires *delay* time units from now."""
        # Timeout.__init__ inlined (one frame instead of a class call
        # plus __init__): this factory runs once per simulated service
        # burst.  The Timeout constructor stays equivalent for direct
        # instantiation.
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        timeout = Timeout.__new__(Timeout)
        timeout.env = self
        timeout.callbacks = []
        timeout._value = value
        timeout._exception = None
        timeout._processed = False
        timeout.delay = delay
        self._seq += 1
        heappush(self._agenda,
                 (self._now + delay, NORMAL, self._seq, timeout))
        return timeout

    def process(self, generator: Generator) -> Process:
        """Start *generator* as a simulation process."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """Event that fires once all *events* have fired."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event that fires once any of *events* has fired."""
        return AnyOf(self, events)

    # -- agenda ---------------------------------------------------------------

    def _enqueue(self, event: Event, delay: float = 0.0,
                 priority: int = NORMAL) -> None:
        """Place a triggered *event* on the agenda ``delay`` from now."""
        self._seq += 1
        heappush(self._agenda, (self._now + delay, priority, self._seq, event))

    def _dispatch(self, callback: Callable[[Any], None],
                  argument: Any) -> None:
        """Schedule ``callback(argument)`` as an immediate agenda entry.

        The shared delivery path for process bootstraps, interrupts and
        callbacks registered on already-processed events: one heap entry,
        no proxy event.  Consumes a sequence number exactly like an event
        entry, preserving the deterministic ordering contract.
        """
        self._seq += 1
        heappush(self._agenda,
                 (self._now, NORMAL, self._seq, callback, argument))

    def schedule_urgent(self, event: Event, delay: float = 0.0) -> None:
        """Trigger *event* (successfully, no value) with URGENT priority."""
        if event.triggered:
            raise SimulationError(f"{event!r} has already been triggered")
        event._value = None
        self._enqueue(event, delay=delay, priority=URGENT)

    def peek(self) -> float:
        """Time of the next agenda entry, or ``inf`` when the agenda is empty."""
        return self._agenda[0][0] if self._agenda else float("inf")

    def step(self) -> None:
        """Process exactly one agenda entry.

        Raises :class:`IndexError` when the agenda is empty.
        """
        entry = heappop(self._agenda)
        when = entry[0]
        if self.invariants is not None:
            self.invariants.on_event(when, self._now)
        self._now = when
        if len(entry) == 4:
            entry[3]._run_callbacks()
        else:
            entry[3](entry[4])

    # -- run loops --------------------------------------------------------------

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` -- run until the agenda is exhausted;
        * a number -- run until the clock reaches that time (the clock is
          left exactly at ``until``);
        * an :class:`Event` -- run until that event has been processed and
          return its value (re-raising its exception if it failed).

        Raises :class:`AgendaEmptyError` when the agenda runs dry before
        an awaited event fires.

        An attached invariant checker is honoured via the generic
        :meth:`step` loop (checked once at entry: checkers are attached
        before the run starts); without one, each branch below is the
        body of step() *and* of ``Event._run_callbacks`` inlined into a
        tight loop with the agenda and ``heappop`` bound locally.  The
        two method frames this removes per event are measurable at
        millions of events per figure.
        """
        if self.invariants is not None:
            return self._run_checked(until)

        pop = heappop
        agenda = self._agenda
        if until is None:
            while agenda:
                entry = pop(agenda)
                self._now = entry[0]
                if len(entry) == 4:
                    event = entry[3]
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    if callbacks:
                        if len(callbacks) == 1:
                            callbacks[0](event)
                        else:
                            for callback in callbacks:
                                callback(event)
                else:
                    entry[3](entry[4])
            return None

        if isinstance(until, Event):
            sentinel = until
            while not sentinel._processed:
                if not agenda:
                    raise AgendaEmptyError(
                        "simulation agenda ran dry before the awaited event fired")
                entry = pop(agenda)
                self._now = entry[0]
                if len(entry) == 4:
                    event = entry[3]
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    if callbacks:
                        if len(callbacks) == 1:
                            callbacks[0](event)
                        else:
                            for callback in callbacks:
                                callback(event)
                else:
                    entry[3](entry[4])
            return sentinel.value

        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"cannot run until {horizon!r}, now is {self._now!r}")
        while agenda and agenda[0][0] <= horizon:
            entry = pop(agenda)
            self._now = entry[0]
            if len(entry) == 4:
                event = entry[3]
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                if callbacks:
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
            else:
                entry[3](entry[4])
        self._now = horizon
        return None

    def _run_checked(self, until: Optional[Any]) -> Any:
        """The :meth:`run` semantics via :meth:`step`, invariants active.

        Only used when a checker is attached (``--check-invariants``,
        ``repro-validate``): correctness instrumentation already costs
        far more than a method frame per event, so this path favours
        the obvious formulation.
        """
        if until is None:
            while self._agenda:
                self.step()
            return None
        if isinstance(until, Event):
            while not until._processed:
                if not self._agenda:
                    raise AgendaEmptyError(
                        "simulation agenda ran dry before the awaited event fired")
                self.step()
            return until.value
        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"cannot run until {horizon!r}, now is {self._now!r}")
        while self._agenda and self._agenda[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Environment now={self._now!r} agenda={len(self._agenda)}>"
