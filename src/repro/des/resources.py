"""Shared resources for simulation processes.

Three primitives cover everything the Gamma model needs:

* :class:`Resource` -- a server pool with FCFS queueing (the disk arm, a
  network wire).
* :class:`PriorityResource` -- FCFS within priority classes; lower numbers
  are served first.  The paper's CPU is "FCFS non-preemptive ... except for
  byte transfers to/from the disk's FIFO buffer": we model that by granting
  DMA transfers a higher priority class, so they are served ahead of any
  queued normal work without preempting the request in service.
* :class:`Store` -- an unbounded FIFO of items with blocking ``get``; the
  message queue of every manager process.

Hot-path design
---------------
``request`` grants immediately -- no queue round-trip -- when a server
is free and nobody waits (the overwhelmingly common case in the Gamma
model, where most CPU bursts and NIC holds find the server idle).  The
grant value and monitor observation are identical to the queued path's,
so simulated results do not depend on which path ran.
:class:`PriorityResource` cancels queued requests by tombstoning their
heap entry (O(1)) instead of scanning and re-heapifying (O(n)); the
tombstones are skipped lazily when the scheduler pops the next grant.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Deque, Dict, List, Optional

from .environment import Environment
from .events import _PENDING, NORMAL, Event, SimulationError

__all__ = ["Request", "Resource", "PriorityResource", "Store"]


class Request(Event):
    """A pending or granted claim on a :class:`Resource`.

    Usable as a context manager so that the resource is always released::

        with cpu.request() as req:
            yield req            # wait for the grant
            yield env.timeout(service_time)
        # released here
    """

    __slots__ = ("resource", "priority", "enqueued_at")

    def __init__(self, resource: "Resource", priority: int):
        # Inlined Event.__init__: requests are created once per service
        # burst, right on the hot path.
        env = resource.env
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._exception = None
        self._processed = False
        self.resource = resource
        self.priority = priority
        self.enqueued_at = env._now

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.resource.release(self)

    @property
    def wait_time(self) -> float:
        """Time spent queued before the grant (valid once granted)."""
        return self.value  # the grant value is the wait duration


class Resource:
    """A pool of ``capacity`` identical servers with FCFS queueing."""

    __slots__ = ("env", "capacity", "_users", "_queue", "_waiting",
                 "monitor")

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.env = env
        self.capacity = capacity
        self._users: List[Request] = []
        self._queue: Deque[Request] = deque()
        #: Live queued requests; kept in sync by _enqueue/_pop_next/
        #: _discard so the hot paths never measure the queue itself
        #: (PriorityResource's queue also holds tombstones).
        self._waiting = 0
        # Monitoring hooks (populated lazily by des.monitor.UtilizationMonitor).
        self.monitor = None

    # -- public API -------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of requests currently holding the resource."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a grant."""
        return self._waiting

    def request(self, priority: int = 0) -> Request:
        """Claim one server; the returned event fires when granted."""
        # Request.__init__ inlined (the constructor stays equivalent
        # for direct instantiation): one burst, one frame.
        env = self.env
        req = Request.__new__(Request)
        req.env = env
        req.callbacks = []
        req._value = _PENDING
        req._exception = None
        req._processed = False
        req.resource = self
        req.priority = priority
        req.enqueued_at = env._now
        users = self._users
        if not self._waiting and len(users) < self.capacity:
            # Uncontended fast grant: a server is free and nobody is
            # queued ahead, so succeed in place (inlined: the request is
            # known untriggered).  The grant value (the wait duration)
            # is exactly what the queued path would compute:
            # now - enqueued_at == 0.0.
            users.append(req)
            req._value = 0.0
            env._seq += 1
            heappush(env._agenda, (env._now, NORMAL, env._seq, req))
            monitor = self.monitor
            if monitor is not None:
                # TimeWeightedMonitor.observe inlined: the simulation
                # clock never runs backwards inside the event loop, so
                # the method's backwards guard is unreachable here.
                now = env._now
                monitor._area += monitor._level * (now
                                                   - monitor._last_change)
                level = len(users)
                monitor._level = level
                monitor._last_change = now
                if level > monitor._max:
                    monitor._max = level
        else:
            self._enqueue(req)
            # With every server busy (the usual reason to queue) there
            # is nothing to grant; skip the call.
            if len(users) < self.capacity and self._grant_next():
                self._note_change()
        return req

    def release(self, request: Request) -> None:
        """Return the server held by *request* to the pool.

        Releasing an ungranted request cancels it (removes it from the
        queue); releasing twice is an error.
        """
        users = self._users
        try:
            users.remove(request)
        except ValueError:
            if self._discard(request):
                return
            if request.triggered:
                raise SimulationError("request released twice") from None
            raise SimulationError(  # pragma: no cover - defensive
                "request does not belong to this resource") from None
        if self._waiting:
            self._grant_next()
        # One observation per state transition: the release and any
        # same-instant re-grant collapse into a single sample at the
        # settled level (the original design double-observed the
        # transient dip, inflating monitor sample counts).
        monitor = self.monitor
        if monitor is not None:
            # TimeWeightedMonitor.observe inlined, as in request().
            now = self.env._now
            monitor._area += monitor._level * (now - monitor._last_change)
            level = len(users)
            monitor._level = level
            monitor._last_change = now
            if level > monitor._max:
                monitor._max = level

    # -- queue discipline (overridden by PriorityResource) -----------------

    def _enqueue(self, request: Request) -> None:
        self._queue.append(request)
        self._waiting += 1

    def _pop_next(self) -> Optional[Request]:
        if self._queue:
            self._waiting -= 1
            return self._queue.popleft()
        return None

    def _discard(self, request: Request) -> bool:
        try:
            self._queue.remove(request)
        except ValueError:
            return False
        self._waiting -= 1
        return True

    # -- internals ----------------------------------------------------------

    def _grant_next(self) -> bool:
        """Grant waiting requests while servers are free; True if any.

        The queue pop is written out inline (instead of calling
        :meth:`_pop_next`) because nearly every release of a contended
        resource lands here; :class:`PriorityResource` overrides this
        with the tombstone-skipping equivalent.
        """
        granted = False
        users = self._users
        capacity = self.capacity
        env = self.env
        queue = self._queue
        while queue and len(users) < capacity:
            nxt = queue.popleft()
            self._waiting -= 1
            users.append(nxt)
            # Inlined succeed(now - enqueued_at): queued requests are
            # untriggered by construction.
            nxt._value = env._now - nxt.enqueued_at
            env._seq += 1
            heappush(env._agenda, (env._now, NORMAL, env._seq, nxt))
            granted = True
        return granted

    def _note_change(self) -> None:
        monitor = self.monitor
        if monitor is not None:
            monitor.observe(self.env._now, len(self._users))


class PriorityResource(Resource):
    """A :class:`Resource` serving lower ``priority`` values first.

    Within one priority class the discipline remains FCFS.  Grants are
    non-preemptive: an in-service request always completes.

    Cancellation (releasing a still-queued request) tombstones the heap
    entry in O(1) -- the entry's request slot is set to ``None`` and
    skipped when it surfaces at the heap root -- instead of the O(n)
    scan plus re-heapify of the original design.  ``queue_length``
    counts live entries only.
    """

    __slots__ = ("_pqueue", "_pentries", "_pseq")

    def __init__(self, env: Environment, capacity: int = 1):
        super().__init__(env, capacity)
        #: Heap of mutable ``[priority, seq, request-or-None]`` entries.
        self._pqueue: List[List] = []
        #: Live request -> its heap entry, for O(1) tombstoning.
        self._pentries: Dict[Request, List] = {}
        self._pseq = 0

    def _enqueue(self, request: Request) -> None:
        self._pseq += 1
        entry = [request.priority, self._pseq, request]
        self._pentries[request] = entry
        heappush(self._pqueue, entry)
        self._waiting += 1

    def _pop_next(self) -> Optional[Request]:
        pqueue = self._pqueue
        while pqueue:
            req = heappop(pqueue)[2]
            if req is not None:
                del self._pentries[req]
                self._waiting -= 1
                return req
        return None

    def _discard(self, request: Request) -> bool:
        entry = self._pentries.pop(request, None)
        if entry is None:
            return False
        entry[2] = None  # lazy deletion: skipped by _pop_next
        self._waiting -= 1
        return True

    def _grant_next(self) -> bool:
        """The base grant loop with the tombstone skip written inline."""
        granted = False
        users = self._users
        capacity = self.capacity
        env = self.env
        pqueue = self._pqueue
        pentries = self._pentries
        while pqueue and len(users) < capacity:
            nxt = heappop(pqueue)[2]
            if nxt is None:
                continue  # tombstone of a cancelled request
            del pentries[nxt]
            self._waiting -= 1
            users.append(nxt)
            nxt._value = env._now - nxt.enqueued_at
            env._seq += 1
            heappush(env._agenda, (env._now, NORMAL, env._seq, nxt))
            granted = True
        return granted


class Store:
    """An unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event that fires with the
    oldest item as soon as one is available (immediately if the store is
    non-empty).  Items are delivered in put-order to getters in get-order.

    A get event must be waited on promptly: a getter whose callback list
    is empty at ``put`` time (its waiter was interrupted mid-wait, so
    nothing can ever consume the value) is treated as abandoned and
    skipped, keeping the item for the next live getter instead of
    silently losing the message.
    """

    __slots__ = ("env", "_items", "_getters")

    def __init__(self, env: Environment):
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Add *item*; wakes the oldest *live* waiting getter, if any."""
        getters = self._getters
        while getters:
            getter = getters.popleft()
            if getter.callbacks:
                # Inlined getter.succeed(item): a queued getter is
                # untriggered by construction.
                getter._value = item
                env = self.env
                env._seq += 1
                heappush(env._agenda, (env._now, NORMAL, env._seq, getter))
                return
            # Orphaned getter (interrupted waiter): drop it and keep
            # looking -- succeeding it would make the item vanish.
        self._items.append(item)

    def get(self) -> Event:
        """Event firing with the next item (FIFO)."""
        # Built without Event.__init__ (and, when an item is ready,
        # without Event.succeed): one get per delivered message makes
        # these two frames visible in figure-scale profiles.
        env = self.env
        event = Event.__new__(Event)
        event.env = env
        event.callbacks = []
        event._exception = None
        event._processed = False
        items = self._items
        if items:
            event._value = items.popleft()
            env._seq += 1
            heappush(env._agenda, (env._now, NORMAL, env._seq, event))
        else:
            event._value = _PENDING
            self._getters.append(event)
        return event

    def peek_all(self) -> List[Any]:
        """Snapshot of queued items (oldest first); for inspection/tests."""
        return list(self._items)
