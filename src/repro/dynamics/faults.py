"""Deterministic fault injection for the Gamma model.

A :class:`FaultPlan` is a frozen, seeded schedule: site ``s`` dies at
simulated time ``t`` and optionally recovers at ``t'``.  The runtime
half, :class:`FaultController`, lives inside one machine run: it flips
sites down/up at the scheduled instants and converts work caught on a
dead site into :class:`~repro.gamma.messages.OperatorAbort` notices.

Abort notices deliberately bypass the simulated network.  A dead node
sends nothing; what the scheduler actually observes in a real system is
its own failure-detection timeout.  The controller therefore waits
``detection_seconds`` and then places the abort directly into the
scheduler's mailbox, charging no CPU or NIC anywhere.  This also keeps
the :class:`~repro.validation.invariants.InvariantChecker` message-
conservation ledger intact: network sends still equal network
deliveries because the notice never was a network message.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..gamma.messages import OperatorAbort

__all__ = ["SiteFailure", "FaultPlan", "FaultController"]


@dataclass(frozen=True, slots=True)
class SiteFailure:
    """One scheduled failure: ``site`` dies at ``at`` (simulated seconds
    from the start of the run), recovering at ``recover_at`` if set."""

    site: int
    at: float
    recover_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.site < 0:
            raise ValueError(f"site must be >= 0, got {self.site}")
        if self.at < 0:
            raise ValueError(f"failure time must be >= 0, got {self.at}")
        if self.recover_at is not None and self.recover_at <= self.at:
            raise ValueError(
                f"recovery at {self.recover_at} must come after the "
                f"failure at {self.at}")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seeded schedule of site failures.

    ``detection_seconds`` is the scheduler's failure-detection timeout
    (abort notices surface that long after the request is lost);
    ``retry_backoff_seconds`` is how long the scheduler waits before
    re-dispatching to a recovered site.
    """

    failures: Tuple[SiteFailure, ...]
    seed: int = 0
    detection_seconds: float = 0.05
    retry_backoff_seconds: float = 0.02

    def __post_init__(self) -> None:
        object.__setattr__(self, "failures", tuple(self.failures))
        if self.detection_seconds < 0:
            raise ValueError("detection_seconds must be >= 0")
        if self.retry_backoff_seconds < 0:
            raise ValueError("retry_backoff_seconds must be >= 0")

    @classmethod
    def seeded(cls, seed: int, num_sites: int, *, failures: int = 1,
               fail_at: float = 1.0, spread: float = 0.0,
               recovery_seconds: Optional[float] = None,
               detection_seconds: float = 0.05,
               retry_backoff_seconds: float = 0.02) -> "FaultPlan":
        """Draw ``failures`` distinct victim sites from ``seed``.

        Failure times are ``fail_at`` plus a uniform draw in
        ``[0, spread)``; each failed site recovers ``recovery_seconds``
        later when that is set.
        """
        if not 0 < failures <= num_sites:
            raise ValueError(
                f"failures must be in 1..{num_sites}, got {failures}")
        rng = random.Random(seed)
        victims = rng.sample(range(num_sites), failures)
        events = []
        for site in sorted(victims):
            at = fail_at + (rng.random() * spread if spread > 0 else 0.0)
            recover = None if recovery_seconds is None else (
                at + recovery_seconds)
            events.append(SiteFailure(site=site, at=at, recover_at=recover))
        return cls(failures=tuple(events), seed=seed,
                   detection_seconds=detection_seconds,
                   retry_backoff_seconds=retry_backoff_seconds)

    # -- results-v2 serialization ------------------------------------------

    def to_json_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "detection_seconds": self.detection_seconds,
            "retry_backoff_seconds": self.retry_backoff_seconds,
            "failures": [
                {"site": f.site, "at": f.at, "recover_at": f.recover_at}
                for f in self.failures
            ],
        }

    @classmethod
    def from_json_dict(cls, payload: Dict) -> "FaultPlan":
        return cls(
            failures=tuple(
                SiteFailure(site=f["site"], at=f["at"],
                            recover_at=f.get("recover_at"))
                for f in payload.get("failures", ())),
            seed=payload.get("seed", 0),
            detection_seconds=payload.get("detection_seconds", 0.05),
            retry_backoff_seconds=payload.get("retry_backoff_seconds", 0.02),
        )


class FaultController:
    """Runtime state of a :class:`FaultPlan` inside one machine run.

    Built by :class:`~repro.gamma.machine.GammaMachine` when a plan is
    supplied; operator managers consult :meth:`is_down` per request, the
    scheduler consults it when deciding retry vs. degrade.
    """

    def __init__(self, env, plan: FaultPlan):
        self.env = env
        self.plan = plan
        self._down: set = set()
        self._scheduler_put = None
        # Counters, reported in the dynamics results payload.
        self.failures_injected = 0
        self.recoveries = 0
        self.aborts_sent = 0
        self.retries = 0
        self.degraded_queries = 0

    # -- wiring ------------------------------------------------------------

    def bind_scheduler(self, put) -> None:
        """Register the scheduler mailbox's ``put`` for abort notices."""
        self._scheduler_put = put

    def start(self) -> None:
        """Launch the failure/recovery timeline process."""
        timeline: List[Tuple[float, int, int]] = []
        for failure in self.plan.failures:
            timeline.append((failure.at, 0, failure.site))
            if failure.recover_at is not None:
                timeline.append((failure.recover_at, 1, failure.site))
        timeline.sort()
        if timeline:
            self.env.process(self._timeline(timeline))

    def _timeline(self, timeline: Iterable[Tuple[float, int, int]]):
        for at, action, site in timeline:
            delay = at - self.env.now
            if delay > 0:
                yield delay
            if action == 0:
                self._down.add(site)
                self.failures_injected += 1
            else:
                self._down.discard(site)
                self.recoveries += 1

    # -- queries -----------------------------------------------------------

    def is_down(self, site: int) -> bool:
        return site in self._down

    @property
    def down_sites(self) -> Tuple[int, ...]:
        return tuple(sorted(self._down))

    # -- abort notices -----------------------------------------------------

    def abort_request(self, message, site: int) -> None:
        """A request (or its in-flight execution) died at ``site``.

        Schedules the scheduler-side detection timeout; the abort notice
        lands in the scheduler mailbox ``detection_seconds`` later.
        """
        kind = _KIND_BY_TYPE.get(type(message).__name__, "select")
        self.aborts_sent += 1
        self.env.process(self._notify(message.query_id, site, kind))

    def _notify(self, query_id: int, site: int, kind: str):
        if self.plan.detection_seconds > 0:
            yield self.plan.detection_seconds
        self._scheduler_put(OperatorAbort(query_id=query_id, site=site,
                                          kind=kind))

    def stats(self) -> Dict[str, int]:
        return {
            "failures_injected": self.failures_injected,
            "recoveries": self.recoveries,
            "aborts_sent": self.aborts_sent,
            "retries": self.retries,
            "degraded_queries": self.degraded_queries,
        }


_KIND_BY_TYPE = {
    "SelectRequest": "select",
    "ProbeRequest": "probe",
    "InsertRequest": "insert",
    "AuxInsertRequest": "insert",
}
