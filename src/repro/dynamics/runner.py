"""The ``--dynamics`` figure family: degradation under change.

For each strategy, :func:`run_dynamics` executes up to four machine
runs against one figure configuration:

``baseline``
    The static closed-loop run, with latency sketches on, giving the
    per-query-type p50/p95/p99 reference curve.
``failure``
    The same run with a seeded :class:`~repro.dynamics.faults.FaultPlan`
    killing a site mid-window (optionally recovering it later).  The
    per-query-type p99 ratio against the baseline is the degradation
    curve the latency observatory reports.
``rescale``
    Elastic growth ``num_sites -> grow_to`` through
    :func:`~repro.dynamics.rescale.rescale_placement`, with the audit
    layer's before/after skew/fan-out comparison and a post-growth
    throughput measurement.
``churn``
    Online inserts (append-skewed) streamed through the terminals; for
    MAGIC an :class:`~repro.dynamics.mutations.OnlineGridMaintainer`
    performs live directory splits while queries are in flight.

Everything derives from the run seed; the returned
:class:`~repro.experiments.runner.FigureResult` carries the scenario
payload under ``.dynamics`` (results-v2 key ``"dynamics"``), including
the fault seed and full fault plan for replay.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Sequence

from ..experiments.config import ATTR_A, ATTR_B, FIGURES
from ..experiments.latency import latency_payload
from ..experiments.plan import PAPER_INDEXES, build_strategy
from ..experiments.runner import FigureResult
from ..gamma.machine import GammaMachine
from ..gamma.params import GAMMA_PARAMETERS, SimulationParameters
from ..obs.audit import audit_comparison, audit_placement
from ..obs.telemetry import TelemetrySpec
from ..storage.wisconsin import make_wisconsin
from ..workload.mixes import make_mix
from .faults import FaultPlan
from .mutations import MutationSource, OnlineGridMaintainer
from .rescale import rescale_placement

__all__ = ["run_dynamics", "DYNAMICS_STRATEGIES", "DYNAMICS_SCENARIOS"]

#: All four strategies, including the hash ablation the static figures
#: omit -- degradation under failure is exactly where they differ.
DYNAMICS_STRATEGIES = ("range", "hash", "berd", "magic")

DYNAMICS_SCENARIOS = ("failure", "rescale", "churn")


def _p99(telemetry) -> Dict[str, float]:
    recorder = telemetry.latency
    if recorder is None:
        return {}
    return {query_type: sketch.quantile(0.99)
            for query_type, sketch in sorted(recorder.sketches.items())}


def _latency_telemetry():
    return TelemetrySpec(trace=False, latency=True).build()


def run_dynamics(figure: str = "8a", *,
                 strategies: Optional[Sequence[str]] = None,
                 scenarios: Optional[Sequence[str]] = None,
                 cardinality: int = 20_000,
                 num_sites: int = 32,
                 grow_to: int = 64,
                 multiprogramming_level: int = 8,
                 measured_queries: int = 150,
                 seed: int = 13,
                 insert_fraction: float = 0.4,
                 hot_span: float = 0.02,
                 fail_fraction: float = 0.45,
                 recovery_fraction: Optional[float] = 0.25,
                 check_invariants: bool = False,
                 audit_samples: int = 200,
                 params: SimulationParameters = GAMMA_PARAMETERS,
                 progress: Optional[Callable[[str], None]] = None
                 ) -> FigureResult:
    """Run the dynamics scenarios for one figure configuration.

    ``fail_fraction`` / ``recovery_fraction`` place the site failure
    (and optional recovery) as fractions of each strategy's *baseline*
    simulated duration, so the failure always lands inside the run
    regardless of how fast the strategy is.  ``recovery_fraction=None``
    keeps the site dead to the end (pure degradation, no retries).
    """
    config = FIGURES[figure]
    names = tuple(strategies if strategies is not None
                  else DYNAMICS_STRATEGIES)
    wanted = tuple(scenarios if scenarios is not None
                   else DYNAMICS_SCENARIOS)
    unknown = [s for s in wanted if s not in DYNAMICS_SCENARIOS]
    if unknown:
        raise ValueError(f"unknown dynamics scenarios {unknown}")
    if grow_to <= num_sites and "rescale" in wanted:
        raise ValueError(
            f"grow_to ({grow_to}) must exceed num_sites ({num_sites})")

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    invariants_factory = None
    if check_invariants:
        from ..validation.invariants import InvariantChecker
        invariants_factory = InvariantChecker

    started = time.time()
    relation = make_wisconsin(cardinality, correlation=config.correlation,
                              seed=seed)
    mix = make_mix(config.mix_name, domain=cardinality)
    result = FigureResult(config=config, cardinality=cardinality,
                          num_sites=num_sites,
                          measured_queries=measured_queries,
                          series={}, seed=seed, executor="serial", jobs=1)
    per_strategy: Dict[str, Dict] = {}
    fault_seed = seed * 1009 + 7

    for index, name in enumerate(names):
        note(f"[{name}] partitioning {cardinality} tuples over "
             f"{num_sites} sites")
        strategy = build_strategy(name, config, cardinality, params)
        placement = strategy.partition(relation, num_sites)
        payload: Dict[str, Dict] = {}

        # Baseline: static run with latency sketches on.
        telemetry = _latency_telemetry()
        machine = GammaMachine(
            placement, indexes=PAPER_INDEXES, params=params, seed=seed,
            telemetry=telemetry,
            invariants=(invariants_factory() if invariants_factory
                        else None))
        baseline = machine.run(mix, multiprogramming_level,
                               measured_queries=measured_queries)
        sim_seconds = machine.env.now
        telemetry.detach()
        result.series[name] = [baseline]
        result.executed_runs += 1
        result.telemetries[(name, multiprogramming_level)] = telemetry
        payload["baseline"] = {
            "throughput": baseline.throughput,
            "p99_seconds": _p99(telemetry),
            "sim_seconds": sim_seconds,
        }
        note(f"[{name}] baseline: {baseline.throughput:.1f} q/s over "
             f"{sim_seconds:.1f} simulated seconds")

        if "failure" in wanted:
            plan = FaultPlan.seeded(
                fault_seed + index, num_sites,
                fail_at=fail_fraction * sim_seconds,
                recovery_seconds=(
                    None if recovery_fraction is None
                    else recovery_fraction * sim_seconds))
            fault_telemetry = _latency_telemetry()
            machine = GammaMachine(
                placement, indexes=PAPER_INDEXES, params=params, seed=seed,
                telemetry=fault_telemetry, fault_plan=plan,
                invariants=(invariants_factory() if invariants_factory
                            else None))
            faulted = machine.run(mix, multiprogramming_level,
                                  measured_queries=measured_queries)
            fault_telemetry.detach()
            result.executed_runs += 1
            result.telemetries[(f"{name}+fault",
                                multiprogramming_level)] = fault_telemetry
            base_p99 = payload["baseline"]["p99_seconds"]
            fault_p99 = _p99(fault_telemetry)
            degradation = {
                query_type: (fault_p99[query_type] / base_p99[query_type]
                             if base_p99.get(query_type) else None)
                for query_type in fault_p99
            }
            payload["failure"] = {
                "fault_seed": plan.seed,
                "fault_plan": plan.to_json_dict(),
                "throughput": faulted.throughput,
                "p99_seconds": fault_p99,
                "p99_degradation": degradation,
                "stats": machine.faults.stats(),
            }
            note(f"[{name}] failure: {faulted.throughput:.1f} q/s, "
                 f"{machine.faults.degraded_queries} degraded, "
                 f"{machine.faults.retries} retried")

        if "rescale" in wanted:
            before = audit_placement(placement, mix, strategy=name,
                                     correlation=config.correlation,
                                     samples=audit_samples, seed=seed)
            rescaled, report = rescale_placement(placement, grow_to)
            after = audit_placement(rescaled, mix, strategy=name,
                                    correlation=config.correlation,
                                    samples=audit_samples, seed=seed)
            grown = GammaMachine(
                rescaled, indexes=PAPER_INDEXES, params=params, seed=seed,
                invariants=(invariants_factory() if invariants_factory
                            else None))
            after_run = grown.run(mix, multiprogramming_level,
                                  measured_queries=measured_queries)
            result.executed_runs += 1
            payload["rescale"] = {
                "report": report.to_json_dict(),
                "audit_comparison": audit_comparison(before, after),
                "throughput_after": after_run.throughput,
            }
            note(f"[{name}] rescale {num_sites}->{grow_to}: moved "
                 f"{report.moved_fraction:.1%} (naive "
                 f"~{report.naive_fraction:.0%}), throughput "
                 f"{baseline.throughput:.1f} -> {after_run.throughput:.1f}")

        if "churn" in wanted:
            # A fresh placement: the maintainer mutates the directory.
            churn_placement = strategy.partition(relation, num_sites)
            maintainer = None
            directory = getattr(churn_placement, "directory", None)
            if directory is not None:
                maintainer = OnlineGridMaintainer(
                    churn_placement,
                    capacity=int(directory.counts.max()) + 4)
            source = MutationSource(mix, insert_fraction,
                                    attributes=(ATTR_A, ATTR_B),
                                    domain=cardinality,
                                    maintainer=maintainer,
                                    hot_span=hot_span)
            machine = GammaMachine(
                churn_placement, indexes=PAPER_INDEXES, params=params,
                seed=seed,
                invariants=(invariants_factory() if invariants_factory
                            else None))
            churned = machine.run(source, multiprogramming_level,
                                  measured_queries=measured_queries)
            result.executed_runs += 1
            payload["churn"] = {
                "insert_fraction": insert_fraction,
                "hot_span": hot_span,
                "inserts_issued": source.inserts_issued,
                "throughput": churned.throughput,
                "maintainer": (maintainer.stats() if maintainer is not None
                               else None),
            }
            splits = (maintainer.splits_performed
                      if maintainer is not None else 0)
            note(f"[{name}] churn: {source.inserts_issued} inserts, "
                 f"{splits} online splits, {churned.throughput:.1f} q/s")

        per_strategy[name] = payload

    result.wall_seconds = time.time() - started
    result.latency = latency_payload(result.telemetries)
    result.dynamics = {
        "figure": figure,
        "seed": seed,
        "fault_seed": fault_seed,
        "num_sites": num_sites,
        "grow_to": grow_to,
        "multiprogramming_level": multiprogramming_level,
        "measured_queries": measured_queries,
        "scenarios": list(wanted),
        "check_invariants": bool(check_invariants),
        "per_strategy": per_strategy,
    }
    return result
