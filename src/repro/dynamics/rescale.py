"""Elastic rescaling: grow ``num_sites`` with bounded data movement.

A naive response to cluster growth re-runs the partitioner at P' sites
and moves essentially every tuple (~``1 - 1/P'`` of the relation).  The
remappers here move a *bounded* fraction instead, each with a provable
per-style bound reported in the :class:`RescaleReport`:

``split`` (range, BERD primary)
    Repeatedly split the heaviest range interval at its median
    (:func:`repro.core.gridfile.split_cut`) and hand the upper half to a
    new site.  Each split moves at most half of the largest *original*
    fragment, so ``moved <= (P' - P) * ceil(max_fragment / 2)``.
    Interval ownership goes through an explicit owner table -- interval
    position no longer equals site id after a rescale.

``linear-hash`` (hash)
    Classic linear hashing: sites ``0 .. P'-P-1`` split; a tuple on
    split site ``s`` rehashes with ``h mod 2P`` and either stays at
    ``s`` or moves to ``s + P``.  Only tuples on split sites can move,
    so ``moved <= sum(|fragment_s| for split sites s)``.  Requires
    ``P < P' <= 2P``.

``entry-migration`` (MAGIC)
    Greedy grid-entry moves from the heaviest site to the lightest
    *new* site, re-using the incremental-weight machinery of
    :func:`repro.core.rebalance.entry_exchange` and its
    :class:`~repro.core.directory.SliceOwnerTracker` diversity guard.
    Receivers are capped at ``target + max_entry`` tuples, so
    ``moved <= (P' - P) * (total/P' + max_entry)``.

BERD auxiliary relations are rebuilt in place for the new home map;
the report counts base-relation tuples only (auxiliary entries are
pointer pairs, orders of magnitude smaller than tuples).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.berd import AuxiliaryIndex, BerdPlacement
from ..core.directory import GridDirectory
from ..core.gridfile import split_cut
from ..core.hash_partition import _KNUTH, HashPlacement
from ..core.magic import MagicPlacement, materialize_fragments
from ..core.range_partition import RangePlacement
from ..core.strategy import (
    Placement,
    RangePredicate,
    RoutingDecision,
    sites_for_interval,
)

__all__ = [
    "RescaleReport",
    "RescaledRangePlacement",
    "RescaledBerdPlacement",
    "RescaledHashPlacement",
    "rescale_placement",
    "placement_sites",
]


@dataclass(frozen=True)
class RescaleReport:
    """What an elastic rescale P -> P' cost and promised."""

    strategy: str
    style: str
    old_sites: int
    new_sites: int
    total_tuples: int
    tuples_moved: int
    #: Provable a-priori bound on ``tuples_moved`` for this style.
    movement_bound: int

    def __post_init__(self) -> None:
        if self.tuples_moved > self.movement_bound:
            raise AssertionError(
                f"remapper moved {self.tuples_moved} tuples, above its "
                f"own bound {self.movement_bound}")

    @property
    def moved_fraction(self) -> float:
        return (self.tuples_moved / self.total_tuples
                if self.total_tuples else 0.0)

    @property
    def naive_fraction(self) -> float:
        """Fraction a naive re-partition would move in expectation."""
        return 1.0 - 1.0 / self.new_sites

    def to_json_dict(self) -> Dict:
        return {
            "strategy": self.strategy,
            "style": self.style,
            "old_sites": self.old_sites,
            "new_sites": self.new_sites,
            "total_tuples": self.total_tuples,
            "tuples_moved": self.tuples_moved,
            "movement_bound": self.movement_bound,
            "moved_fraction": self.moved_fraction,
            "naive_fraction": self.naive_fraction,
        }

    @classmethod
    def from_json_dict(cls, payload: Dict) -> "RescaleReport":
        return cls(strategy=payload["strategy"], style=payload["style"],
                   old_sites=payload["old_sites"],
                   new_sites=payload["new_sites"],
                   total_tuples=payload["total_tuples"],
                   tuples_moved=payload["tuples_moved"],
                   movement_bound=payload["movement_bound"])


def placement_sites(placement: Placement) -> np.ndarray:
    """Per-tuple home site, reconstructed from the fragments."""
    sites = np.empty(placement.relation.cardinality, dtype=np.int64)
    for fragment in placement.fragments:
        sites[fragment.rows] = fragment.site
    return sites


def _fragments_from_sites(relation, site_of_tuple: np.ndarray,
                          num_sites: int):
    order = np.argsort(site_of_tuple, kind="stable")
    starts = np.searchsorted(site_of_tuple[order],
                             np.arange(num_sites + 1))
    return [
        relation.fragment(order[starts[site]:starts[site + 1]], site=site)
        for site in range(num_sites)
    ]


# -- range / BERD: interval splitting -----------------------------------------


class RescaledRangePlacement(RangePlacement):
    """A range placement after elastic growth: interval -> owner table.

    After splits there are more intervals than the original ``P`` and
    interval position no longer equals site id, so routing goes through
    ``interval_owners``.
    """

    def __init__(self, relation, fragments, attribute: str,
                 boundaries: np.ndarray, interval_owners: np.ndarray):
        super().__init__(relation, fragments, attribute, boundaries)
        self.interval_owners = np.asarray(interval_owners, dtype=np.int64)

    def route(self, predicate: RangePredicate) -> RoutingDecision:
        if predicate.attribute != self.attribute:
            return RoutingDecision(
                target_sites=tuple(range(self.num_sites)),
                used_partitioning=False)
        intervals = sites_for_interval(self.boundaries, predicate.low,
                                       predicate.high)
        owners = sorted({int(self.interval_owners[i]) for i in intervals})
        return RoutingDecision(target_sites=tuple(owners))

    def site_for_tuple(self, values) -> int:
        interval = super().site_for_tuple(values)
        return int(self.interval_owners[interval])

    def describe(self) -> str:
        return (f"rescaled range on {self.attribute!r}: {self.num_sites} "
                f"sites over {len(self.interval_owners)} intervals")


class RescaledBerdPlacement(BerdPlacement):
    """A BERD placement after elastic growth of the primary ranges."""

    def __init__(self, relation, fragments, primary: str,
                 primary_boundaries: np.ndarray,
                 auxiliaries: Dict[str, AuxiliaryIndex],
                 interval_owners: np.ndarray):
        super().__init__(relation, fragments, primary, primary_boundaries,
                         auxiliaries)
        self.interval_owners = np.asarray(interval_owners, dtype=np.int64)

    def route(self, predicate: RangePredicate) -> RoutingDecision:
        if predicate.attribute == self.primary:
            intervals = sites_for_interval(
                self.primary_boundaries, predicate.low, predicate.high)
            owners = sorted({int(self.interval_owners[i])
                             for i in intervals})
            return RoutingDecision(target_sites=tuple(owners))
        # Secondary attributes: the auxiliaries were rebuilt with the
        # post-rescale home map, so the base two-phase path is correct.
        return super().route(predicate)

    def site_for_tuple(self, values) -> int:
        interval = int(np.searchsorted(self.primary_boundaries,
                                       values[self.primary], side="left"))
        return int(self.interval_owners[interval])

    def describe(self) -> str:
        return (f"rescaled {super().describe()} over "
                f"{len(self.interval_owners)} intervals")


def _split_intervals(values: np.ndarray, boundaries: np.ndarray,
                     interval_owners: np.ndarray, new_sites: int):
    """Grow a range partitioning by median splits of the heaviest interval.

    Returns ``(boundaries, owners, movement_bound)``; each new site is
    carved out of the then-heaviest interval, whose upper half it takes.
    """
    ordered = np.sort(values)
    bounds: List[int] = [int(b) for b in boundaries]
    owners: List[int] = [int(o) for o in interval_owners]
    # ends[i]: one past the last ordered value of interval i.
    ends: List[int] = [int(np.searchsorted(ordered, b, side="right"))
                       for b in bounds] + [len(ordered)]
    sizes = [end - (ends[i - 1] if i else 0)
             for i, end in enumerate(ends)]
    per_split_cap = (max(sizes) + 1) // 2
    old_sites = max(owners) + 1
    for new_site in range(old_sites, new_sites):
        candidates = sorted(range(len(ends)), key=lambda i: -sizes[i])
        done = False
        for i in candidates:
            if sizes[i] < 2:
                break  # nothing splittable remains
            start = ends[i - 1] if i else 0
            cut = split_cut(ordered[start:ends[i]])
            if cut is None:
                continue  # constant values in this interval
            mid = int(np.searchsorted(ordered, cut, side="right"))
            bounds.insert(i, int(cut))
            ends.insert(i, mid)
            owners.insert(i + 1, new_site)
            upper = sizes[i] - (mid - start)
            sizes[i:i + 1] = [mid - start, upper]
            done = True
            break
        if not done:
            raise ValueError(
                f"cannot grow to {new_sites} sites: the data has too few "
                f"distinct values to split further")
    bound = (new_sites - old_sites) * per_split_cap
    return (np.array(bounds, dtype=np.int64),
            np.array(owners, dtype=np.int64), bound)


def _rescale_range(placement: RangePlacement, new_sites: int):
    relation = placement.relation
    values = relation.column(placement.attribute)
    old_owners = getattr(placement, "interval_owners",
                         np.arange(placement.num_sites, dtype=np.int64))
    boundaries, owners, bound = _split_intervals(
        values, placement.boundaries, old_owners, new_sites)
    site_of_tuple = owners[np.searchsorted(boundaries, values, side="left")]
    fragments = _fragments_from_sites(relation, site_of_tuple, new_sites)
    rescaled = RescaledRangePlacement(relation, fragments,
                                      placement.attribute, boundaries,
                                      owners)
    return rescaled, bound


def _rescale_berd(placement: BerdPlacement, new_sites: int):
    relation = placement.relation
    values = relation.column(placement.primary)
    old_owners = getattr(placement, "interval_owners",
                         np.arange(placement.num_sites, dtype=np.int64))
    boundaries, owners, bound = _split_intervals(
        values, placement.primary_boundaries, old_owners, new_sites)
    site_of_tuple = owners[np.searchsorted(boundaries, values, side="left")]
    fragments = _fragments_from_sites(relation, site_of_tuple, new_sites)
    auxiliaries = {
        attr: AuxiliaryIndex(attr, relation.column(attr), site_of_tuple,
                             new_sites)
        for attr in placement.auxiliaries
    }
    rescaled = RescaledBerdPlacement(relation, fragments, placement.primary,
                                     boundaries, auxiliaries, owners)
    return rescaled, bound


# -- hash: linear hashing -----------------------------------------------------


def _linear_hash_sites(values: np.ndarray, old_sites: int,
                       new_sites: int) -> np.ndarray:
    """Linear-hashing home sites after growing old_sites -> new_sites."""
    scrambled = (values.astype(np.uint64) * np.uint64(_KNUTH)) & np.uint64(
        0xFFFFFFFF)
    base = (scrambled % np.uint64(old_sites)).astype(np.int64)
    rehashed = (scrambled % np.uint64(2 * old_sites)).astype(np.int64)
    # Split sites 0 .. new-old-1: their tuples rehash mod 2P and land on
    # either s or s + P (s + P < new' exactly when s is a split site).
    return np.where(base < new_sites - old_sites, rehashed, base)


class RescaledHashPlacement(HashPlacement):
    """A hash placement after linear-hashing growth P -> P' (<= 2P)."""

    def __init__(self, relation, fragments, attribute: str, old_sites: int):
        super().__init__(relation, fragments, attribute)
        self.old_sites = old_sites

    def route(self, predicate: RangePredicate) -> RoutingDecision:
        if predicate.attribute == self.attribute and predicate.is_equality:
            site = int(_linear_hash_sites(
                np.array([predicate.low]), self.old_sites,
                self.num_sites)[0])
            return RoutingDecision(target_sites=(site,))
        return RoutingDecision(
            target_sites=tuple(range(self.num_sites)),
            used_partitioning=False)

    def site_for_tuple(self, values) -> int:
        try:
            value = values[self.attribute]
        except KeyError:
            raise KeyError(
                f"insert needs the partitioning attribute "
                f"{self.attribute!r}") from None
        return int(_linear_hash_sites(np.array([value]), self.old_sites,
                                      self.num_sites)[0])

    def describe(self) -> str:
        return (f"linear-hash on {self.attribute!r}: {self.old_sites} -> "
                f"{self.num_sites} sites")


def _rescale_hash(placement: HashPlacement, new_sites: int):
    if isinstance(placement, RescaledHashPlacement):
        raise NotImplementedError(
            "chained hash rescaling is not supported; rescale from the "
            "original placement")
    old_sites = placement.num_sites
    if new_sites > 2 * old_sites:
        raise ValueError(
            f"linear hashing grows at most 2x per rescale "
            f"({old_sites} -> {new_sites} requested)")
    relation = placement.relation
    values = relation.column(placement.attribute)
    site_of_tuple = _linear_hash_sites(values, old_sites, new_sites)
    fragments = _fragments_from_sites(relation, site_of_tuple, new_sites)
    rescaled = RescaledHashPlacement(relation, fragments,
                                     placement.attribute, old_sites)
    # Only tuples on split sites can move.
    split_sites = new_sites - old_sites
    bound = int(sum(placement.fragments[s].cardinality
                    for s in range(split_sites)))
    return rescaled, bound


# -- MAGIC: grid-entry migration ----------------------------------------------


def _rescale_magic(placement: MagicPlacement, new_sites: int,
                   diversity_slack: Optional[int] = 2,
                   max_moves: int = 200_000):
    old = placement.directory
    old_sites = placement.num_sites
    directory = GridDirectory(old.attributes,
                              [np.asarray(b) for b in old.boundaries],
                              old.counts.copy())
    assignment = old.assignment.copy()
    directory.set_assignment(assignment)

    flat_assignment = assignment.ravel()
    entry_weights = directory.counts.ravel().astype(np.int64)
    weights = np.bincount(flat_assignment, weights=entry_weights,
                          minlength=new_sites).astype(np.int64)
    total = int(entry_weights.sum())
    target = total / new_sites
    max_entry = int(entry_weights.max()) if entry_weights.size else 0
    receiver_cap = target + max_entry

    trackers = []
    if directory.ndim == 2 and diversity_slack is not None:
        for dim, attribute in enumerate(directory.attributes):
            tracker = directory.owner_tracker(attribute, new_sites)
            caps = tracker.distinct_counts() + diversity_slack
            trackers.append((dim, tracker, caps))

    shape = directory.shape
    coords = None
    if directory.ndim == 2:
        flat_index = np.arange(entry_weights.size)
        coords = [flat_index // shape[1], flat_index % shape[1]]

    fresh = np.arange(old_sites, new_sites)
    for _ in range(max_moves):
        light = int(fresh[np.argmin(weights[old_sites:new_sites])])
        heavy = int(np.argmax(weights))
        gap = int(weights[heavy] - weights[light])
        if gap <= 1 or heavy == light:
            break
        candidate_mask = (flat_assignment == heavy) & (entry_weights > 0) \
            & (entry_weights <= gap) \
            & (weights[light] + entry_weights <= receiver_cap)
        candidates = np.nonzero(candidate_mask)[0]
        if candidates.size == 0:
            break
        if trackers:
            ok = np.ones(candidates.size, dtype=bool)
            for dim, tracker, caps in trackers:
                slice_idx = coords[dim][candidates]
                ok &= tracker.distinct_with(slice_idx, light) <= \
                    caps[slice_idx]
            if ok.any():
                candidates = candidates[ok]
            # else: relax the diversity guard rather than leave the new
            # site starved -- balance beats fan-out during growth.
        w = entry_weights[candidates]
        chosen = int(candidates[np.argmin(np.abs(gap - 2 * w))])
        moved_w = int(entry_weights[chosen])
        flat_assignment[chosen] = light
        weights[heavy] -= moved_w
        weights[light] += moved_w
        if trackers:
            for dim, tracker, _caps in trackers:
                tracker.move(int(coords[dim][chosen]), heavy, light)

    directory.set_assignment(flat_assignment.reshape(shape))
    fragments = materialize_fragments(placement.relation, directory,
                                      new_sites)
    rescaled = MagicPlacement(placement.relation, fragments, directory,
                              slice_targets=placement.slice_targets,
                              mi=placement.mi)
    bound = int((new_sites - old_sites) * receiver_cap) + 1
    return rescaled, bound


# -- the public entry point ---------------------------------------------------


def rescale_placement(placement: Placement, new_num_sites: int, *,
                      diversity_slack: Optional[int] = 2,
                      max_moves: int = 200_000
                      ) -> Tuple[Placement, RescaleReport]:
    """Grow a placement to ``new_num_sites`` with bounded data movement.

    Returns the rescaled placement plus a :class:`RescaleReport` whose
    ``tuples_moved`` is measured tuple-by-tuple against the original
    placement and checked against the style's a-priori bound.
    """
    old_sites = placement.num_sites
    if new_num_sites <= old_sites:
        raise ValueError(
            f"rescale must grow the machine: {old_sites} -> "
            f"{new_num_sites}")

    before = placement_sites(placement)
    if isinstance(placement, MagicPlacement):
        strategy, style = "magic", "entry-migration"
        rescaled, bound = _rescale_magic(placement, new_num_sites,
                                         diversity_slack=diversity_slack,
                                         max_moves=max_moves)
    elif isinstance(placement, BerdPlacement):
        strategy, style = "berd", "split"
        rescaled, bound = _rescale_berd(placement, new_num_sites)
    elif isinstance(placement, HashPlacement):
        strategy, style = "hash", "linear-hash"
        rescaled, bound = _rescale_hash(placement, new_num_sites)
    elif isinstance(placement, RangePlacement):
        strategy, style = "range", "split"
        rescaled, bound = _rescale_range(placement, new_num_sites)
    else:
        raise TypeError(
            f"no rescale style for {type(placement).__name__}")

    after = placement_sites(rescaled)
    moved = int(np.count_nonzero(before != after))
    report = RescaleReport(strategy=strategy, style=style,
                           old_sites=old_sites, new_sites=new_num_sites,
                           total_tuples=int(len(before)),
                           tuples_moved=moved, movement_bound=int(bound))
    return rescaled, report
