"""Dynamic-data and fault-injection extensions to the static model.

The paper's experiments are static: load once, query forever.  This
package adds the three time-varying dimensions the north-star needs:

- :mod:`repro.dynamics.faults` -- deterministic, seeded site failures
  (and optional recoveries) injected mid-run; in-flight work against a
  dead site aborts and the scheduler retries or degrades.
- :mod:`repro.dynamics.mutations` -- an online insert stream threaded
  through the Gamma terminals, with incremental grid-directory splits
  for MAGIC placements.
- :mod:`repro.dynamics.rescale` -- elastic growth of ``num_sites`` with
  bounded data movement per strategy, far below a naive re-partition.

Everything here is strictly additive: with no fault plan, no mutation
source and no rescale, the static figures are bit-identical (the spec
digests never see any dynamics knob).
"""

from .faults import FaultController, FaultPlan, SiteFailure
from .mutations import MutationSource, OnlineGridMaintainer
from .rescale import RescaleReport, rescale_placement
from .runner import run_dynamics

__all__ = [
    "FaultController",
    "FaultPlan",
    "SiteFailure",
    "MutationSource",
    "OnlineGridMaintainer",
    "RescaleReport",
    "rescale_placement",
    "run_dynamics",
]
