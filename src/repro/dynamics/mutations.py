"""Online inserts threaded through the Gamma terminals.

:class:`MutationSource` wraps a query mix: with probability
``insert_fraction`` a terminal draw becomes an online insert (a values
dict the terminal routes to :meth:`QueryScheduler.submit_insert`)
instead of a selection.  Inserts pay the full simulated cost at their
home site -- and, for BERD, at each auxiliary site.

:class:`OnlineGridMaintainer` keeps a MAGIC placement's grid directory
adaptive while inserts stream in: it tracks live per-entry populations
and, when an entry overflows its capacity, performs an online grid-file
split.  The split plane comes from the same median logic as the bulk
loader (:func:`repro.core.gridfile.split_cut`); the new slice inherits
the parent slice's processor assignment, so a split moves **zero**
tuples -- it only refines future routing, exactly like a grid-file
directory split [NHS84].
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.directory import GridDirectory
from ..core.gridfile import _counts_from_bins, split_cut

__all__ = ["MutationSource", "OnlineGridMaintainer"]


class MutationSource:
    """A workload source mixing online inserts into a query mix.

    Parameters
    ----------
    base:
        The underlying query source (e.g. a
        :class:`~repro.workload.mixes.QueryMix`).
    insert_fraction:
        Probability a draw is an insert instead of a selection.
    attributes:
        Attributes every inserted tuple carries values for (must cover
        the placement's partitioning attributes).
    domain:
        Values are drawn uniformly from ``range(domain)``.
    maintainer:
        Optional :class:`OnlineGridMaintainer` notified of every insert
        (drives online directory splits for MAGIC placements).
    hot_span:
        Fraction of the domain inserts concentrate in (append skew:
        new data typically lands in a narrow, recent key region).  1.0
        draws uniformly over the whole domain.
    relation:
        Relation name the inserts target (defaults to the base mix's).
    """

    def __init__(self, base: Callable, insert_fraction: float,
                 attributes: Sequence[str], domain: int,
                 maintainer: Optional["OnlineGridMaintainer"] = None,
                 hot_span: float = 1.0,
                 relation: Optional[str] = None):
        if not 0.0 <= insert_fraction <= 1.0:
            raise ValueError(
                f"insert_fraction must be in [0, 1], got {insert_fraction}")
        if domain <= 0:
            raise ValueError(f"domain must be positive, got {domain}")
        if not 0.0 < hot_span <= 1.0:
            raise ValueError(
                f"hot_span must be in (0, 1], got {hot_span}")
        if not attributes:
            raise ValueError("inserts need at least one attribute")
        self.base = base
        self.insert_fraction = insert_fraction
        self.attributes = tuple(attributes)
        self.domain = domain
        self.span = max(1, int(domain * hot_span))
        self.maintainer = maintainer
        self.relation = (relation if relation is not None
                         else getattr(base, "relation", "R"))
        self.inserts_issued = 0

    def __call__(self, rng):
        if rng.random() < self.insert_fraction:
            values = {attr: rng.randrange(self.span)
                      for attr in self.attributes}
            self.inserts_issued += 1
            if self.maintainer is not None:
                self.maintainer.note_insert(values)
            return "INSERT", self.relation, values
        return self.base(rng)


class OnlineGridMaintainer:
    """Incremental grid-directory splits for a live MAGIC placement.

    Tracks per-entry populations (base relation plus online inserts) and
    splits the overflowing entry's slice when one exceeds ``capacity``.
    The refreshed directory is swapped into the placement atomically
    between queries; in-flight queries keep the routing decision they
    were planned with.
    """

    def __init__(self, placement, capacity: Optional[int] = None):
        directory = placement.directory
        self.placement = placement
        self.attributes = tuple(directory.attributes)
        self._columns = [placement.relation.column(a)
                         for a in self.attributes]
        self._boundaries: List[List[int]] = [
            [int(b) for b in dim_bounds]
            for dim_bounds in directory.boundaries]
        self._bins: List[np.ndarray] = [
            np.searchsorted(np.asarray(bounds), column, side="left")
            for bounds, column in zip(self._boundaries, self._columns)]
        self._shape = list(directory.shape)
        self._splits_done = [0] * len(self.attributes)
        #: Values of every online insert, one row per insert.
        self._inserted: List[Dict[str, int]] = []
        self._counts = self._recount()
        if capacity is None:
            capacity = max(int(self._counts.max()) + 4, 2)
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.capacity = capacity
        self.inserts_seen = 0
        self.splits_performed = 0

    # -- bookkeeping -------------------------------------------------------

    def _coord_of(self, values: Dict[str, int]) -> tuple:
        return tuple(
            int(np.searchsorted(np.asarray(self._boundaries[dim]),
                                values[attr], side="left"))
            for dim, attr in enumerate(self.attributes))

    def _recount(self) -> np.ndarray:
        counts = _counts_from_bins(self._bins, self._shape)
        for values in self._inserted:
            counts[self._coord_of(values)] += 1
        return counts

    # -- the online path ---------------------------------------------------

    def note_insert(self, values: Dict[str, int]) -> None:
        """Record one inserted tuple; split its entry if it overflows."""
        missing = [a for a in self.attributes if a not in values]
        if missing:
            raise KeyError(f"insert is missing grid attributes {missing}")
        self.inserts_seen += 1
        self._inserted.append({a: int(values[a]) for a in self.attributes})
        coord = self._coord_of(values)
        self._counts[coord] += 1
        if self._counts[coord] > self.capacity:
            self._split(coord)

    def _split(self, coord: tuple) -> None:
        # Values inside the overflowing entry: base tuples plus inserts.
        mask = np.ones(len(self._columns[0]), dtype=bool)
        for dim in range(len(self.attributes)):
            mask &= self._bins[dim] == coord[dim]
        inside_inserts = [v for v in self._inserted
                         if self._coord_of(v) == coord]

        # Same dimension ranking as the bulk builder with equal weights:
        # the dimension with the fewest splits so far goes first.
        ranked = sorted(range(len(self.attributes)),
                        key=lambda d: self._splits_done[d])
        for dim in ranked:
            attr = self.attributes[dim]
            inside = np.concatenate([
                self._columns[dim][mask],
                np.array([v[attr] for v in inside_inserts], dtype=np.int64),
            ])
            cut = split_cut(inside)
            if cut is None:
                continue  # all values equal along this dim
            self._apply_split(dim, cut)
            self.splits_performed += 1
            return
        # Entry is atomic (all values identical): leave it be.

    def _apply_split(self, dim: int, cut: int) -> None:
        bounds = self._boundaries[dim]
        insert_at = int(np.searchsorted(np.asarray(bounds), cut,
                                        side="left"))
        bounds.insert(insert_at, int(cut))
        self._splits_done[dim] += 1
        self._shape[dim] += 1
        self._bins[dim] = np.searchsorted(np.asarray(bounds),
                                          self._columns[dim], side="left")
        self._counts = self._recount()

        # The new slice inherits its parent's assignment: a directory
        # split moves no data, it only refines routing.
        old = self.placement.directory
        assignment = np.insert(old.assignment,
                               insert_at,
                               old.assignment.take(insert_at, axis=dim),
                               axis=dim)
        refreshed = GridDirectory(
            self.attributes,
            [np.asarray(b) for b in self._boundaries],
            self._counts.copy())
        refreshed.set_assignment(assignment)
        self.placement.directory = refreshed

    def stats(self) -> Dict[str, int]:
        return {
            "inserts_seen": self.inserts_seen,
            "splits_performed": self.splits_performed,
            "capacity": self.capacity,
            "shape": list(self._shape),
        }
