"""repro: a full reproduction of "A Performance Analysis of Alternative
Multi-Attribute Declustering Strategies" (Ghandeharizadeh, DeWitt,
Qureshi; SIGMOD 1992).

The package implements, from scratch:

* the three declustering strategies the paper compares -- **MAGIC**
  (multi-attribute grid declustering, the paper's contribution),
  **BERD** (Bubba's extended range declustering) and single-attribute
  **range** partitioning (plus hash as an ablation baseline) -- in
  :mod:`repro.core`;
* every substrate they need: a discrete-event simulation kernel
  (:mod:`repro.des`), a storage layer with the Wisconsin benchmark
  relation, page layout and B+-tree cost models (:mod:`repro.storage`),
  and a component-level simulator of the Gamma database machine
  parameterized by the paper's Table 2 (:mod:`repro.gamma`);
* the paper's multiuser workload (:mod:`repro.workload`) and an
  experiment harness regenerating every figure
  (:mod:`repro.experiments`).

Quick start::

    from repro import (
        make_wisconsin, MagicStrategy, MagicTuning, GammaMachine, make_mix,
    )

    relation = make_wisconsin(100_000, correlation="low")
    strategy = MagicStrategy(
        ["unique1", "unique2"],
        tuning=MagicTuning(shape={"unique1": 62, "unique2": 61},
                           mi={"unique1": 4.0, "unique2": 8.0}))
    placement = strategy.partition(relation, 32)
    machine = GammaMachine(placement,
                           indexes={"unique1": False, "unique2": True})
    result = machine.run(make_mix("low-low"), multiprogramming_level=16)
    print(result.throughput, "queries/second")
"""

from .core import (
    BerdStrategy,
    DeclusteringStrategy,
    GridDirectory,
    HashStrategy,
    MagicCostModel,
    MagicStrategy,
    MagicTuning,
    Placement,
    QueryProfile,
    RangePredicate,
    RangeStrategy,
    RoutingDecision,
)
from .gamma import GAMMA_PARAMETERS, GammaMachine, RunResult, SimulationParameters
from .storage import make_wisconsin
from .workload import cost_model_for_mix, make_mix

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "DeclusteringStrategy",
    "Placement",
    "RangePredicate",
    "RoutingDecision",
    "RangeStrategy",
    "HashStrategy",
    "BerdStrategy",
    "MagicStrategy",
    "MagicTuning",
    "MagicCostModel",
    "QueryProfile",
    "GridDirectory",
    "GammaMachine",
    "SimulationParameters",
    "GAMMA_PARAMETERS",
    "RunResult",
    "make_wisconsin",
    "make_mix",
    "cost_model_for_mix",
]
