"""MAGIC declustering: Multi-Attribute GrId deClustering (paper §3).

Pipeline implemented by :class:`MagicStrategy.partition`:

1. From the workload's query profiles, the cost model (equations 1-4)
   yields the fragment cardinality FC, the per-attribute ideal processor
   counts M_i and the per-dimension split frequencies.
2. The grid-file algorithm builds a K-dimensional grid directory whose
   entries hold ~FC tuples each (``build_gridfile``), or -- when the
   experiment pins a directory shape, as we do to match the shapes the
   paper reports -- an equal-depth directory of exactly that shape.
3. The assignment heuristic maps entries to processors so that each
   slice of dimension *i* touches ~M_i distinct processors while using
   the whole machine (``assign_entries``), with the special case of
   one-entry-per-processor when the directory is small (§3.4).
4. The hill-climbing slice-swap rebalancer evens out per-processor tuple
   loads (essential under correlated partitioning attributes, §4).
5. The relation is scanned once more and each tuple shipped to the
   processor owning its grid entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..storage.relation import Relation
from .assignment import assign_entries, factor_slice_targets
from .cost_model import MagicCostModel
from .directory import GridDirectory
from .gridfile import build_equal_width, build_from_shape, build_gridfile
from .rebalance import entry_exchange, rebalance_assignment
from .strategy import (
    DeclusteringStrategy,
    Placement,
    RangePredicate,
    RoutingDecision,
)

__all__ = ["MagicStrategy", "MagicPlacement", "MagicTuning",
           "materialize_fragments"]


def materialize_fragments(relation: Relation, directory: GridDirectory,
                          num_sites: int):
    """Ship each tuple to the processor owning its grid entry (step 5).

    Module-level so the elastic rescaler (:mod:`repro.dynamics.rescale`)
    can re-materialize fragments after entry migration without a
    strategy object.
    """
    flat_entry = np.zeros(relation.cardinality, dtype=np.int64)
    for dim, attr in enumerate(directory.attributes):
        bins = np.searchsorted(directory.boundaries[dim],
                               relation.column(attr), side="left")
        flat_entry = flat_entry * directory.shape[dim] + bins
    site_of_tuple = directory.assignment.ravel()[flat_entry]
    # Group tuple indices by site in one stable sort instead of one
    # full-relation scan per site (O(n log n) vs O(P * n)); within a
    # site the stable sort keeps indices ascending, exactly what the
    # per-site np.nonzero scan used to produce.
    order = np.argsort(site_of_tuple, kind="stable")
    starts = np.searchsorted(site_of_tuple[order],
                             np.arange(num_sites + 1))
    return [
        relation.fragment(order[starts[site]:starts[site + 1]],
                          site=site)
        for site in range(num_sites)
    ]


@dataclass(frozen=True)
class MagicTuning:
    """Optional overrides for MAGIC's derived parameters.

    The experiment configurations use ``shape`` and ``mi`` to pin the
    directory shapes and per-attribute processor counts the paper
    reports (its exact CP/CS calibration is not recoverable from the
    text); when absent, everything is derived from the cost model.
    """

    #: Pinned slice count per attribute (e.g. {"unique1": 62, "unique2": 61}).
    shape: Optional[Dict[str, int]] = None
    #: Pinned M_i per attribute.
    mi: Optional[Dict[str, float]] = None
    #: Hill-climbing budget for the tuple-load rebalancer.
    rebalance_iterations: int = 200
    #: Diversity budget for the entry-exchange finishing pass (how many
    #: extra distinct processors a slice may gain while single entries
    #: migrate off overloaded processors).  ``None`` disables the pass.
    entry_exchange_slack: "int | None" = 2
    #: Run entry exchange only when the relative load spread left by the
    #: slice-swap rebalancer exceeds this fraction -- moderately
    #: balanced placements are left alone because the pass costs slice
    #: diversity (and hence per-query processor counts).  The default
    #: fires only for the pathological correlated directories the
    #: slice-swap heuristic provably cannot repair.
    entry_exchange_threshold: float = 0.40
    #: Build the directory with the dynamic grid-file splitter instead of
    #: equal-depth quantiles (slower; adapts to non-uniform data).
    dynamic_gridfile: bool = False
    #: Ablation: evenly spaced slice boundaries instead of equi-depth
    #: quantiles -- the naive splitting the grid file exists to avoid.
    equal_width: bool = False


class MagicPlacement(Placement):
    """A relation declustered by MAGIC, with its grid directory.

    ``slice_targets`` and ``mi`` echo what the assignment heuristic
    aimed for -- the integer per-dimension slice targets derived by
    ``factor_slice_targets`` and the ideal (fractional) M_i values they
    came from.  Both are ``None`` when the placement took the
    small-directory identity path (§3.4), where no target applies.
    The audit layer compares achieved slice spread against them.
    """

    def __init__(self, relation: Relation, fragments,
                 directory: GridDirectory,
                 slice_targets: Optional[Dict[str, int]] = None,
                 mi: Optional[Dict[str, float]] = None):
        super().__init__(relation, fragments)
        self.directory = directory
        self.slice_targets = dict(slice_targets) if slice_targets else None
        self.mi = dict(mi) if mi else None

    def route(self, predicate: RangePredicate) -> RoutingDecision:
        if predicate.attribute not in self.directory.attributes:
            return RoutingDecision(
                target_sites=tuple(range(self.num_sites)),
                used_partitioning=False)
        sites = self.directory.sites_for(predicate, prune_empty=True)
        return RoutingDecision(target_sites=sites)

    def route_conjunction(self, predicates) -> RoutingDecision:
        """Multi-dimensional localization: intersect the predicate bands.

        A conjunction constraining several grid dimensions maps to a
        small hyper-rectangle of the directory, typically a single
        entry -- a query class single-attribute declustering must
        broadcast or route on one attribute only.
        """
        if not predicates:
            raise ValueError("a conjunction needs at least one predicate")
        usable = [p for p in predicates
                  if p.attribute in self.directory.attributes]
        if not usable:
            return RoutingDecision(
                target_sites=tuple(range(self.num_sites)),
                used_partitioning=False)
        sites = self.directory.sites_for_all(usable, prune_empty=True)
        return RoutingDecision(target_sites=sites)

    def site_for_tuple(self, values) -> int:
        missing = [a for a in self.directory.attributes if a not in values]
        if missing:
            raise KeyError(
                f"insert needs every grid attribute; missing {missing}")
        flat = 0
        for dim, attr in enumerate(self.directory.attributes):
            bins = int(np.searchsorted(self.directory.boundaries[dim],
                                       values[attr], side="left"))
            flat = flat * self.directory.shape[dim] + bins
        return int(self.directory.assignment.ravel()[flat])

    def describe(self) -> str:
        return f"MAGIC {self.directory.describe()}"


class MagicStrategy(DeclusteringStrategy):
    """MAGIC declustering over K partitioning attributes.

    Parameters
    ----------
    attributes:
        The K partitioning attributes (grid dimensions).
    cost_model:
        The workload cost model; optional if *tuning* pins both the
        directory shape and the M_i values.
    tuning:
        Optional :class:`MagicTuning` overrides.
    """

    name = "magic"

    def __init__(self, attributes: Sequence[str],
                 cost_model: Optional[MagicCostModel] = None,
                 tuning: Optional[MagicTuning] = None):
        if not attributes:
            raise ValueError("MAGIC needs at least one partitioning attribute")
        if len(set(attributes)) != len(attributes):
            raise ValueError("duplicate partitioning attributes")
        self.attributes = tuple(attributes)
        self.cost_model = cost_model
        self.tuning = tuning or MagicTuning()
        if cost_model is None:
            if self.tuning.shape is None or self.tuning.mi is None:
                raise ValueError(
                    "without a cost model, tuning must pin both shape and mi")

    # -- parameter resolution ------------------------------------------------

    def _resolve_mi(self) -> Tuple[float, ...]:
        if self.tuning.mi is not None:
            missing = [a for a in self.attributes if a not in self.tuning.mi]
            if missing:
                raise KeyError(f"tuning.mi missing attributes {missing}")
            return tuple(float(self.tuning.mi[a]) for a in self.attributes)
        return tuple(self.cost_model.ideal_mi(a) for a in self.attributes)

    def _resolve_shape(self) -> Tuple[int, ...]:
        if self.tuning.shape is not None:
            missing = [a for a in self.attributes
                       if a not in self.tuning.shape]
            if missing:
                raise KeyError(f"tuning.shape missing attributes {missing}")
            return tuple(int(self.tuning.shape[a]) for a in self.attributes)
        shape = self.cost_model.directory_shape()
        return tuple(int(shape[a]) for a in self.attributes)

    # -- the partitioning pipeline ----------------------------------------------

    def build_directory(self, relation: Relation) -> GridDirectory:
        """Steps 1-2: construct the (unassigned) grid directory."""
        if self.tuning.dynamic_gridfile:
            if self.cost_model is None:
                raise ValueError("dynamic grid file requires a cost model")
            return build_gridfile(
                relation, self.attributes,
                fragment_capacity=self.cost_model.fragment_cardinality(),
                split_weights=self.cost_model.observed_split_ratios())
        if self.tuning.equal_width:
            return build_equal_width(relation, self.attributes,
                                     self._resolve_shape())
        return build_from_shape(relation, self.attributes,
                                self._resolve_shape())

    def partition(self, relation: Relation, num_sites: int) -> MagicPlacement:
        if num_sites <= 0:
            raise ValueError(f"num_sites must be positive, got {num_sites}")
        directory = self.build_directory(relation)

        mi = self._resolve_mi()
        targets: Optional[Tuple[int, ...]] = None
        if directory.num_entries <= num_sites:
            # §3.4: few fragments -> one processor each.
            assignment = np.arange(
                directory.num_entries, dtype=np.int64).reshape(directory.shape)
        else:
            if len(directory.shape) > 1:
                targets = factor_slice_targets(mi, num_sites)
            assignment = assign_entries(directory.shape, mi, num_sites)
        directory.set_assignment(assignment)
        rebalance_assignment(directory, num_sites,
                             max_iterations=self.tuning.rebalance_iterations)
        if self.tuning.entry_exchange_slack is not None:
            weights = directory.tuples_per_site(num_sites)
            mean = float(weights.mean()) or 1.0
            spread = (int(weights.max()) - int(weights.min())) / mean
            if spread > self.tuning.entry_exchange_threshold:
                entry_exchange(
                    directory, num_sites,
                    diversity_slack=self.tuning.entry_exchange_slack)

        fragments = materialize_fragments(relation, directory, num_sites)
        return MagicPlacement(
            relation, fragments, directory,
            slice_targets=(dict(zip(self.attributes, targets))
                           if targets is not None else None),
            mi=dict(zip(self.attributes, mi)))
