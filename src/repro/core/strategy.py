"""Declustering strategy interface: predicates, routing and placements.

Every strategy in this package (range, hash, BERD, MAGIC) follows the same
two-step contract:

1. ``strategy.partition(relation, num_sites)`` physically declusters the
   relation, returning a :class:`Placement` -- one fragment per processor
   plus whatever partitioning metadata the strategy keeps in the catalog
   (range boundaries, auxiliary relations, the grid directory).

2. ``placement.route(predicate)`` answers the query optimizer's question:
   *which processors must this selection be sent to?*  The result is a
   :class:`RoutingDecision`; for BERD it also names the auxiliary-index
   processors that must be probed *first* (the two-step execution paradigm
   of paper §2), together with the per-site probe cost inputs.

The placement works on real data, so the simulator can also ask how many
tuples of each site's fragment actually satisfy a predicate
(:meth:`Placement.qualifying_counts`) -- that is what drives each
operator's index-lookup cost at that site.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..storage.relation import Fragment, Relation

__all__ = [
    "RangePredicate",
    "RoutingDecision",
    "Placement",
    "DeclusteringStrategy",
    "equal_depth_boundaries",
    "sites_for_interval",
]


@dataclass(frozen=True)
class RangePredicate:
    """An inclusive range (or equality) predicate on one attribute.

    ``low == high`` expresses an exact-match predicate.
    """

    attribute: str
    low: int
    high: int

    def __post_init__(self):
        if self.low > self.high:
            raise ValueError(
                f"empty predicate range [{self.low}, {self.high}]")

    @property
    def is_equality(self) -> bool:
        return self.low == self.high

    @classmethod
    def equals(cls, attribute: str, value: int) -> "RangePredicate":
        return cls(attribute, value, value)

    def __str__(self) -> str:
        if self.is_equality:
            return f"{self.attribute} = {self.low}"
        return f"{self.low} <= {self.attribute} <= {self.high}"


@dataclass(frozen=True)
class RoutingDecision:
    """Where a selection operator must run.

    Attributes
    ----------
    target_sites:
        Processors that will execute the selection proper.
    probe_sites:
        Processors holding auxiliary-index fragments that must be probed
        *before* the selection can be scheduled (BERD's first step; empty
        for every other strategy).
    probe_matches:
        For each probe site, how many auxiliary entries the probe scans
        (drives the probe's B-tree cost).
    used_partitioning:
        False when the predicate references no partitioning attribute and
        the optimizer had to broadcast to every site.
    """

    target_sites: Tuple[int, ...]
    probe_sites: Tuple[int, ...] = ()
    probe_matches: Tuple[int, ...] = ()
    used_partitioning: bool = True

    def __post_init__(self):
        if len(self.probe_matches) not in (0, len(self.probe_sites)):
            raise ValueError("probe_matches must parallel probe_sites")

    @property
    def is_two_phase(self) -> bool:
        return bool(self.probe_sites)

    @property
    def site_count(self) -> int:
        """Distinct processors involved in either phase."""
        return len(set(self.target_sites) | set(self.probe_sites))


class Placement(ABC):
    """A declustered relation: per-site fragments plus catalog metadata."""

    def __init__(self, relation: Relation, fragments: Sequence[Fragment]):
        self.relation = relation
        self._fragments: List[Fragment] = list(fragments)
        total = sum(f.cardinality for f in self._fragments)
        if total != relation.cardinality:
            raise ValueError(
                f"fragments hold {total} tuples, relation has "
                f"{relation.cardinality}: placement is not a partition")

    # -- structure -----------------------------------------------------------

    @property
    def num_sites(self) -> int:
        return len(self._fragments)

    def fragment(self, site: int) -> Fragment:
        """The fragment stored at processor *site*."""
        return self._fragments[site]

    @property
    def fragments(self) -> Sequence[Fragment]:
        return tuple(self._fragments)

    def cardinalities(self) -> np.ndarray:
        """Per-site tuple counts."""
        return np.array([f.cardinality for f in self._fragments], dtype=np.int64)

    # -- data-dependent answers ---------------------------------------------------

    def qualifying_counts(self, predicate: RangePredicate) -> np.ndarray:
        """Per-site count of fragment tuples satisfying *predicate*."""
        return np.array(
            [f.count_in_range(predicate.attribute, predicate.low, predicate.high)
             for f in self._fragments],
            dtype=np.int64)

    # -- strategy-specific ----------------------------------------------------------

    @abstractmethod
    def route(self, predicate: RangePredicate) -> RoutingDecision:
        """Which processors must execute a selection with *predicate*."""

    def site_for_tuple(self, values: Dict[str, int]) -> int:
        """Home processor of a new tuple with the given attribute values.

        Used by the insert path (extension): the default resolves the
        tuple as an equality predicate on the first routable attribute;
        strategies with an exact rule (range boundaries, hash, grid
        entry) override for precision.
        """
        for attribute, value in values.items():
            decision = self.route(RangePredicate.equals(attribute, value))
            if decision.used_partitioning and decision.target_sites:
                return decision.target_sites[0]
        raise KeyError(
            f"no partitioning attribute among {sorted(values)}")

    def route_conjunction(self, predicates: Sequence[RangePredicate]
                          ) -> RoutingDecision:
        """Route a conjunction (AND) of predicates.

        The generic strategy can only exploit one predicate: it picks
        the routable predicate with the fewest target processors (the
        others are applied as residual filters at those sites).  MAGIC
        overrides this with true multi-dimensional intersection.
        """
        if not predicates:
            raise ValueError("a conjunction needs at least one predicate")
        decisions = [self.route(p) for p in predicates]
        usable = [d for d in decisions if d.used_partitioning]
        if not usable:
            return decisions[0]
        return min(usable, key=lambda d: len(d.target_sites))

    def qualifying_counts_all(self, predicates: Sequence[RangePredicate]
                              ) -> np.ndarray:
        """Per-site counts of tuples satisfying *every* predicate."""
        result = np.zeros(self.num_sites, dtype=np.int64)
        for site, fragment in enumerate(self._fragments):
            if fragment.cardinality == 0:
                continue
            mask = np.ones(fragment.cardinality, dtype=bool)
            for predicate in predicates:
                values = fragment.values(predicate.attribute)
                mask &= (values >= predicate.low) & (values <= predicate.high)
            result[site] = int(mask.sum())
        return result

    def describe(self) -> str:
        """One-line human-readable summary for reports."""
        cards = self.cardinalities()
        return (f"{type(self).__name__}: {self.num_sites} sites, "
                f"{cards.min()}..{cards.max()} tuples/site")


class DeclusteringStrategy(ABC):
    """Factory turning a relation into a :class:`Placement`."""

    #: Short name used in experiment reports ("range", "berd", "magic", ...).
    name: str = "abstract"

    @abstractmethod
    def partition(self, relation: Relation, num_sites: int) -> Placement:
        """Decluster *relation* across *num_sites* processors."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


# -- shared helpers -------------------------------------------------------------


def equal_depth_boundaries(values: np.ndarray, parts: int) -> np.ndarray:
    """Split points producing *parts* nearly equal-cardinality intervals.

    Returns ``parts - 1`` interior boundaries ``b_1 <= ... <= b_{parts-1}``;
    interval *i* is ``(b_i, b_{i+1}]``-style as implemented by
    :func:`sites_for_interval` / ``np.searchsorted`` conventions below.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if parts == 1:
        return np.empty(0, dtype=np.asarray(values).dtype)
    ordered = np.sort(np.asarray(values))
    # Cut after every len/parts-th value.
    cuts = [ordered[min(len(ordered) - 1, (len(ordered) * k) // parts)]
            for k in range(1, parts)]
    return np.array(cuts)


def sites_for_interval(boundaries: np.ndarray, low, high) -> Tuple[int, ...]:
    """Sites whose range interval intersects ``[low, high]``.

    Site *i* (0-based, ``len(boundaries) + 1`` sites) covers values ``v``
    with ``boundaries[i-1] < v <= ... `` in searchsorted terms: a value
    ``v`` belongs to site ``searchsorted(boundaries, v, side='left')``.
    """
    boundaries = np.asarray(boundaries)
    first = int(np.searchsorted(boundaries, low, side="left"))
    last = int(np.searchsorted(boundaries, high, side="left"))
    return tuple(range(first, last + 1))
