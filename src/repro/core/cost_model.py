"""MAGIC's cost model: equations 1-4 of paper §3.2-§3.3.

Given the workload description (per query type: CPU, disk and network
processing time, tuples retrieved, frequency of execution), MAGIC derives

* ``QAve`` -- the frequency-weighted average query (§3.2);
* ``M``   -- the number of processors minimizing the average query's
  response time ``RT(M)`` (equation 1), obtained in closed form by
  setting dRT/dM = 0 (equation 2);
* ``FC``  -- the fragment cardinality ensuring QAve's predicate covers
  M fragments: ``FC = TuplesPerQAve / (M - 1)``, or ``/ M`` when
  ``M < 1`` (footnote 4);
* ``M_i`` -- the ideal number of processors for queries referencing
  attribute *i* (equation 3), used to steer the grid-directory split
  strategy and the entry-to-processor assignment;
* ``Fraction_Splits_i`` -- the relative split frequency of each grid
  dimension (equation 4).

The two calibration constants are ``CP`` (cost of participation: the
scheduling/commit overhead of adding one processor to a query, which
grows linearly with the processor count, as in Gamma) and ``CS`` (cost of
searching one entry of the grid directory; a linear search inspects half
the entries on average).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

__all__ = ["QueryProfile", "AverageQuery", "MagicCostModel"]


@dataclass(frozen=True)
class QueryProfile:
    """Resource profile of one query type, as the DBA specifies to MAGIC.

    Times are in seconds of the respective device; ``frequency`` is the
    query's share of the workload (the set of profiles is normalized, so
    any positive weights work); ``attribute`` names the partitioning
    attribute the query's predicate references.
    """

    name: str
    attribute: str
    tuples: float
    cpu_seconds: float
    disk_seconds: float
    net_seconds: float
    frequency: float

    def __post_init__(self):
        if self.tuples <= 0:
            raise ValueError(f"{self.name}: tuples must be positive")
        if self.frequency <= 0:
            raise ValueError(f"{self.name}: frequency must be positive")
        for field in ("cpu_seconds", "disk_seconds", "net_seconds"):
            if getattr(self, field) < 0:
                raise ValueError(f"{self.name}: {field} must be >= 0")

    @property
    def total_seconds(self) -> float:
        """CPU + disk + network demand of one execution."""
        return self.cpu_seconds + self.disk_seconds + self.net_seconds


@dataclass(frozen=True)
class AverageQuery:
    """QAve: the frequency-weighted average of the workload's queries."""

    tuples: float
    cpu_seconds: float
    disk_seconds: float
    net_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.cpu_seconds + self.disk_seconds + self.net_seconds


class MagicCostModel:
    """Implements equations 1-4 for a workload of :class:`QueryProfile`.

    Parameters
    ----------
    profiles:
        The workload's query types.
    cost_of_participation:
        CP, seconds of overhead per additional processor employed.
    directory_search_cost:
        CS, seconds to inspect one grid-directory entry.
    relation_cardinality:
        Cardinality of the relation being declustered.
    """

    def __init__(self, profiles: Sequence[QueryProfile],
                 cost_of_participation: float,
                 directory_search_cost: float,
                 relation_cardinality: int):
        if not profiles:
            raise ValueError("the workload needs at least one query profile")
        if cost_of_participation <= 0:
            raise ValueError("CP must be positive")
        if directory_search_cost < 0:
            raise ValueError("CS must be >= 0")
        if relation_cardinality <= 0:
            raise ValueError("relation cardinality must be positive")
        self.profiles = tuple(profiles)
        self.cp = cost_of_participation
        self.cs = directory_search_cost
        self.cardinality = relation_cardinality
        total_freq = sum(p.frequency for p in self.profiles)
        self._weights = tuple(p.frequency / total_freq for p in self.profiles)

    # -- QAve (§3.2) -------------------------------------------------------

    def average_query(self) -> AverageQuery:
        """The frequency-weighted average query QAve."""
        def weighted(getter):
            return sum(w * getter(p)
                       for w, p in zip(self._weights, self.profiles))

        return AverageQuery(
            tuples=weighted(lambda p: p.tuples),
            cpu_seconds=weighted(lambda p: p.cpu_seconds),
            disk_seconds=weighted(lambda p: p.disk_seconds),
            net_seconds=weighted(lambda p: p.net_seconds))

    # -- RT(M), equation 1 ----------------------------------------------------

    def response_time(self, m: float) -> float:
        """Equation 1: estimated response time of QAve on *m* processors."""
        if m <= 0:
            raise ValueError(f"m must be positive, got {m}")
        q = self.average_query()
        parallel = q.total_seconds / m
        participation = m * self.cp
        directory = ((m - 1) * self.cardinality * self.cs
                     / (2.0 * q.tuples))
        return parallel + participation + directory

    # -- M, equation 2 -------------------------------------------------------------

    def ideal_m(self) -> float:
        """Equation 2: the M minimizing RT(M) (continuous, may be < 1)."""
        q = self.average_query()
        denominator = self.cp + self.cardinality * self.cs / (2.0 * q.tuples)
        return math.sqrt(q.total_seconds / denominator)

    # -- FC (§3.2 + footnote 4) ----------------------------------------------------

    def fragment_cardinality(self) -> int:
        """Tuples per fragment so that QAve covers M fragments."""
        q = self.average_query()
        m = self.ideal_m()
        divisor = m if m < 1.0 else max(m - 1.0, 1e-12)
        fc = q.tuples / divisor
        return max(1, int(round(fc)))

    def fragment_count(self) -> int:
        """Total grid entries implied by the fragment cardinality."""
        return max(1, math.ceil(self.cardinality / self.fragment_cardinality()))

    # -- M_i, equation 3 -------------------------------------------------------------

    def attributes(self) -> Tuple[str, ...]:
        """Partitioning attributes referenced by the workload, in first-seen order."""
        seen = []
        for p in self.profiles:
            if p.attribute not in seen:
                seen.append(p.attribute)
        return tuple(seen)

    def ideal_mi(self, attribute: str) -> float:
        """Equation 3: ideal processor count for queries on *attribute*.

        Uses the relative frequency of each query among those whose
        predicate includes the attribute (equation 2 of §3.2).
        """
        subset = [p for p in self.profiles if p.attribute == attribute]
        if not subset:
            raise KeyError(f"no query references attribute {attribute!r}")
        total_freq = sum(p.frequency for p in subset)
        weighted = sum(p.total_seconds * (p.frequency / total_freq)
                       for p in subset)
        return math.sqrt(weighted / self.cp)

    def all_mi(self) -> Dict[str, float]:
        """``ideal_mi`` for every referenced attribute."""
        return {attr: self.ideal_mi(attr) for attr in self.attributes()}

    # -- Fraction_Splits, equation 4 -------------------------------------------------

    def fraction_splits(self) -> Dict[str, float]:
        """Equation 4: relative split frequency of each grid dimension.

        ``Fraction_Splits_i = FreqQ_i * (sum_j M_j - M_i) / sum_j M_j``
        where ``FreqQ_i`` is the workload share of queries referencing
        attribute *i*.  Only the ratios matter (footnote 5).
        """
        mi = self.all_mi()
        m_sum = sum(mi.values())
        freq_by_attr: Dict[str, float] = {}
        for w, p in zip(self._weights, self.profiles):
            freq_by_attr[p.attribute] = freq_by_attr.get(p.attribute, 0.0) + w
        return {
            attr: freq_by_attr[attr] * (m_sum - mi[attr]) / m_sum
            for attr in mi
        }

    def observed_split_ratios(self) -> Dict[str, float]:
        """Split ratios consistent with the paper's *usage* of equation 4.

        Equation 4 as printed contradicts both places the paper applies
        it: §3.3's STOCK example needs a 3:1 ratio for (M_ticker,
        M_price) = (3, 1), and §7.2/§7.3 split the dimension with the
        *larger* M_i nine times more often for (1, 9) / (9, 1).  The
        unique rule matching every worked number in the paper is simply
        ``Fraction_Splits_i proportional to M_i``; we use it to derive
        directory shapes, while :meth:`fraction_splits` preserves the
        printed formula for reference.
        """
        mi = self.all_mi()
        m_sum = sum(mi.values())
        return {attr: value / m_sum for attr, value in mi.items()}

    def directory_shape(self) -> Dict[str, int]:
        """Slice counts per dimension from fragment count + split ratios.

        For split ratios ``f_i`` and total entries ``F``, the slice
        counts solve ``prod N_i = F`` with ``N_i`` proportional to
        ``f_i``: ``N_i = f_i * (F / prod f_j) ** (1/K)`` scaled to
        integers >= 1.
        """
        fractions = self.observed_split_ratios()
        total = self.fragment_count()
        k = len(fractions)
        if k == 1:
            attr = next(iter(fractions))
            return {attr: total}
        product_f = math.prod(fractions.values())
        if product_f <= 0:
            raise ValueError("degenerate split fractions")
        scale = (total / product_f) ** (1.0 / k)
        return {attr: max(1, int(round(f * scale)))
                for attr, f in fractions.items()}
