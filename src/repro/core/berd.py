"""Bubba's Extended-Range Declustering (BERD), paper §2.

BERD range-partitions the relation on a *primary* attribute and, for each
*secondary* partitioning attribute, builds an auxiliary "relation" of
(attribute value, home processor) pairs.  Each auxiliary relation is
itself range-partitioned across the processors and B-tree indexed.

A query on the primary attribute routes exactly like range partitioning.
A query on a secondary attribute executes in **two sequential steps**:

1. probe the auxiliary-relation fragment(s) covering the predicate's value
   range to learn which processors hold qualifying tuples;
2. run the selection on exactly those processors.

Step 1 is the strategy's Achilles heel: it serializes the query behind
one processor's CPU/disk and is the root cause of every MAGIC-over-BERD
margin in the paper's experiments.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from ..storage.relation import Relation
from .strategy import (
    DeclusteringStrategy,
    Placement,
    RangePredicate,
    RoutingDecision,
    equal_depth_boundaries,
    sites_for_interval,
)

__all__ = ["BerdStrategy", "BerdPlacement", "AuxiliaryIndex"]


class AuxiliaryIndex:
    """One secondary attribute's auxiliary relation.

    Stores, sorted by attribute value, the home processor of every tuple,
    plus the range boundaries that decluster the auxiliary relation itself
    across the processors.
    """

    def __init__(self, attribute: str, values: np.ndarray,
                 homes: np.ndarray, num_sites: int):
        if len(values) != len(homes):
            raise ValueError("values and homes must be parallel arrays")
        order = np.argsort(values, kind="stable")
        self.attribute = attribute
        self.sorted_values = np.asarray(values)[order]
        self.homes_by_value = np.asarray(homes)[order]
        self.num_sites = num_sites
        self.boundaries = equal_depth_boundaries(self.sorted_values, num_sites)

    # -- probe-side geometry ------------------------------------------------

    def probe_sites(self, low, high) -> Tuple[int, ...]:
        """Aux-relation sites whose value range intersects [low, high]."""
        return sites_for_interval(self.boundaries, low, high)

    def cardinality_at(self, site: int) -> int:
        """Auxiliary entries stored at *site* (for probe B-tree sizing)."""
        if not 0 <= site < self.num_sites:
            raise IndexError(f"site {site} out of range")
        lo = 0 if site == 0 else int(np.searchsorted(
            self.sorted_values, self.boundaries[site - 1], side="right"))
        hi = len(self.sorted_values) if site == self.num_sites - 1 else int(
            np.searchsorted(self.sorted_values, self.boundaries[site],
                            side="right"))
        return hi - lo

    # -- lookup ------------------------------------------------------------------

    def lookup(self, low, high):
        """(matching entry count per probe site, distinct home processors).

        Mirrors what the real probe computes: scan the qualifying
        auxiliary entries and collect the processors of the original
        tuples.
        """
        lo_idx = int(np.searchsorted(self.sorted_values, low, side="left"))
        hi_idx = int(np.searchsorted(self.sorted_values, high, side="right"))
        homes = np.unique(self.homes_by_value[lo_idx:hi_idx])
        sites = self.probe_sites(low, high)
        matches = []
        for site in sites:
            # Site s covers boundaries[s-1] < v <= boundaries[s]: the
            # interior lower bound is exclusive (side="right").
            if site == sites[0]:
                a = lo_idx
            else:
                a = int(np.searchsorted(self.sorted_values,
                                        self.boundaries[site - 1],
                                        side="right"))
            if site == sites[-1]:
                b = hi_idx
            else:
                b = int(np.searchsorted(self.sorted_values,
                                        self.boundaries[site],
                                        side="right"))
            matches.append(max(0, min(b, hi_idx) - max(a, lo_idx)))
        return tuple(matches), tuple(int(h) for h in homes)


class BerdPlacement(Placement):
    """A relation declustered with BERD."""

    def __init__(self, relation: Relation, fragments, primary: str,
                 primary_boundaries: np.ndarray,
                 auxiliaries: Dict[str, AuxiliaryIndex]):
        super().__init__(relation, fragments)
        self.primary = primary
        self.primary_boundaries = primary_boundaries
        self.auxiliaries = auxiliaries

    def route(self, predicate: RangePredicate) -> RoutingDecision:
        if predicate.attribute == self.primary:
            sites = sites_for_interval(
                self.primary_boundaries, predicate.low, predicate.high)
            return RoutingDecision(target_sites=sites)

        aux = self.auxiliaries.get(predicate.attribute)
        if aux is None:
            return RoutingDecision(
                target_sites=tuple(range(self.num_sites)),
                used_partitioning=False)

        probe_sites = aux.probe_sites(predicate.low, predicate.high)
        probe_matches, homes = aux.lookup(predicate.low, predicate.high)
        return RoutingDecision(
            target_sites=homes,
            probe_sites=probe_sites,
            probe_matches=probe_matches)

    def aux_cardinality(self, attribute: str, site: int) -> int:
        """Auxiliary entries of *attribute*'s index stored at *site*."""
        return self.auxiliaries[attribute].cardinality_at(site)

    def site_for_tuple(self, values) -> int:
        try:
            value = values[self.primary]
        except KeyError:
            raise KeyError(
                f"insert needs the primary attribute {self.primary!r}"
            ) from None
        return int(np.searchsorted(self.primary_boundaries, value,
                                   side="left"))

    def aux_site_for(self, attribute: str, value: int) -> int:
        """Processor whose auxiliary fragment must record a new tuple's
        secondary-attribute value -- the extra maintenance write every
        BERD insert pays (one per secondary attribute)."""
        aux = self.auxiliaries[attribute]
        return int(np.searchsorted(aux.boundaries, value, side="left"))

    def describe(self) -> str:
        secondaries = sorted(self.auxiliaries)
        return (f"BERD primary={self.primary!r} secondaries={secondaries} "
                f"{self.num_sites} sites")


class BerdStrategy(DeclusteringStrategy):
    """BERD declustering with one primary and N secondary attributes."""

    name = "berd"

    def __init__(self, primary: str, secondaries: Sequence[str]):
        if primary in secondaries:
            raise ValueError(
                f"{primary!r} cannot be both primary and secondary")
        if not secondaries:
            raise ValueError("BERD needs at least one secondary attribute")
        self.primary = primary
        self.secondaries = tuple(secondaries)

    def partition(self, relation: Relation, num_sites: int) -> BerdPlacement:
        if num_sites <= 0:
            raise ValueError(f"num_sites must be positive, got {num_sites}")
        primary_values = relation.column(self.primary)
        boundaries = equal_depth_boundaries(primary_values, num_sites)
        site_of_tuple = np.searchsorted(boundaries, primary_values, side="left")
        fragments = [
            relation.fragment(np.nonzero(site_of_tuple == site)[0], site=site)
            for site in range(num_sites)
        ]
        auxiliaries = {
            attr: AuxiliaryIndex(attr, relation.column(attr),
                                 site_of_tuple, num_sites)
            for attr in self.secondaries
        }
        return BerdPlacement(relation, fragments, self.primary,
                             boundaries, auxiliaries)
