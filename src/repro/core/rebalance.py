"""Hill-climbing slice-swap load balancing (paper §4).

When the partitioning attributes are highly correlated, the block-cyclic
assignment -- which assumes tuples are spread uniformly over grid entries
-- produces a skewed tuple distribution (most entries off the data's
diagonal are empty).  The paper's remedy:

    "the heuristic determines the processor with the fewest and the one
    with the most tuples.  Next, it switches the assignment of either two
    rows or two columns (i.e., two slices in a dimension K) in order to
    reduce the weight difference between these two processors.  It uses a
    hill climbing search technique and swaps the assignment of those two
    slices that minimizes the weight difference by the greatest margin.
    It is important to note that by swapping two slices of a dimension,
    the number of unique processors that appear in each dimension does
    not change."

We implement exactly that: per iteration, take the heaviest and lightest
processors, evaluate every same-dimension slice pair's effect on those
two processors' weight difference (vectorized), apply the best swap, stop
when no swap improves or the iteration budget is exhausted.

Cost model at scale
-------------------

The search state only changes when a swap is applied.  Everything
computed against an unchanged directory is therefore reusable, and this
module exploits that aggressively so the stuck-case candidate-pool
widening (which used to rebuild every per-candidate matmul each rung of
the doubling ladder, an O(P) pile of matmuls per iteration at large P)
costs each matmul and each (heavy, light) pair evaluation exactly once
per directory state:

* per-processor weights are maintained incrementally -- the applied
  swap's recomputed weight vector (exact int64 arithmetic, identical to
  a fresh bincount) becomes the next iteration's weights;
* per-dimension slice matrices and per-candidate swap-delta matrices are
  cached across stuck iterations and extended only with the candidates
  the widened pool adds;
* (dim, heavy, light) pairs that failed to improve the objective are
  skipped on re-visit: a stuck iteration leaves weights and directory
  untouched, so a previously rejected pair can never become the best
  swap of a later rung.

The widening ladder itself is bounded by ``max_pool`` (default 64):
below that many sites the search is exhaustive exactly as before, above
it the proposal set stops growing with P, keeping the worst case
O(max_pool) matmuls per directory state instead of O(P).  All three
mechanisms are behavior-preserving for P <= max_pool -- the swap
sequence (and hence the final assignment) is bit-identical to the
pre-cache implementation.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .directory import GridDirectory

__all__ = ["rebalance_assignment", "entry_exchange", "load_spread",
           "last_rebalance_stats"]

#: Search-effort counters of the most recent :func:`rebalance_assignment`
#: call, updated in place (import the dict once and re-read it).  Used by
#: scaling regression tests to pin the widening ladder's cost; not part
#: of the placement API.
last_rebalance_stats = {"iterations": 0, "widenings": 0,
                        "delta_builds": 0, "pairs_evaluated": 0}


def load_spread(weights: np.ndarray) -> int:
    """max - min of per-processor tuple loads."""
    return int(weights.max() - weights.min())


def _slice_matrices(directory: GridDirectory, dim: int):
    """(X, A): per-slice tuple-count and assignment matrices for *dim*.

    Both are 2-D with one row per slice of *dim* and one column per entry
    in the slice (remaining dimensions flattened).
    """
    counts = np.moveaxis(directory.counts, dim, 0)
    assign = np.moveaxis(directory.assignment, dim, 0)
    n = counts.shape[0]
    return counts.reshape(n, -1), assign.reshape(n, -1)


def _swap_delta(x: np.ndarray, a: np.ndarray, p: int) -> np.ndarray:
    """``delta[s, t]``: weight change of processor *p* if slices (s, t)
    of the dimension behind (x, a) were swapped.

    One matmul per (directory state, dimension, candidate processor);
    every (heavy, light) query against it is cheap array arithmetic.
    """
    mask = (a == p).astype(np.int64)
    cross = x @ mask.T  # cross[s, t]
    own = np.diagonal(cross).copy()
    return cross + cross.T - own[:, None] - own[None, :]


def _best_pair(delta_heavy: np.ndarray, delta_light: np.ndarray,
               gap: int) -> Optional[Tuple[int, int, int]]:
    """Best slice pair reducing the (heavy, light) gap, or None."""
    new_gap = np.abs(gap + delta_heavy - delta_light)
    np.fill_diagonal(new_gap, gap)  # self-swap: no-op
    s1, s2 = np.unravel_index(int(np.argmin(new_gap)), new_gap.shape)
    improvement = gap - int(new_gap[s1, s2])
    if improvement <= 0:
        return None
    return improvement, int(s1), int(s2)


def _apply_swap(directory: GridDirectory, dim: int, s1: int, s2: int) -> None:
    assign = np.moveaxis(directory.assignment, dim, 0)
    tmp = assign[s1].copy()
    assign[s1] = assign[s2]
    assign[s2] = tmp


def _weights_after_swap(x: np.ndarray, a: np.ndarray, s1: int, s2: int,
                        weights: np.ndarray, num_sites: int) -> np.ndarray:
    """Per-processor weights if slices (s1, s2) of (x, a) were swapped."""
    new = weights.astype(np.int64).copy()
    new -= np.bincount(a[s1], weights=x[s1], minlength=num_sites).astype(np.int64)
    new -= np.bincount(a[s2], weights=x[s2], minlength=num_sites).astype(np.int64)
    new += np.bincount(a[s2], weights=x[s1], minlength=num_sites).astype(np.int64)
    new += np.bincount(a[s1], weights=x[s2], minlength=num_sites).astype(np.int64)
    return new


def entry_exchange(directory: GridDirectory, num_sites: int,
                   diversity_slack: int = 2,
                   max_moves: int = 5000) -> int:
    """Single-entry reassignments within a slice-diversity budget.

    Slice swaps cannot change any slice's processor *multiset*, so on
    some directories they plateau well above an even distribution (the
    193x23 high-correlation case converges at ~40% spread).  This
    finishing pass greedily moves individual non-empty entries from the
    heaviest to the lightest processor, but never lets a slice's
    distinct-processor count grow more than ``diversity_slack`` above
    what it was when the pass started -- bounding the localization cost
    (a K=2 grid's row/column may gain at most that many processors).

    Per-processor weights and per-slice distinct-owner counts are
    maintained incrementally across moves (the weight vector via exact
    integer updates, the diversity via :class:`SliceOwnerTracker`), and
    each move's candidate scan is fully vectorized -- no per-move grid
    bincount, no per-candidate ``np.unique``.  The move sequence is
    identical to the original scalar implementation.

    Only implementable for 2-D directories (the paper's K); for other
    ranks it is a no-op.  Returns the number of moves applied.
    """
    if directory.assignment is None:
        raise RuntimeError("directory has no assignment to rebalance")
    if diversity_slack < 0:
        raise ValueError("diversity_slack must be >= 0")
    if directory.ndim != 2:
        return 0
    assignment = directory.assignment
    counts = directory.counts
    row_tracker = directory.owner_tracker(directory.attributes[0], num_sites)
    col_tracker = directory.owner_tracker(directory.attributes[1], num_sites)
    row_cap = row_tracker.distinct_counts() + diversity_slack
    col_cap = col_tracker.distinct_counts() + diversity_slack

    weights = directory.tuples_per_site(num_sites)
    moves = 0
    for _ in range(max_moves):
        heavy = int(weights.argmax())
        light = int(weights.argmin())
        gap = int(weights[heavy] - weights[light])
        if gap <= 1:
            break
        rows, cols = np.nonzero((assignment == heavy) & (counts > 0))
        if rows.size == 0:
            break
        entry_weights = counts[rows, cols].astype(np.int64)
        # A candidate qualifies when the move does not overshoot the gap
        # and neither of its slices would exceed its diversity cap.
        ok = entry_weights <= gap
        ok &= row_tracker.distinct_with(rows, light) <= row_cap[rows]
        ok &= col_tracker.distinct_with(cols, light) <= col_cap[cols]
        qualifying = np.nonzero(ok)[0]
        if qualifying.size == 0:
            break
        # np.nonzero enumerates row-major, matching the original scan
        # order; argmin takes the first minimum, matching its strict-<
        # tie-break.
        badness = np.abs(gap - 2 * entry_weights[qualifying])
        pick = int(qualifying[int(np.argmin(badness))])
        r, c = int(rows[pick]), int(cols[pick])
        weight = int(counts[r, c])
        assignment[r, c] = light
        row_tracker.move(r, heavy, light)
        col_tracker.move(c, heavy, light)
        weights[heavy] -= weight
        weights[light] += weight
        moves += 1
    return moves


def rebalance_assignment(directory: GridDirectory, num_sites: int,
                         max_iterations: int = 200,
                         candidate_processors: int = 3,
                         max_pool: Optional[int] = 64) -> int:
    """Hill-climb slice swaps until per-processor tuple loads stabilize.

    Each iteration proposes, for the ``candidate_processors`` heaviest and
    lightest processors, the slice pair that most reduces that pair's
    weight difference (the paper's move), then applies the proposal that
    most reduces the *global* load spread.  When stuck, the candidate
    pool doubles (skewed directories often need mid-weight processors in
    the proposal set to escape local optima) up to ``max_pool`` sites --
    ``None`` restores the unbounded pre-scale behavior of widening all
    the way to ``num_sites``.  Mutates ``directory.assignment`` in place
    and returns the number of swaps applied.  Slice swaps never change
    the distinct-processor count of any slice, so the M_i goals of the
    assignment are preserved.
    """
    if directory.assignment is None:
        raise RuntimeError("directory has no assignment to rebalance")

    def objective(w: np.ndarray):
        # Lexicographic: sum of squares first (strictly decreases on any
        # useful move, so the search climbs through equal-spread
        # plateaus), load spread second.
        w = w.astype(np.float64)
        return (float((w * w).sum()), load_spread(w.astype(np.int64)))

    stats = last_rebalance_stats
    stats.update(iterations=0, widenings=0, delta_builds=0,
                 pairs_evaluated=0)

    swaps = 0
    pool = max(1, candidate_processors)
    pool_limit = (num_sites if max_pool is None
                  else min(num_sites, max(pool, max_pool)))
    weights = directory.tuples_per_site(num_sites)
    current = objective(weights)
    # All three caches describe the *current* directory/weights state;
    # they survive stuck-pool widenings and are flushed on every applied
    # swap.
    slice_cache = {}  # dim -> (x, a)
    delta_cache = {}  # dim -> {processor: delta matrix}
    rejected = set()  # (dim, heavy, light) pairs proven non-improving
    for _ in range(max_iterations):
        stats["iterations"] += 1
        if current[1] == 0:
            break
        order = np.argsort(weights)
        lights = [int(p) for p in order[:pool]]
        heavies = [int(p) for p in order[-pool:][::-1]]
        candidates = set(lights) | set(heavies)
        best = None  # (objective, dim, s1, s2)
        best_weights = None
        for dim in range(directory.ndim):
            if dim not in slice_cache:
                slice_cache[dim] = _slice_matrices(directory, dim)
            x, a = slice_cache[dim]
            deltas = delta_cache.setdefault(dim, {})
            for p in candidates:
                if p not in deltas:
                    deltas[p] = _swap_delta(x, a, p)
                    stats["delta_builds"] += 1
            for heavy in heavies:
                for light in lights:
                    if weights[heavy] <= weights[light]:
                        continue
                    key = (dim, heavy, light)
                    if key in rejected:
                        continue
                    stats["pairs_evaluated"] += 1
                    gap = int(weights[heavy] - weights[light])
                    cand = _best_pair(deltas[heavy], deltas[light], gap)
                    if cand is None:
                        rejected.add(key)
                        continue
                    _, s1, s2 = cand
                    new_weights = _weights_after_swap(
                        x, a, s1, s2, weights, num_sites)
                    new_obj = objective(new_weights)
                    if new_obj < current and (
                            best is None or new_obj < best[0]):
                        best = (new_obj, dim, s1, s2)
                        best_weights = new_weights
                    elif new_obj >= current:
                        rejected.add(key)
        if best is None:
            # Stuck with this candidate pool: widen it before giving up.
            if pool >= pool_limit:
                break
            pool = min(pool * 2, pool_limit)
            stats["widenings"] += 1
            continue
        _, dim, s1, s2 = best
        _apply_swap(directory, dim, s1, s2)
        swaps += 1
        weights = best_weights
        current = best[0]
        pool = max(1, candidate_processors)
        slice_cache.clear()
        delta_cache.clear()
        rejected.clear()
    return swaps
