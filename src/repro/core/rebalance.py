"""Hill-climbing slice-swap load balancing (paper §4).

When the partitioning attributes are highly correlated, the block-cyclic
assignment -- which assumes tuples are spread uniformly over grid entries
-- produces a skewed tuple distribution (most entries off the data's
diagonal are empty).  The paper's remedy:

    "the heuristic determines the processor with the fewest and the one
    with the most tuples.  Next, it switches the assignment of either two
    rows or two columns (i.e., two slices in a dimension K) in order to
    reduce the weight difference between these two processors.  It uses a
    hill climbing search technique and swaps the assignment of those two
    slices that minimizes the weight difference by the greatest margin.
    It is important to note that by swapping two slices of a dimension,
    the number of unique processors that appear in each dimension does
    not change."

We implement exactly that: per iteration, take the heaviest and lightest
processors, evaluate every same-dimension slice pair's effect on those
two processors' weight difference (vectorized), apply the best swap, stop
when no swap improves or the iteration budget is exhausted.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .directory import GridDirectory

__all__ = ["rebalance_assignment", "entry_exchange", "load_spread"]


def load_spread(weights: np.ndarray) -> int:
    """max - min of per-processor tuple loads."""
    return int(weights.max() - weights.min())


def _slice_matrices(directory: GridDirectory, dim: int):
    """(X, A): per-slice tuple-count and assignment matrices for *dim*.

    Both are 2-D with one row per slice of *dim* and one column per entry
    in the slice (remaining dimensions flattened).
    """
    counts = np.moveaxis(directory.counts, dim, 0)
    assign = np.moveaxis(directory.assignment, dim, 0)
    n = counts.shape[0]
    return counts.reshape(n, -1), assign.reshape(n, -1)


class _DimensionSwapTable:
    """Per-(iteration, dimension) cache of slice-swap weight deltas.

    For every candidate processor *p* precomputes ``cross_p[s, t] =``
    tuple weight processor *p* would receive from slice *s* if it were
    re-labelled with slice *t*'s assignment.  Each (heavy, light) query
    then reduces to cheap array arithmetic; the expensive matmuls are
    shared across all candidate pairs.
    """

    def __init__(self, directory: GridDirectory, dim: int, procs):
        self._x, self._a = _slice_matrices(directory, dim)
        self._delta = {}
        for p in procs:
            mask = (self._a == p).astype(np.int64)
            cross = self._x @ mask.T  # cross[s, t]
            own = np.diagonal(cross).copy()
            # After swapping (s, t): w[p] += delta[s, t].
            self._delta[p] = (cross + cross.T
                              - own[:, None] - own[None, :])

    def best_pair(self, heavy: int, light: int,
                  weights: np.ndarray) -> Optional[Tuple[int, int, int]]:
        """Best slice pair reducing |w[heavy] - w[light]|, or None."""
        gap = int(weights[heavy] - weights[light])
        new_gap = np.abs(gap + self._delta[heavy] - self._delta[light])
        np.fill_diagonal(new_gap, gap)  # self-swap: no-op
        s1, s2 = np.unravel_index(int(np.argmin(new_gap)), new_gap.shape)
        improvement = gap - int(new_gap[s1, s2])
        if improvement <= 0:
            return None
        return improvement, int(s1), int(s2)


def _apply_swap(directory: GridDirectory, dim: int, s1: int, s2: int) -> None:
    assign = np.moveaxis(directory.assignment, dim, 0)
    tmp = assign[s1].copy()
    assign[s1] = assign[s2]
    assign[s2] = tmp


def _weights_after_swap(directory: GridDirectory, dim: int, s1: int, s2: int,
                        weights: np.ndarray, num_sites: int) -> np.ndarray:
    """Per-processor weights if slices (s1, s2) of *dim* were swapped."""
    x, a = _slice_matrices(directory, dim)
    new = weights.astype(np.int64).copy()
    new -= np.bincount(a[s1], weights=x[s1], minlength=num_sites).astype(np.int64)
    new -= np.bincount(a[s2], weights=x[s2], minlength=num_sites).astype(np.int64)
    new += np.bincount(a[s2], weights=x[s1], minlength=num_sites).astype(np.int64)
    new += np.bincount(a[s1], weights=x[s2], minlength=num_sites).astype(np.int64)
    return new


def entry_exchange(directory: GridDirectory, num_sites: int,
                   diversity_slack: int = 2,
                   max_moves: int = 5000) -> int:
    """Single-entry reassignments within a slice-diversity budget.

    Slice swaps cannot change any slice's processor *multiset*, so on
    some directories they plateau well above an even distribution (the
    193x23 high-correlation case converges at ~40% spread).  This
    finishing pass greedily moves individual non-empty entries from the
    heaviest to the lightest processor, but never lets a slice's
    distinct-processor count grow more than ``diversity_slack`` above
    what it was when the pass started -- bounding the localization cost
    (a K=2 grid's row/column may gain at most that many processors).

    Only implementable for 2-D directories (the paper's K); for other
    ranks it is a no-op.  Returns the number of moves applied.
    """
    if directory.assignment is None:
        raise RuntimeError("directory has no assignment to rebalance")
    if diversity_slack < 0:
        raise ValueError("diversity_slack must be >= 0")
    if directory.ndim != 2:
        return 0
    assignment = directory.assignment
    counts = directory.counts
    row_cap = [v + diversity_slack
               for v in directory.distinct_sites_per_slice(
                   directory.attributes[0])]
    col_cap = [v + diversity_slack
               for v in directory.distinct_sites_per_slice(
                   directory.attributes[1])]

    moves = 0
    for _ in range(max_moves):
        weights = directory.tuples_per_site(num_sites)
        heavy = int(weights.argmax())
        light = int(weights.argmin())
        gap = int(weights[heavy] - weights[light])
        if gap <= 1:
            break
        rows, cols = np.nonzero((assignment == heavy) & (counts > 0))
        best = None
        for r, c in zip(rows, cols):
            weight = int(counts[r, c])
            if weight > gap:
                continue  # the move would overshoot
            row_div = len(np.unique(np.append(assignment[r, :], light)))
            col_div = len(np.unique(np.append(assignment[:, c], light)))
            if row_div > row_cap[r] or col_div > col_cap[c]:
                continue
            badness = abs(gap - 2 * weight)
            if best is None or badness < best[0]:
                best = (badness, int(r), int(c))
        if best is None:
            break
        _, r, c = best
        assignment[r, c] = light
        moves += 1
    return moves


def rebalance_assignment(directory: GridDirectory, num_sites: int,
                         max_iterations: int = 200,
                         candidate_processors: int = 3) -> int:
    """Hill-climb slice swaps until per-processor tuple loads stabilize.

    Each iteration proposes, for the ``candidate_processors`` heaviest and
    lightest processors, the slice pair that most reduces that pair's
    weight difference (the paper's move), then applies the proposal that
    most reduces the *global* load spread.  Mutates
    ``directory.assignment`` in place and returns the number of swaps
    applied.  Slice swaps never change the distinct-processor count of
    any slice, so the M_i goals of the assignment are preserved.
    """
    if directory.assignment is None:
        raise RuntimeError("directory has no assignment to rebalance")

    def objective(w: np.ndarray):
        # Lexicographic: sum of squares first (strictly decreases on any
        # useful move, so the search climbs through equal-spread
        # plateaus), load spread second.
        w = w.astype(np.float64)
        return (float((w * w).sum()), load_spread(w.astype(np.int64)))

    swaps = 0
    pool = max(1, candidate_processors)
    for _ in range(max_iterations):
        weights = directory.tuples_per_site(num_sites)
        current = objective(weights)
        if current[1] == 0:
            break
        order = np.argsort(weights)
        lights = [int(p) for p in order[:pool]]
        heavies = [int(p) for p in order[-pool:][::-1]]
        candidates = set(lights) | set(heavies)
        best = None  # (objective, dim, s1, s2)
        for dim in range(directory.ndim):
            table = _DimensionSwapTable(directory, dim, candidates)
            for heavy in heavies:
                for light in lights:
                    if weights[heavy] <= weights[light]:
                        continue
                    cand = table.best_pair(heavy, light, weights)
                    if cand is None:
                        continue
                    _, s1, s2 = cand
                    new_obj = objective(_weights_after_swap(
                        directory, dim, s1, s2, weights, num_sites))
                    if new_obj < current and (
                            best is None or new_obj < best[0]):
                        best = (new_obj, dim, s1, s2)
        if best is None:
            # Stuck with this candidate pool: widen it before giving up
            # (skewed directories often need mid-weight processors in the
            # proposal set to escape local optima).
            if pool >= num_sites:
                break
            pool = min(pool * 2, num_sites)
            continue
        _, dim, s1, s2 = best
        _apply_swap(directory, dim, s1, s2)
        swaps += 1
        pool = max(1, candidate_processors)
    return swaps
