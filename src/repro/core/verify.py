"""Placement verification and diagnostics.

Downstream users build their own strategies and tunings; this module
gives them a one-call health check.  :func:`verify_placement` asserts
the structural invariants every placement must hold (fragments form a
partition; routing is sound for sampled predicates) and reports the
quality metrics the paper's §3.4 cares about (load balance, per-slice
processor diversity, average processors per query).

Example::

    report = verify_placement(placement, attributes=["unique1", "unique2"])
    assert report.ok, report.problems
    print(report.summary())
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .magic import MagicPlacement
from .strategy import Placement, RangePredicate

__all__ = ["PlacementReport", "verify_placement"]


@dataclass
class PlacementReport:
    """Outcome of :func:`verify_placement`."""

    ok: bool
    problems: List[str] = field(default_factory=list)
    #: max/mean per-site tuple load.
    load_factor: float = 0.0
    #: fraction of sites holding no tuples.
    empty_site_fraction: float = 0.0
    #: attribute -> average processors routed for sampled range queries.
    avg_processors: Dict[str, float] = field(default_factory=dict)
    #: attribute -> mean distinct processors per grid slice (MAGIC only).
    slice_diversity: Dict[str, float] = field(default_factory=dict)
    sampled_predicates: int = 0

    def summary(self) -> str:
        lines = [f"placement {'OK' if self.ok else 'BROKEN'}: "
                 f"load factor {self.load_factor:.2f}, "
                 f"{self.empty_site_fraction:.0%} empty sites"]
        for attr, procs in sorted(self.avg_processors.items()):
            lines.append(f"  {attr}: {procs:.2f} processors/query")
        for attr, div in sorted(self.slice_diversity.items()):
            lines.append(f"  {attr}: {div:.2f} processors/slice")
        for problem in self.problems:
            lines.append(f"  PROBLEM: {problem}")
        return "\n".join(lines)


def _check_partition(placement: Placement, problems: List[str]) -> None:
    rows = [placement.fragment(s).rows for s in range(placement.num_sites)]
    combined = np.concatenate(rows) if rows else np.empty(0, dtype=np.int64)
    cardinality = placement.relation.cardinality
    if len(combined) != cardinality:
        problems.append(
            f"fragments hold {len(combined)} tuples, relation has "
            f"{cardinality}")
    elif len(np.unique(combined)) != cardinality:
        problems.append("fragments overlap: some tuple stored twice")


def _check_routing(placement: Placement, attribute: str,
                   rng: random.Random, samples: int,
                   problems: List[str]) -> float:
    domain_lo = int(placement.relation.column(attribute).min())
    domain_hi = int(placement.relation.column(attribute).max())
    span = max(domain_hi - domain_lo, 1)
    widths = []
    for _ in range(samples):
        width = rng.choice([1, 10, span // 100 or 1])
        low = domain_lo + rng.randrange(max(span - width, 1))
        predicate = RangePredicate(attribute, low, low + width - 1)
        decision = placement.route(predicate)
        widths.append(decision.site_count)
        counts = placement.qualifying_counts(predicate)
        missing = [int(s) for s in np.nonzero(counts)[0]
                   if int(s) not in decision.target_sites]
        if missing:
            problems.append(
                f"routing for {predicate} missed sites {missing}")
    return float(np.mean(widths)) if widths else 0.0


def verify_placement(placement: Placement,
                     attributes: Optional[Sequence[str]] = None,
                     samples: int = 50,
                     seed: int = 0) -> PlacementReport:
    """Check a placement's invariants and report its quality metrics.

    ``attributes`` defaults to every materialized column that routing
    can exploit (for MAGIC, the grid dimensions; otherwise the columns
    the placement was built from are a good choice).
    """
    if samples < 1:
        raise ValueError("samples must be >= 1")
    problems: List[str] = []
    _check_partition(placement, problems)

    cards = placement.cardinalities()
    mean = float(cards.mean()) or 1.0
    report = PlacementReport(
        ok=True,
        load_factor=float(cards.max()) / mean,
        empty_site_fraction=float((cards == 0).mean()))

    if attributes is None:
        if isinstance(placement, MagicPlacement):
            attributes = list(placement.directory.attributes)
        else:
            attributes = [c for c in ("unique1", "unique2")
                          if c in placement.relation.materialized_columns]
    rng = random.Random(seed)
    for attribute in attributes:
        report.avg_processors[attribute] = _check_routing(
            placement, attribute, rng, samples, problems)
        report.sampled_predicates += samples

    if isinstance(placement, MagicPlacement):
        for attribute in placement.directory.attributes:
            diversity = placement.directory.distinct_sites_per_slice(
                attribute)
            report.slice_diversity[attribute] = float(np.mean(diversity))

    report.problems = problems
    report.ok = not problems
    return report
